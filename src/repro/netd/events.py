"""Cross-process event channel: Fig. 5 revocation over real sockets.

Two halves:

* :class:`EventPump` — server side.  Taps the process-local
  :class:`~repro.events.EventBroker` and pushes every *locally-minted*
  event to subscribed connections as coalesced
  ``{"push": "events", ...}`` frames.  Events whose attributes carry
  ``net_origin`` arrived from another process and are **not** forwarded
  — that single rule is the loop-breaker that lets two servers
  subscribe to each other (or a chain P1→P2→P3 relay hop by hop)
  without an event ping-ponging forever: each process re-broadcasts
  only the *consequences* it computed locally (its own cascade
  revocations), never the stimulus it received.

* :class:`EventChannel` — client side.  Holds a persistent connection
  to one peer server, issues ``subscribe_events``, and republishes every
  pushed event into a local delivery function after stamping
  ``net_origin=<peer>``.  The span context riding on the events
  (``trace_id``/``span_id`` attributes) crosses untouched, which is what
  lets a multi-process cascade stitch into ONE trace tree.  On
  connection loss the channel reconnects with exponential backoff and
  resubscribes — a restarted issuer keeps feeding its dependants
  without operator action.

Both halves deal only in :meth:`~repro.events.messages.Event.to_payload`
dicts on the wire — the same JSON-faithful encoding the crash journal
uses, so anything that can be journalled can cross a process boundary.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Dict, List, Optional

from ..events import Event, EventBroker
from .protocol import MAX_FRAME, OasisNetError, read_frame, send_frame

__all__ = ["NET_ORIGIN", "EventPump", "EventChannel"]

#: Attribute stamped on republished remote events; its presence means
#: "arrived over the wire — do not forward again".
NET_ORIGIN = "net_origin"


class EventPump:
    """Collects locally-minted broker events and pushes them to
    subscribed connections in coalesced batches.

    The broker delivers on the server's worker thread (service handlers
    run there); the pump only *appends to a list* on that thread and
    schedules one flush on the event loop, so the tap adds O(1) work to
    the revocation hot path regardless of subscriber count.

    ``coalesce_window`` delays the flush a few milliseconds so a
    synchronous cascade's whole event batch lands in ONE push frame
    instead of racing the loop into per-event frames; it is the latency
    cost of batching and deliberately tiny.
    """

    def __init__(self, node: str, loop: asyncio.AbstractEventLoop,
                 max_frame: int = MAX_FRAME,
                 coalesce_window: float = 0.005) -> None:
        self.node = node
        self._loop = loop
        self._max_frame = max_frame
        self._coalesce_window = coalesce_window
        self._lock = threading.Lock()
        self._pending: List[Dict[str, Any]] = []
        self._flush_scheduled = False
        self._senders: Dict[int, Callable[[Dict[str, Any]],
                                          "asyncio.Future[Any]"]] = {}
        self._next_key = 0
        self._untap: Optional[Callable[[], None]] = None
        self.pushed_events = 0
        self.pushed_batches = 0
        self.skipped_events = 0

    def attach(self, broker: EventBroker) -> None:
        self._untap = broker.add_tap(self._tap)

    def detach(self) -> None:
        if self._untap is not None:
            self._untap()
            self._untap = None

    @property
    def subscriber_count(self) -> int:
        return len(self._senders)

    def subscribe(self, sender: Callable[[Dict[str, Any]],
                                         "asyncio.Future[Any]"]) -> int:
        """Register an async send callable; returns an unsubscribe key."""
        self._next_key += 1
        self._senders[self._next_key] = sender
        return self._next_key

    def unsubscribe(self, key: int) -> None:
        self._senders.pop(key, None)

    # -- broker tap (worker thread) -----------------------------------------
    def _tap(self, event: Event) -> None:
        if event.get(NET_ORIGIN) is not None:
            self.skipped_events += 1
            return
        try:
            payload = dict(event.to_payload())
        except TypeError:
            # Non-JSON-native attribute values cannot cross a process
            # boundary; such events are process-local by construction.
            self.skipped_events += 1
            return
        with self._lock:
            self._pending.append(payload)
            if self._flush_scheduled:
                return
            self._flush_scheduled = True
        self._loop.call_soon_threadsafe(self._schedule_flush)

    # -- flush (event loop) -------------------------------------------------
    def _schedule_flush(self) -> None:
        self._loop.call_later(self._coalesce_window,
                              lambda: self._loop.create_task(self.flush()))

    async def flush(self) -> int:
        """Push everything pending as one batch; returns events pushed."""
        with self._lock:
            batch = self._pending
            self._pending = []
            self._flush_scheduled = False
        if not batch or not self._senders:
            return 0
        push = {"push": "events", "origin": self.node, "events": batch}
        self.pushed_events += len(batch)
        self.pushed_batches += 1
        for key, sender in list(self._senders.items()):
            try:
                await sender(push)
            except (OasisNetError, ConnectionError, OSError):
                # The connection handler notices the dead socket itself;
                # dropping the sender here just stops repeat failures.
                self._senders.pop(key, None)
        return len(batch)


class EventChannel:
    """A persistent subscription to one peer's event stream.

    ``deliver`` receives each pushed batch as a list of
    :class:`~repro.events.Event` objects already stamped with
    ``net_origin=<peer name>``; it runs on the channel's event loop, so
    a server embeds the channel by submitting the batch to its worker
    thread (keeping the broker single-threaded), while tests may deliver
    straight into a local broker.
    """

    def __init__(self, peer: str, host: str, port: int,
                 deliver: Callable[[List[Event]], Any],
                 reconnect_delay: float = 0.1,
                 max_reconnect_delay: float = 2.0,
                 max_frame: int = MAX_FRAME) -> None:
        self.peer = peer
        self.host = host
        self.port = port
        self._deliver = deliver
        self._reconnect_delay = reconnect_delay
        self._max_reconnect_delay = max_reconnect_delay
        self._max_frame = max_frame
        self._task: Optional["asyncio.Task[None]"] = None
        self._stopping = asyncio.Event()
        self.connected = asyncio.Event()
        self.delivered_events = 0
        self.subscribes = 0

    def start(self) -> None:
        """Begin the subscription; must run on the owning event loop."""
        if self._task is None:
            self._stopping.clear()
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        self._stopping.set()
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._task = None
        self.connected.clear()

    async def wait_connected(self, timeout: float = 10.0) -> None:
        await asyncio.wait_for(self.connected.wait(), timeout)

    async def _run(self) -> None:
        delay = self._reconnect_delay
        while not self._stopping.is_set():
            try:
                await self._session()
                delay = self._reconnect_delay  # clean session: reset backoff
            except asyncio.CancelledError:
                raise
            except (OasisNetError, ConnectionError, OSError):
                pass
            self.connected.clear()
            if self._stopping.is_set():
                return
            await asyncio.sleep(delay)
            delay = min(delay * 2, self._max_reconnect_delay)

    async def _session(self) -> None:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            # Request id 0 is reserved for the subscription on this
            # connection — nothing else is ever sent on it, so the single
            # expected response needs no dispatcher.
            await send_frame(writer,
                             {"id": 0, "op": "subscribe_events"},
                             self._max_frame)
            ack = await read_frame(reader, self._max_frame)
            if ack is None or not ack.get("ok", False):
                raise OasisNetError(
                    f"peer {self.peer} refused event subscription: {ack!r}")
            self.subscribes += 1
            self.connected.set()
            while True:
                frame = await read_frame(reader, self._max_frame)
                if frame is None:
                    return  # graceful peer shutdown; reconnect loop decides
                if frame.get("push") != "events":
                    continue
                origin = frame.get("origin", self.peer)
                events = [
                    Event.from_payload(payload).with_attributes(
                        net_origin=origin)
                    for payload in frame.get("events", ())
                ]
                if events:
                    self.delivered_events += len(events)
                    self._deliver(events)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
