"""The OASIS socket server: services behind the Sect. 4.1 handshake.

One :class:`OasisServer` hosts the :class:`~repro.core.service.OasisService`
instances of one process behind the frame protocol of
:mod:`repro.netd.protocol`.  The op vocabulary deliberately mirrors
:class:`~repro.shard.worker.ShardWorker` — certificates cross as
:mod:`repro.core.wire` payloads, CRRs as
:func:`~repro.core.state.ref_payload` dicts — so a reader of one speaks
the other.

Threading model (the part worth understanding):

* The **event loop** does I/O only: accepting, framing, responding,
  pushing event batches.  It never executes service code.
* All service-state-touching ops run on ONE worker thread (a
  single-slot executor), so every hosted service stays effectively
  single-threaded — same guarantee the in-process world gives them.
* When a handler on the worker thread needs the network itself — the
  records service validating a foreign certificate by callback to its
  issuer — it blocks the *worker thread* on a sync client whose I/O
  runs on a different loop (:class:`~repro.netd.runtime.LoopThread`).
  The serving loop stays free, so nested RPC cannot deadlock the
  process, and requests queued behind the blocked worker are exactly
  the requests that must wait anyway (single-threaded state).

Backpressure and timeouts: frames on one connection are processed
strictly in order and the next read happens only after the response is
written and drained, so a client gets per-connection backpressure for
free; a slow *reader* stalls only its own connection (``drain``), and a
handler exceeding ``request_timeout`` gets an ``RpcTimeout``-typed error
response.  Graceful shutdown stops accepting, flushes the event pump,
and lets the worker finish the op in flight.

The challenge–response handshake (``auth.hello`` → ``auth.prove``)
proves possession of the private key for a presented public key and
pins the connection to the ``key:<fingerprint>`` identity.  With
``require_handshake=True`` every state-touching op is refused until the
proof succeeds; ``ping``/``auth.*``/``services`` stay open (liveness
probes and route discovery carry no authority).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Mapping, Optional, Set

from ..core import wire
from ..core.access_log import AccessRecord
from ..core.credentials import CredentialRef
from ..core.service import (ActivationRequest, OasisService, Presentation)
from ..core.state import ref_from_payload, ref_payload
from ..core.types import PrincipalId
from ..crypto.challenge import ChallengeResponseServer
from ..crypto.rsa import RSAPublicKey
from ..events import EventBroker
from ..obs.runtime import Observability
from .events import EventPump
from .protocol import (
    MAX_FRAME,
    ConnectionLost,
    HandshakeError,
    ProtocolError,
    error_payload,
    read_frame,
    send_frame,
)

__all__ = ["OasisServer"]

#: Ops allowed before (or without) a successful handshake: liveness,
#: the handshake itself, and route discovery — none confer authority.
_UNGATED_OPS = frozenset({"ping", "auth.hello", "auth.prove", "services"})


class _Connection:
    """Per-connection state: writer + send lock + auth + subscription."""

    __slots__ = ("writer", "lock", "principal", "pump_key")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.lock = asyncio.Lock()
        self.principal: Optional[str] = None
        self.pump_key: Optional[int] = None

    async def send(self, payload: Dict[str, Any], max_frame: int) -> None:
        async with self.lock:
            await send_frame(self.writer, payload, max_frame)


class OasisServer:
    """Serve a set of OASIS services over TCP."""

    def __init__(self, node: str, services: Mapping[str, OasisService], *,
                 broker: Optional[EventBroker] = None,
                 network: Optional[Any] = None,
                 handlers: Optional[Mapping[str, Callable[[Any], Any]]]
                 = None,
                 host: str = "127.0.0.1", port: int = 0,
                 require_handshake: bool = False,
                 request_timeout: float = 30.0,
                 max_frame: int = MAX_FRAME,
                 pipeline: Optional[Observability] = None) -> None:
        self.node = node
        self.services: Dict[str, OasisService] = dict(services)
        self.broker = broker
        self.network = network
        self.handlers: Dict[str, Callable[[Any], Any]] = \
            dict(handlers or {})
        self.host = host
        self.port = port  # rewritten with the bound port on start()
        self.require_handshake = require_handshake
        self.request_timeout = request_timeout
        self.max_frame = max_frame
        self.pipeline = pipeline
        self._by_id = {service.id: service
                       for service in self.services.values()}
        # ONE worker slot: hosted services stay single-threaded.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"oasis-{node}")
        self._challenges = ChallengeResponseServer(clock=time.monotonic)
        # challenge_id -> key fingerprint: the identity a proof binds to
        # comes from the key presented at hello, never from the prover's
        # claim.  Bounded alongside the challenge store.
        self._challenge_keys: "OrderedDict[str, str]" = OrderedDict()
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: Set[_Connection] = set()
        self._closing = False
        self.pump: Optional[EventPump] = None
        # peer -> EventChannel, registered by the serve bootstrap so ping
        # can report subscription liveness (readiness gates on it: a node
        # whose inbound event channel is still reconnecting would silently
        # miss cascade events published in the gap).
        self.channels: Dict[str, Any] = {}
        self.shutdown_requested = asyncio.Event()
        self.requests = 0

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> "OasisServer":
        self._loop = asyncio.get_running_loop()
        self.pump = EventPump(self.node, self._loop, self.max_frame)
        if self.broker is not None:
            self.pump.attach(self.broker)
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_until_shutdown(self) -> None:
        """Run until a client issues the ``shutdown`` op, then close."""
        await self.shutdown_requested.wait()
        await self.close()

    async def close(self) -> None:
        """Graceful shutdown: stop accepting, flush events, finish the
        op in flight, close every connection."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.pump is not None:
            await self.pump.flush()
            self.pump.detach()
        for conn in list(self._connections):
            conn.writer.close()
        # The worker may still be inside a handler; let it finish so the
        # last response's state mutations are not torn.
        await asyncio.get_running_loop().run_in_executor(
            None, functools.partial(self._executor.shutdown, wait=True))

    def submit(self, fn: Callable[..., Any], *args: Any
               ) -> "concurrent.futures.Future[Any]":
        """Run ``fn`` on the service worker thread (used by the deploy
        layer to deliver remote event batches into the broker without
        racing the dispatch path)."""
        return self._executor.submit(fn, *args)

    # -- connection handling ------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        self._connections.add(conn)
        try:
            while not self._closing:
                try:
                    frame = await read_frame(reader, self.max_frame)
                except ProtocolError as error:
                    # Malformed bytes: one typed parting error, then the
                    # connection is unusable (framing is lost).
                    try:
                        await conn.send({"id": None, "ok": False,
                                         "error": error_payload(error)},
                                        self.max_frame)
                    except ConnectionLost:
                        pass
                    break
                except ConnectionLost:
                    break
                if frame is None:
                    break
                await self._handle_frame(conn, frame)
        finally:
            if conn.pump_key is not None and self.pump is not None:
                self.pump.unsubscribe(conn.pump_key)
            self._connections.discard(conn)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_frame(self, conn: _Connection,
                            frame: Dict[str, Any]) -> None:
        self.requests += 1
        request_id = frame.get("id")
        op = frame.get("op")
        try:
            if self.require_handshake and conn.principal is None \
                    and op not in _UNGATED_OPS:
                raise HandshakeError(
                    f"{self.node} requires a completed challenge-response "
                    f"handshake before {op!r}")
            value = await self._dispatch(conn, frame, op)
            response = {"id": request_id, "ok": True, "value": value}
        except Exception as error:  # noqa: BLE001 - crosses the wire
            response = {"id": request_id, "ok": False,
                        "error": error_payload(error)}
        try:
            await conn.send(response, self.max_frame)
        except ConnectionLost:
            return
        if op == "shutdown" and response["ok"]:
            self.shutdown_requested.set()

    async def _dispatch(self, conn: _Connection, frame: Dict[str, Any],
                        op: Any) -> Any:
        # Loop-thread ops: no service state touched.
        if op == "ping":
            return {"node": self.node, "services": sorted(self.services),
                    "channels": {peer: channel.connected.is_set()
                                 for peer, channel
                                 in self.channels.items()}}
        if op == "auth.hello":
            return self._auth_hello(frame)
        if op == "auth.prove":
            return self._auth_prove(conn, frame)
        if op == "services":
            return self._describe_services()
        if op == "subscribe_events":
            if self.pump is None:
                raise RuntimeError(f"{self.node} is not started")
            if conn.pump_key is None:
                conn.pump_key = self.pump.subscribe(
                    lambda push: conn.send(push, self.max_frame))
            return {"subscribed": True}
        if op == "shutdown":
            return None
        # Everything else mutates or reads service state: worker thread,
        # bounded by the request timeout.
        assert self._loop is not None
        future = self._loop.run_in_executor(
            self._executor, functools.partial(self._execute, frame, op))
        try:
            return await asyncio.wait_for(future, self.request_timeout)
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"{self.node} did not finish {op!r} within "
                f"{self.request_timeout}s") from None

    # -- handshake ----------------------------------------------------------
    def _auth_hello(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        key = frame.get("key") or {}
        try:
            public = RSAPublicKey(n=int(key["n"]), e=int(key["e"]))
        except (KeyError, TypeError, ValueError) as error:
            raise HandshakeError(
                f"malformed public key in auth.hello: {error}") from None
        issued = self._challenges.issue(public)
        self._challenge_keys[issued.challenge_id] = public.fingerprint()
        while len(self._challenge_keys) > \
                ChallengeResponseServer.DEFAULT_MAX_PENDING:
            self._challenge_keys.popitem(last=False)
        return {"challenge_id": issued.challenge_id,
                "challenge": issued.encrypted_challenge.hex(),
                "nonce": issued.nonce.hex()}

    def _auth_prove(self, conn: _Connection,
                    frame: Dict[str, Any]) -> Dict[str, Any]:
        try:
            challenge_id = str(frame["challenge_id"])
            response = bytes.fromhex(frame["response"])
        except (KeyError, TypeError, ValueError) as error:
            raise HandshakeError(
                f"malformed auth.prove: {error}") from None
        fingerprint = self._challenge_keys.pop(challenge_id, None)
        if not self._challenges.verify(challenge_id, response) \
                or fingerprint is None:
            raise HandshakeError("challenge-response proof failed")
        conn.principal = f"key:{fingerprint}"
        return {"principal": conn.principal}

    def _describe_services(self) -> Dict[str, Any]:
        endpoints: List[Dict[str, str]] = []
        if self.network is not None:
            endpoints = self.network.local_endpoints()
        return {
            "node": self.node,
            "services": [{"key": key, "domain": service.id.domain,
                          "name": service.id.name}
                         for key, service in self.services.items()],
            "endpoints": endpoints,
        }

    # -- worker-thread ops (mirrors ShardWorker._execute) -------------------
    def _service(self, key: str) -> OasisService:
        try:
            return self.services[key]
        except KeyError:
            raise KeyError(f"{self.node} hosts no service keyed "
                           f"{key!r}") from None

    def _service_for_ref(self, ref: CredentialRef) -> OasisService:
        try:
            return self._by_id[ref.service]
        except KeyError:
            raise KeyError(f"{self.node} hosts no service "
                           f"{ref.service}") from None

    @staticmethod
    def _presentations(payloads: Any) -> List[Presentation]:
        return [Presentation(wire.decode_certificate(entry["cert"]),
                             holder=entry.get("holder"),
                             on_behalf_of=entry.get("on_behalf_of"))
                for entry in payloads]

    def _activation_request(self, payload: Mapping[str, Any]
                            ) -> ActivationRequest:
        parameters = payload.get("parameters")
        return ActivationRequest(
            principal=PrincipalId(payload["principal"]),
            role_name=payload["role"],
            parameters=None if parameters is None else list(parameters),
            credentials=self._presentations(payload.get("credentials", ())),
            environment=payload.get("environment"),
            session_id=payload.get("session"))

    def _execute(self, frame: Mapping[str, Any], op: Any) -> Any:
        if op == "activate":
            service = self._service(frame["service"])
            request = self._activation_request(frame["request"])
            certificate = service.activate_role(
                request.principal, request.role_name, request.parameters,
                request.credentials, environment=request.environment,
                session_id=request.session_id)
            return {"cert": wire.encode_certificate(certificate)}
        if op == "activate_bulk":
            service = self._service(frame["service"])
            requests = [self._activation_request(payload)
                        for payload in frame["requests"]]
            certificates = service.activate_roles_bulk(requests)
            return {"certs": [wire.encode_certificate(certificate)
                              for certificate in certificates]}
        if op == "invoke":
            service = self._service(frame["service"])
            result = service.invoke(
                PrincipalId(frame["principal"]), frame["method"],
                list(frame.get("arguments", ())),
                credentials=self._presentations(
                    frame.get("credentials", ())))
            return {"result": result}
        if op == "appoint":
            service = self._service(frame["service"])
            certificate = service.issue_appointment(
                PrincipalId(frame["appointer"]), frame["name"],
                list(frame.get("parameters", ())),
                credentials=self._presentations(
                    frame.get("credentials", ())),
                holder=frame.get("holder"),
                expires_at=frame.get("expires_at"))
            return {"cert": wire.encode_certificate(certificate)}
        if op == "revoke":
            ref = ref_from_payload(frame["ref"])
            service = self._service_for_ref(ref)
            return {"revoked": service.revoke(ref, frame.get("reason",
                                                             "revoked"))}
        if op == "is_active":
            ref = ref_from_payload(frame["ref"])
            return {"active": self._service_for_ref(ref).is_active(ref)}
        if op == "record":
            return self._op_record(frame)
        if op == "validate":
            return self._op_validate(frame)
        if op == "audit":
            return self._op_audit(frame)
        if op == "sessions":
            service = self._service(frame["service"])
            return {"sessions": sorted(service.live_sessions())}
        if op == "stats":
            return self.stats()
        if op == "spans":
            return {"spans": self.export_spans(frame.get("trace_id"),
                                               frame.get("name"))}
        if op == "handler":
            handler = self.handlers.get(frame["name"])
            if handler is None:
                raise KeyError(f"{self.node} has no handler "
                               f"{frame['name']!r}")
            return {"result": handler(frame.get("payload"))}
        if op == "checkpoint":
            for service in self.services.values():
                service.checkpoint()
            return {}
        raise ValueError(f"unknown op {op!r}")

    def _op_validate(self, frame: Mapping[str, Any]) -> Any:
        """Inbound Sect. 4 callback validation: route to the local
        handler a hosted service registered on the RemoteNetwork."""
        if self.network is None:
            raise RuntimeError(f"{self.node} has no network attached")
        certificate = wire.decode_certificate(frame["cert"])
        valid = self.network.local_call(
            frame["domain"], frame["endpoint"], certificate,
            frame.get("principal"), frame.get("holder"))
        return {"valid": bool(valid)}

    def _op_record(self, frame: Mapping[str, Any]) -> Any:
        ref = ref_from_payload(frame["ref"])
        record = self._service_for_ref(ref).credential_record(ref)
        if record is None:
            return {"found": False}
        return {"found": True, "status": record.status,
                "reason": record.revoked_reason,
                "session": record.session_id,
                "principal": record.principal.value,
                "dependencies": [ref_payload(dep) for dep
                                 in record.membership_dependencies]}

    def _op_audit(self, frame: Mapping[str, Any]) -> Any:
        service = self._service(frame["service"])
        kind = frame.get("kind")
        records: List[AccessRecord] = (service.access_log.query(kind=kind)
                                       if kind is not None
                                       else list(service.access_log))
        return {"records": [[entry.timestamp, entry.kind, entry.principal,
                             entry.subject, entry.reason]
                            for entry in records]}

    # -- introspection ------------------------------------------------------
    def export_spans(self, trace_id: Optional[str] = None,
                     name: Optional[str] = None) -> List[Dict[str, Any]]:
        if self.pipeline is None:
            return []
        return [span.to_dict() for span
                in self.pipeline.tracer.spans(trace_id, name)]

    def stats(self) -> Dict[str, Any]:
        service_stats = {key: service.stats.snapshot()
                         for key, service in self.services.items()}
        live = sum(len(service.active_credentials())
                   for service in self.services.values())
        pump = self.pump
        return {
            "node": self.node,
            "requests": self.requests,
            "connections": len(self._connections),
            "live_credentials": live,
            "services": service_stats,
            "broker": self.broker.stats() if self.broker is not None
            else {},
            "pump": {
                "subscribers": pump.subscriber_count if pump else 0,
                "pushed_events": pump.pushed_events if pump else 0,
                "pushed_batches": pump.pushed_batches if pump else 0,
                "skipped_events": pump.skipped_events if pump else 0,
            },
            "handshake": {
                "pending": self._challenges.pending_count,
                "expired": self._challenges.expired_count,
                "evicted": self._challenges.evicted_count,
            },
        }
