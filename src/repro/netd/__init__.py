"""Real asyncio transport: OASIS services over TCP sockets (ROADMAP 1).

Everything before this package ran in one Python process over the
simulated substrate (:mod:`repro.net.sim`).  ``repro.netd`` is where the
paper's *widely distributed* claim becomes literal: an
:class:`~repro.netd.server.OasisServer` hosts one or more
:class:`~repro.core.service.OasisService` instances behind a
length-prefixed JSON protocol (:mod:`repro.netd.protocol`) carrying the
existing :mod:`repro.core.wire` certificate encodings, gated by the
Sect. 4.1 challenge–response handshake; an async
:class:`~repro.netd.client.AsyncOasisClient` (plus a synchronous facade
and a :class:`~repro.netd.client.RemoteNetwork` satisfying the
:class:`~repro.net.adapter.ValidationTransport` surface) talks to it; and
:mod:`repro.netd.events` pushes coalesced ``CREDENTIAL_REVOKED`` batches
— span context included — over persistent connections, so a Fig. 5
revocation cascade crosses OS process boundaries without polling and
still stitches into ONE trace tree.

``repro serve`` (:mod:`repro.netd.cli`) boots one server process from a
world-factory spec; :mod:`repro.netd.deploy` supervises several of them,
and ``examples/serve_ehr.py`` runs the Fig. 3 hospital / national-EHR
scenario as three separate OS processes over real sockets.

See docs/networking.md for the wire format, handshake sequence,
event-channel semantics and failure modes.
"""

from .protocol import (
    ConnectionLost,
    FrameDecoder,
    FrameTooLarge,
    HandshakeError,
    MAX_FRAME,
    OasisNetError,
    ProtocolError,
    RpcError,
    RpcTimeout,
    encode_frame,
    read_frame,
    send_frame,
)
from .client import AsyncOasisClient, OasisClient, RemoteNetwork
from .events import EventChannel, EventPump
from .server import OasisServer
from .runtime import LoopThread

__all__ = [
    "AsyncOasisClient",
    "ConnectionLost",
    "EventChannel",
    "EventPump",
    "FrameDecoder",
    "FrameTooLarge",
    "HandshakeError",
    "LoopThread",
    "MAX_FRAME",
    "OasisClient",
    "OasisNetError",
    "OasisServer",
    "ProtocolError",
    "RemoteNetwork",
    "RpcError",
    "RpcTimeout",
    "encode_frame",
    "read_frame",
    "send_frame",
]
