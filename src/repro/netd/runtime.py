"""A dedicated asyncio loop on a background thread.

The netd stack is async at the core, but two kinds of callers are
synchronous by nature:

* existing scenario/benchmark code driving the sync
  :class:`~repro.netd.client.OasisClient` facade, and
* an :class:`~repro.core.service.OasisService` handler performing a
  *nested* callback-validation RPC to a peer while a server is already
  dispatching it.

Both are served by running all socket I/O on one loop that **no service
code ever blocks**: a served service's handlers run on a single worker
thread (see :mod:`repro.netd.server`), and when such a handler needs the
network it submits a coroutine here and blocks *its own thread* — the
loop keeps pumping bytes, so the nested RPC completes instead of
deadlocking.  One :class:`LoopThread` per process is plenty; clients can
share it.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Any, Coroutine, Optional

__all__ = ["LoopThread"]


class LoopThread:
    """An asyncio event loop running on a daemon thread.

    ``start()``/``stop()`` bracket the lifetime; :meth:`run` is the sync
    bridge (submit a coroutine, block the *calling* thread for the
    result) and :meth:`spawn` the fire-and-track variant for long-lived
    tasks such as event channels.
    """

    def __init__(self, name: str = "oasis-netd") -> None:
        self._name = name
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise RuntimeError("LoopThread not started")
        return self._loop

    @property
    def running(self) -> bool:
        return self._loop is not None and self._loop.is_running()

    def start(self) -> "LoopThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(target=self._main, name=self._name,
                                        daemon=True)
        self._thread.start()
        self._started.wait()
        return self

    def _main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._started.set()
        try:
            loop.run_forever()
        finally:
            # Cancel whatever is still pending so `loop.close()` does not
            # complain about destroyed tasks.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    def run(self, coro: Coroutine[Any, Any, Any],
            timeout: Optional[float] = None) -> Any:
        """Run ``coro`` on the loop; block the calling thread for the
        result.  Must not be called from the loop thread itself (that
        would be the self-deadlock this class exists to prevent)."""
        if threading.current_thread() is self._thread:
            raise RuntimeError(
                "LoopThread.run called from its own loop thread")
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise

    def spawn(self, coro: Coroutine[Any, Any, Any]
              ) -> "concurrent.futures.Future[Any]":
        """Schedule ``coro`` without waiting; returns its future."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        if self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5)
        self._loop = None
        self._thread = None
        self._started.clear()

    def __enter__(self) -> "LoopThread":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
