"""Clients for the OASIS socket protocol.

Three layers, outermost first:

* :class:`AsyncOasisClient` — one TCP connection, request/response with
  correlation ids, optional challenge–response handshake, per-call
  deadlines.  Multiple in-flight requests are fine; a background reader
  task dispatches responses by id and routes event pushes.
* :class:`OasisClient` — the synchronous facade.  Wraps an async client
  on a shared :class:`~repro.netd.runtime.LoopThread` and exposes the
  service surface scenario code already speaks (``activate`` /
  ``invoke`` / ``revoke`` / ``is_active`` …), with certificates decoded
  back into real :mod:`repro.core` objects.
* :class:`RemoteNetwork` — the :class:`~repro.net.sim.SimNetwork`
  surface (``register``/``unregister``/``has_endpoint``/``call``) over
  sockets, so an :class:`~repro.core.service.OasisService` constructed
  with ``network=RemoteNetwork(...)`` performs Sect. 4 callback
  validation against *remote* issuers without a single changed line in
  the core.  Endpoint→peer routing is discovered lazily through each
  peer's ``services`` op and cached; unknown issuers simply report "no
  endpoint", which the service already treats as fail-closed.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import asyncio

from ..core import wire
from ..core.credentials import CredentialRef
from ..core.service import Presentation
from ..core.state import ref_payload
from ..crypto.challenge import ChallengeResponseClient, IssuedChallenge
from ..crypto.keys import KeyPair
from ..events import Event
from .protocol import (
    MAX_FRAME,
    ConnectionLost,
    OasisNetError,
    RpcTimeout,
    raise_remote_error,
    read_frame,
    send_frame,
)
from .runtime import LoopThread

__all__ = ["AsyncOasisClient", "OasisClient", "RemoteNetwork",
           "presentation_payload"]

CertificateLike = Union[Presentation, Any]


def presentation_payload(credential: CertificateLike) -> Dict[str, Any]:
    """A presented credential as its wire dict (bare certificates are
    wrapped in a default :class:`Presentation` first)."""
    if not isinstance(credential, Presentation):
        credential = Presentation(credential)
    payload: Dict[str, Any] = {
        "cert": wire.encode_certificate(credential.certificate)}
    if credential.holder is not None:
        payload["holder"] = credential.holder
    if credential.on_behalf_of is not None:
        payload["on_behalf_of"] = credential.on_behalf_of
    return payload


def _credential_payloads(credentials: Sequence[CertificateLike]
                         ) -> List[Dict[str, Any]]:
    return [presentation_payload(credential) for credential in credentials]


class AsyncOasisClient:
    """One connection to an :class:`~repro.netd.server.OasisServer`."""

    def __init__(self, host: str, port: int, *, peer: str = "server",
                 timeout: float = 10.0,
                 max_frame: int = MAX_FRAME) -> None:
        self.host = host
        self.port = port
        self.peer = peer
        self.timeout = timeout
        self.max_frame = max_frame
        self._ids = itertools.count(1)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self._pending: Dict[int, "asyncio.Future[Dict[str, Any]]"] = {}
        self._send_lock = asyncio.Lock()
        self._push_handler: Optional[
            Callable[[str, List[Event]], None]] = None
        self.principal: Optional[str] = None

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self) -> "AsyncOasisClient":
        if self._writer is not None:
            return self
        try:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port)
        except (ConnectionError, OSError) as error:
            raise ConnectionLost(
                f"cannot connect to {self.peer} at "
                f"{self.host}:{self.port}: {error}") from error
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())
        return self

    async def close(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        task, self._reader_task = self._reader_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self._fail_pending(ConnectionLost(
            f"connection to {self.peer} closed"))

    def _fail_pending(self, error: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(error)

    async def _read_loop(self) -> None:
        reader = self._reader
        assert reader is not None
        try:
            while True:
                frame = await read_frame(reader, self.max_frame)
                if frame is None:
                    raise ConnectionLost(
                        f"{self.peer} closed the connection")
                if "push" in frame:
                    self._handle_push(frame)
                    continue
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - fan out to waiters
            if not isinstance(error, OasisNetError):
                error = ConnectionLost(
                    f"connection to {self.peer} failed: {error}")
            self._fail_pending(error)

    def _handle_push(self, frame: Dict[str, Any]) -> None:
        handler = self._push_handler
        if handler is None or frame.get("push") != "events":
            return
        origin = frame.get("origin", self.peer)
        events = [Event.from_payload(payload)
                  for payload in frame.get("events", ())]
        handler(origin, events)

    async def call(self, op: str, *, _timeout: Optional[float] = None,
                   **fields: Any) -> Any:
        """One RPC; returns the response value or raises.

        Transport failures raise :class:`~repro.netd.protocol`
        errors; remote handler failures re-raise as core exceptions or
        :class:`~repro.netd.protocol.RpcError`.  A deadline miss closes
        the connection — responses on it can no longer be trusted to
        match requests that may still be executing remotely.
        """
        if self._writer is None:
            await self.connect()
        assert self._writer is not None
        request_id = next(self._ids)
        message = {"id": request_id, "op": op}
        message.update(fields)
        future: "asyncio.Future[Dict[str, Any]]" = \
            asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            async with self._send_lock:
                await send_frame(self._writer, message, self.max_frame)
            timeout = self.timeout if _timeout is None else _timeout
            response = await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(request_id, None)
            await self.close()
            raise RpcTimeout(
                f"{self.peer} did not answer {op!r} within {timeout}s"
            ) from None
        except OasisNetError:
            self._pending.pop(request_id, None)
            raise
        if response.get("ok"):
            return response.get("value")
        raise_remote_error(self.peer, response.get("error"))

    async def handshake(self, keypair: KeyPair) -> str:
        """Prove possession of ``keypair``'s private key (Sect. 4.1).

        Returns the key-derived principal identity the server will
        associate with this connection (``key:<fingerprint>``)."""
        public = keypair.public
        issued = await self.call("auth.hello",
                                 key={"n": str(public.n),
                                      "e": str(public.e)})
        response = ChallengeResponseClient(keypair).respond(IssuedChallenge(
            challenge_id=issued["challenge_id"],
            encrypted_challenge=bytes.fromhex(issued["challenge"]),
            nonce=bytes.fromhex(issued["nonce"])))
        proved = await self.call("auth.prove",
                                 challenge_id=issued["challenge_id"],
                                 response=response.hex())
        self.principal = proved["principal"]
        return self.principal

    async def subscribe_events(
            self, handler: Callable[[str, List[Event]], None]) -> None:
        """Receive the server's event pushes; ``handler(origin, events)``
        runs on this client's event loop."""
        self._push_handler = handler
        await self.call("subscribe_events")


class OasisClient:
    """Synchronous facade over :class:`AsyncOasisClient`.

    Owns a :class:`LoopThread` unless handed one to share; every method
    blocks the calling thread while the loop does the I/O, so it is safe
    to call from service worker threads (nested callback validation)
    and from plain scripts alike.
    """

    def __init__(self, host: str, port: int, *, peer: str = "server",
                 timeout: float = 10.0, max_frame: int = MAX_FRAME,
                 loop: Optional[LoopThread] = None) -> None:
        self._own_loop = loop is None
        self._loop = (loop or LoopThread(f"oasis-client-{peer}")).start()
        self._client = AsyncOasisClient(host, port, peer=peer,
                                        timeout=timeout,
                                        max_frame=max_frame)
        self.timeout = timeout

    @property
    def peer(self) -> str:
        return self._client.peer

    @property
    def principal(self) -> Optional[str]:
        return self._client.principal

    def _run(self, coro: Any) -> Any:
        # The outer grace period only matters if the loop itself wedges;
        # per-call deadlines are enforced inside AsyncOasisClient.
        return self._loop.run(coro, timeout=self.timeout + 30.0)

    def connect(self) -> "OasisClient":
        self._run(self._client.connect())
        return self

    def close(self) -> None:
        try:
            self._run(self._client.close())
        finally:
            if self._own_loop:
                self._loop.stop()

    def __enter__(self) -> "OasisClient":
        return self.connect()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- raw + auth ---------------------------------------------------------
    def call(self, op: str, *, _timeout: Optional[float] = None,
             **fields: Any) -> Any:
        return self._run(self._client.call(op, _timeout=_timeout, **fields))

    def handshake(self, keypair: KeyPair) -> str:
        return self._run(self._client.handshake(keypair))

    def subscribe_events(
            self, handler: Callable[[str, List[Event]], None]) -> None:
        self._run(self._client.subscribe_events(handler))

    # -- service surface ----------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def services(self) -> Dict[str, Any]:
        return self.call("services")

    def activate(self, service: str, principal: str, role: str,
                 parameters: Optional[Sequence[Any]] = None,
                 credentials: Sequence[CertificateLike] = (),
                 environment: Optional[Dict[str, Any]] = None,
                 session: Optional[str] = None) -> Any:
        request: Dict[str, Any] = {"principal": principal, "role": role}
        if parameters is not None:
            request["parameters"] = list(parameters)
        if credentials:
            request["credentials"] = _credential_payloads(credentials)
        if environment is not None:
            request["environment"] = environment
        if session is not None:
            request["session"] = session
        value = self.call("activate", service=service, request=request)
        return wire.decode_certificate(value["cert"])

    def activate_bulk(self, service: str,
                      requests: Sequence[Dict[str, Any]]) -> List[Any]:
        value = self.call("activate_bulk", service=service,
                          requests=list(requests))
        return [wire.decode_certificate(cert) for cert in value["certs"]]

    def appoint(self, service: str, appointer: str, name: str,
                parameters: Sequence[Any],
                credentials: Sequence[CertificateLike] = (),
                holder: Optional[str] = None,
                expires_at: Optional[float] = None) -> Any:
        value = self.call(
            "appoint", service=service, appointer=appointer, name=name,
            parameters=list(parameters),
            credentials=_credential_payloads(credentials),
            holder=holder, expires_at=expires_at)
        return wire.decode_certificate(value["cert"])

    def invoke(self, service: str, principal: str, method: str,
               arguments: Sequence[Any] = (),
               credentials: Sequence[CertificateLike] = ()) -> Any:
        value = self.call(
            "invoke", service=service, principal=principal, method=method,
            arguments=list(arguments),
            credentials=_credential_payloads(credentials))
        return value["result"]

    def revoke(self, ref: CredentialRef, reason: str = "revoked") -> bool:
        value = self.call("revoke", ref=ref_payload(ref), reason=reason)
        return bool(value["revoked"])

    def is_active(self, ref: CredentialRef) -> bool:
        value = self.call("is_active", ref=ref_payload(ref))
        return bool(value["active"])

    def record(self, ref: CredentialRef) -> Dict[str, Any]:
        return self.call("record", ref=ref_payload(ref))

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def spans(self, trace_id: Optional[str] = None,
              name: Optional[str] = None) -> List[Dict[str, Any]]:
        return self.call("spans", trace_id=trace_id, name=name)["spans"]

    def handler(self, name: str, payload: Any = None) -> Any:
        return self.call("handler", name=name, payload=payload)["result"]

    def checkpoint(self) -> None:
        self.call("checkpoint")

    def shutdown(self) -> None:
        """Ask the served process to exit gracefully."""
        self.call("shutdown")


class RemoteNetwork:
    """The :class:`~repro.net.sim.SimNetwork` surface over TCP.

    A served process hands this to every hosted
    :class:`~repro.core.service.OasisService` as its ``network``; local
    services land in ``_local`` (the server dispatches inbound
    ``validate`` ops there), and foreign issuers are reached through
    per-peer :class:`OasisClient` connections with lazily discovered
    ``(domain, endpoint) -> peer`` routes.

    Only the callback-validation protocol travels here — ``call`` expects
    the adapter's ``(certificate, principal_value, holder)`` argument
    shape, which is the entire surface :class:`ValidationTransport`
    needs.
    """

    def __init__(self, node: str = "client",
                 peers: Optional[Mapping[str, Tuple[str, int]]] = None,
                 loop: Optional[LoopThread] = None,
                 timeout: float = 10.0,
                 max_frame: int = MAX_FRAME) -> None:
        self.node = node
        self._peers: Dict[str, Tuple[str, int]] = dict(peers or {})
        self._own_loop = loop is None
        self._loop = loop or LoopThread(f"oasis-net-{node}")
        self._timeout = timeout
        self._max_frame = max_frame
        self._local: Dict[Tuple[str, str], Callable[..., Any]] = {}
        self._clients: Dict[str, OasisClient] = {}
        self._routes: Dict[Tuple[str, str], str] = {}

    def add_peer(self, name: str, host: str, port: int) -> None:
        self._peers[name] = (host, port)

    # -- SimNetwork surface -------------------------------------------------
    def register(self, domain: str, name: str,
                 handler: Callable[..., Any]) -> None:
        key = (domain, name)
        if key in self._local:
            raise ValueError(f"endpoint {domain}/{name} already registered")
        self._local[key] = handler

    def unregister(self, domain: str, name: str) -> None:
        self._local.pop((domain, name), None)

    def has_endpoint(self, domain: str, name: str) -> bool:
        key = (domain, name)
        if key in self._local:
            return True
        return self._route(key) is not None

    def call(self, src_domain: str, dst_domain: str, name: str,
             *args: Any, **kwargs: Any) -> Any:
        """Callback-validation RPC (the :class:`ValidationTransport`
        protocol); local endpoints short-circuit without touching a
        socket."""
        key = (dst_domain, name)
        local = self._local.get(key)
        if local is not None:
            return local(*args, **kwargs)
        peer = self._route(key)
        if peer is None:
            raise OasisNetError(
                f"{self.node}: no peer hosts endpoint "
                f"{dst_domain}/{name}")
        certificate, principal_value, holder = args
        value = self._client(peer).call(
            "validate", domain=dst_domain, endpoint=name,
            cert=wire.encode_certificate(certificate),
            principal=principal_value, holder=holder)
        return value.get("valid", True)

    # -- server-side helpers ------------------------------------------------
    def local_call(self, domain: str, name: str, *args: Any) -> Any:
        """Dispatch an inbound ``validate`` op to a local handler."""
        handler = self._local.get((domain, name))
        if handler is None:
            raise KeyError(f"{self.node} hosts no endpoint {domain}/{name}")
        return handler(*args)

    def local_endpoints(self) -> List[Dict[str, str]]:
        """What this node advertises through the ``services`` op."""
        return [{"domain": domain, "endpoint": name}
                for domain, name in self._local]

    # -- routing ------------------------------------------------------------
    def _route(self, key: Tuple[str, str]) -> Optional[str]:
        route = self._routes.get(key)
        if route is not None:
            return route
        # Lazy discovery: ask every configured peer what it hosts.  A
        # miss is NOT negative-cached — at boot a peer may register its
        # services moments after we first ask.
        for peer in self._peers:
            try:
                advertised = self._client(peer).services()
            except OasisNetError:
                continue
            for entry in advertised.get("endpoints", ()):
                entry_key = (entry["domain"], entry["endpoint"])
                self._routes.setdefault(entry_key, peer)
        return self._routes.get(key)

    def _client(self, peer: str) -> OasisClient:
        client = self._clients.get(peer)
        if client is None:
            host, port = self._peers[peer]
            client = OasisClient(host, port, peer=peer,
                                 timeout=self._timeout,
                                 max_frame=self._max_frame,
                                 loop=self._loop.start())
            self._clients[peer] = client
        return client

    def close(self) -> None:
        for client in self._clients.values():
            try:
                client.close()
            except OasisNetError:
                pass
        self._clients.clear()
        if self._own_loop:
            self._loop.stop()
