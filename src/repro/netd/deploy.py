"""Serve bootstrap and multi-process supervisor.

:func:`serve_node` is what ``repro serve`` runs: build one node's world
on a :class:`~repro.netd.worlds.NodeContext`, host it in an
:class:`~repro.netd.server.OasisServer`, open
:class:`~repro.netd.events.EventChannel` subscriptions to the peers
named in the spec, print a ``OASIS-READY`` line and serve until a
client sends ``shutdown`` (or the process is killed — which is exactly
what the kill-and-resume path is for: with a sqlite state directory the
next incarnation resumes from the store).

:class:`Supervisor` turns a list of :class:`NodeSpec` into real OS
processes (``python -m repro serve ...``), waits for readiness by
pinging each port, hands out :class:`~repro.netd.client.OasisClient`
connections, and can kill/restart individual nodes for fault drills.
``examples/serve_ehr.py`` and the netd integration tests drive it.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.service import ServiceRegistry
from ..events import EventBroker
from ..obs.runtime import Observability, disable, enable
from .client import OasisClient, RemoteNetwork
from .events import EventChannel
from .protocol import OasisNetError
from .runtime import LoopThread
from .server import OasisServer
from .worlds import NodeContext, resolve_factory

__all__ = ["NodeSpec", "serve_node", "Supervisor", "free_port"]

#: Printed (and flushed) by a served process once its port is accepting.
READY_BANNER = "OASIS-READY"


def free_port() -> int:
    """An OS-assigned free TCP port (racy by nature, fine for demos and
    tests that bind immediately after)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@dataclass
class NodeSpec:
    """Everything one served process needs to boot."""

    name: str
    port: int
    world: str  # "package.module:factory"
    host: str = "127.0.0.1"
    args: Tuple[str, ...] = ()
    #: name -> (host, port): peers reachable for callback validation.
    peers: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    #: Peer names whose event streams this node subscribes to (the
    #: Fig. 5 dependency direction: subscribe to your issuers).
    subscribe: Tuple[str, ...] = ()
    state_dir: Optional[str] = None
    observed: bool = False
    require_handshake: bool = False

    def argv(self) -> List[str]:
        """The ``python -m repro serve`` command line for this spec."""
        argv = [sys.executable, "-m", "repro", "serve",
                "--node", self.name, "--host", self.host,
                "--port", str(self.port), "--world", self.world]
        for arg in self.args:
            argv += ["--world-arg", arg]
        for peer, (host, port) in self.peers.items():
            argv += ["--peer", f"{peer}={host}:{port}"]
        for peer in self.subscribe:
            argv += ["--subscribe", peer]
        if self.state_dir:
            argv += ["--state-dir", self.state_dir]
        if self.observed:
            argv.append("--observed")
        if self.require_handshake:
            argv.append("--require-handshake")
        return argv


def serve_node(spec: NodeSpec) -> None:
    """Run one served node to completion (blocking)."""
    pipeline: Optional[Observability] = None
    if spec.observed:
        # Node-prefixed span ids: each process mints globally unique ids
        # a driver can merge with Tracer.adopt (same scheme as shards).
        pipeline = Observability(trace_id_prefix=f"{spec.name}.")
        enable(pipeline)
    try:
        broker = EventBroker()
        registry = ServiceRegistry()
        network = RemoteNetwork(spec.name, peers=spec.peers)
        ctx = NodeContext(spec.name, broker, registry, network,
                          state_dir=spec.state_dir)
        world = resolve_factory(spec.world)(ctx, *spec.args)
        # Make boot-time state (notably each service's signing secret)
        # durable before accepting traffic: stores are write-behind, and
        # a SIGKILL before the first flush would otherwise resume as a
        # *fresh* service whose new secret rejects every outstanding
        # certificate.
        for service in world.services.values():
            service.checkpoint()
    finally:
        if spec.observed:
            # Services snapshot the pipeline at construction; the global
            # need not stay set.
            disable()
    server = OasisServer(
        spec.name, world.services, broker=broker, network=network,
        handlers=dict(getattr(world, "handlers", None) or {}),
        host=spec.host, port=spec.port,
        require_handshake=spec.require_handshake, pipeline=pipeline)
    try:
        asyncio.run(_serve(spec, server, broker))
    finally:
        network.close()


async def _serve(spec: NodeSpec, server: OasisServer,
                 broker: EventBroker) -> None:
    await server.start()
    channels: List[EventChannel] = []
    for peer in spec.subscribe:
        host, port = spec.peers[peer]
        channel = EventChannel(
            peer, host, port,
            # Remote batches enter the local broker on the service worker
            # thread — same single-threaded discipline as RPC dispatch.
            lambda events: server.submit(broker.publish_batch, events))
        channel.start()
        channels.append(channel)
        server.channels[peer] = channel
    print(f"{READY_BANNER} node={spec.name} port={server.port}",
          flush=True)
    try:
        await server.serve_until_shutdown()
    finally:
        for channel in channels:
            await channel.stop()


class Supervisor:
    """Spawn, monitor and stop a fleet of served nodes."""

    def __init__(self, specs: Sequence[NodeSpec],
                 ready_timeout: float = 30.0) -> None:
        self.specs: Dict[str, NodeSpec] = {spec.name: spec
                                           for spec in specs}
        self.ready_timeout = ready_timeout
        self._procs: Dict[str, subprocess.Popen] = {}
        self._clients: Dict[str, OasisClient] = {}
        self._loop = LoopThread("oasis-supervisor")

    # -- lifecycle ----------------------------------------------------------
    def start(self, *names: str) -> "Supervisor":
        """Launch the named nodes (all of them by default) and wait until
        each answers ``ping``."""
        targets = list(names) or list(self.specs)
        for name in targets:
            self._spawn(name)
        deadline = time.monotonic() + self.ready_timeout
        for name in targets:
            self._wait_ready(name, deadline)
        return self

    def _spawn(self, name: str) -> None:
        spec = self.specs[name]
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))), "")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src.rstrip(os.sep), env.get("PYTHONPATH")) if p)
        self._procs[name] = subprocess.Popen(spec.argv(), env=env)

    def _wait_ready(self, name: str, deadline: float) -> None:
        spec = self.specs[name]
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            proc = self._procs.get(name)
            if proc is not None and proc.poll() is not None:
                raise RuntimeError(
                    f"node {name} exited with {proc.returncode} "
                    f"before becoming ready")
            try:
                pong = self.client(name).ping()
                # Ready means *subscribed*, not just listening: an event
                # channel still reconnecting would miss cascade events
                # published in the gap (subscriptions are not replayed).
                channels = pong.get("channels", {})
                if all(channels.get(peer, True)
                       for peer in spec.subscribe):
                    return
                last_error = RuntimeError(
                    f"event channels not yet connected: "
                    f"{[p for p in spec.subscribe if not channels.get(p)]}")
                time.sleep(0.05)
            except OasisNetError as error:
                last_error = error
                self._drop_client(name)
                time.sleep(0.05)
        raise TimeoutError(
            f"node {name} not ready on {spec.host}:{spec.port} within "
            f"{self.ready_timeout}s: {last_error}")

    # -- clients ------------------------------------------------------------
    def client(self, name: str) -> OasisClient:
        client = self._clients.get(name)
        if client is None:
            spec = self.specs[name]
            client = OasisClient(spec.host, spec.port, peer=name,
                                 loop=self._loop.start())
            self._clients[name] = client
        return client

    def _drop_client(self, name: str) -> None:
        client = self._clients.pop(name, None)
        if client is not None:
            try:
                client.close()
            except OasisNetError:
                pass

    # -- fault drills -------------------------------------------------------
    def kill(self, name: str) -> None:
        """Hard-kill a node (SIGKILL): the crash in kill-and-resume."""
        proc = self._procs.pop(name, None)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        self._drop_client(name)

    def restart(self, name: str) -> None:
        """Relaunch a node (after :meth:`kill`) and wait for readiness."""
        self._spawn(name)
        self._wait_ready(name, time.monotonic() + self.ready_timeout)

    # -- teardown -----------------------------------------------------------
    def stop(self) -> None:
        """Graceful fleet shutdown: ask politely, then escalate."""
        for name in list(self._procs):
            try:
                self.client(name).shutdown()
            except OasisNetError:
                pass
        for name, proc in list(self._procs.items()):
            if proc.poll() is None:
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.send_signal(signal.SIGTERM)
                    try:
                        proc.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait(timeout=5)
            self._procs.pop(name, None)
        for name in list(self._clients):
            self._drop_client(name)
        self._loop.stop()

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
