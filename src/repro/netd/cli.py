"""``repro serve`` — host OASIS services over TCP.

One invocation = one served process.  The world factory is named as
``package.module:factory`` (see :mod:`repro.netd.worlds` for the
contract and the built-in EHR worlds); peers give the addresses used for
callback validation, and ``--subscribe`` opens persistent event-channel
subscriptions so revocation cascades cross process boundaries.

Example — the Fig. 3 hospital records node::

    python -m repro serve --node records --port 7102 \\
        --world repro.netd.worlds:ehr_records \\
        --peer front=127.0.0.1:7101 --subscribe front \\
        --state-dir /var/lib/oasis/records

(Normally driven by :class:`~repro.netd.deploy.Supervisor` /
``examples/serve_ehr.py`` rather than by hand.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .deploy import NodeSpec, serve_node

__all__ = ["add_serve_parser", "cmd_serve", "parse_peer"]


def parse_peer(value: str) -> tuple:
    """``name=host:port`` → ``(name, host, port)``."""
    name, sep, address = value.partition("=")
    host, sep2, port = address.rpartition(":")
    if not sep or not sep2 or not name or not host:
        raise argparse.ArgumentTypeError(
            f"peer {value!r} must look like name=host:port")
    try:
        return name, host, int(port)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"peer {value!r} has a non-numeric port") from None


def add_serve_parser(sub: argparse._SubParsersAction) -> None:
    serve = sub.add_parser(
        "serve", help="host OASIS services over TCP (repro.netd)")
    serve.add_argument("--node", required=True,
                       help="this node's name (event-push origin, span "
                            "id prefix)")
    serve.add_argument("--world", required=True,
                       help="world factory as package.module:factory")
    serve.add_argument("--world-arg", action="append", default=[],
                       metavar="ARG", help="extra factory argument; "
                                           "repeatable")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (0 = OS-assigned; the bound port "
                            "is printed on the OASIS-READY line)")
    serve.add_argument("--peer", action="append", default=[],
                       type=parse_peer, metavar="NAME=HOST:PORT",
                       help="peer address for callback validation; "
                            "repeatable")
    serve.add_argument("--subscribe", action="append", default=[],
                       metavar="NAME",
                       help="subscribe to this peer's event stream; "
                            "repeatable")
    serve.add_argument("--state-dir", default=None,
                       help="per-service sqlite default directory when "
                            "OASIS_STORE_BACKEND=sqlite has no explicit "
                            "path (enables kill-and-resume)")
    serve.add_argument("--observed", action="store_true",
                       help="enable the observability pipeline with "
                            "node-prefixed span ids")
    serve.add_argument("--require-handshake", action="store_true",
                       help="refuse state-touching ops until the "
                            "challenge-response handshake completes")
    serve.set_defaults(func=cmd_serve)


def cmd_serve(args: argparse.Namespace) -> int:
    peers = {name: (host, port) for name, host, port in args.peer}
    for peer in args.subscribe:
        if peer not in peers:
            print(f"error: --subscribe {peer} has no matching --peer",
                  file=sys.stderr)
            return 2
    spec = NodeSpec(
        name=args.node, port=args.port, world=args.world,
        host=args.host, args=tuple(args.world_arg), peers=peers,
        subscribe=tuple(args.subscribe), state_dir=args.state_dir,
        observed=args.observed, require_handshake=args.require_handshake)
    try:
        serve_node(spec)
    except KeyboardInterrupt:
        pass
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.netd.cli")
    sub = parser.add_subparsers(dest="command", required=True)
    add_serve_parser(sub)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
