"""Length-prefixed JSON framing and the typed transport errors.

Wire format
===========

Every message is one *frame*::

    +----------------+----------------------------+
    | length (4B BE) | UTF-8 JSON object (length) |
    +----------------+----------------------------+

The body is always a JSON *object* (never a bare list/scalar) so every
frame has room for an envelope.  Three envelope shapes travel over one
connection:

* **request** — ``{"id": <int>, "op": <str>, ...fields}``
* **response** — ``{"id": <int>, "ok": true, "value": ...}`` or
  ``{"id": <int>, "ok": false, "error": {"type": ..., "message": ...}}``
* **push** — ``{"push": "events", "origin": <node>, "events": [...]}``
  (server → client only, on connections that issued ``subscribe_events``)

Certificates cross as :mod:`repro.core.wire` payloads and events as
:meth:`repro.events.messages.Event.to_payload` dicts — the same encodings
the persistence journal and the shard pipes already round-trip, so nothing
process-local ever crosses the boundary.

Malformed input is rejected *here*, with :class:`ProtocolError` — a
truncated length prefix, an oversized frame (DoS guard; the limit is
``max_frame``), a body that is not valid UTF-8 JSON, or a body that is
not an object.  :class:`FrameDecoder` is deliberately incremental and
side-effect-free so the same code path serves asyncio streams, blocking
sockets and the fuzz suite.

Error taxonomy
==============

:class:`OasisNetError` subclasses :class:`repro.net.sim.NetworkError` on
purpose: the service core's fail-closed branch (``_callback_validate``
catching ``NetworkError``) then treats a dead socket exactly like a
partitioned simulated link — "issuer unreachable" stays a policy decision
owned by the service, not the transport.  :class:`RpcError` is the one
exception that is *not* a transport failure: the remote handler raised,
and the type name rides back (mirroring
:class:`repro.shard.router.ShardRequestError`) so callers can branch on
the access-control outcome.  Well-known core exception types are re-raised
as themselves by :func:`raise_remote_error` — a remote
``ActivationDenied`` is an ``ActivationDenied`` at the client, which is
what lets scenario code run unchanged against sockets.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, List, Optional

from ..core import exceptions as _core_exceptions
from ..net.sim import NetworkError

__all__ = [
    "MAX_FRAME",
    "OasisNetError",
    "ProtocolError",
    "FrameTooLarge",
    "ConnectionLost",
    "RpcTimeout",
    "HandshakeError",
    "RpcError",
    "encode_frame",
    "FrameDecoder",
    "read_frame",
    "send_frame",
    "error_payload",
    "raise_remote_error",
]

#: Default maximum frame body size.  Large enough for a multi-thousand
#: event coalesced cascade batch, small enough that one hostile frame
#: cannot balloon a server's memory.
MAX_FRAME = 4 * 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_SIZE = _HEADER.size


class OasisNetError(NetworkError):
    """A socket-transport failure (subclasses ``NetworkError`` so the
    service core's fail-closed validation branch applies unchanged)."""


class ProtocolError(OasisNetError):
    """The peer sent bytes that are not a valid frame."""


class FrameTooLarge(ProtocolError):
    """A frame announced a body larger than the negotiated maximum."""


class ConnectionLost(OasisNetError):
    """The connection died before a response arrived (peer killed
    mid-RPC, reset, or EOF inside a frame)."""


class RpcTimeout(OasisNetError):
    """The peer did not answer within the client's deadline (slow or
    stalled peer; the connection is closed afterwards — frames on it can
    no longer be matched to requests reliably)."""


class HandshakeError(OasisNetError):
    """The challenge–response handshake failed or is required but
    missing."""


class RpcError(RuntimeError):
    """A remote handler raised; not a transport failure.

    ``error_type`` preserves the remote exception class name (mirroring
    :class:`repro.shard.router.ShardRequestError`) so callers can branch
    on the outcome without sharing exception objects across the wire.
    """

    def __init__(self, node: str, error_type: str, message: str) -> None:
        super().__init__(f"{node}: {error_type}: {message}")
        self.node = node
        self.error_type = error_type
        self.detail = message


# -- encoding ------------------------------------------------------------------

def encode_frame(payload: Dict[str, Any],
                 max_frame: int = MAX_FRAME) -> bytes:
    """One message as length-prefixed JSON bytes.

    Compact separators: frames are a hot path (every RPC is two) and the
    payloads are machine-built, so pretty-printing only costs bytes.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_frame:
        raise FrameTooLarge(
            f"outgoing frame of {len(body)} bytes exceeds the "
            f"{max_frame}-byte limit")
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame parser: feed bytes, get decoded objects.

    Keeps at most ``header + max_frame`` buffered; an announced length
    beyond ``max_frame`` raises :exc:`FrameTooLarge` *before* any body
    bytes accumulate, so a hostile peer cannot make the buffer grow.
    """

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes held while waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Consume ``data``; return every complete frame it finished."""
        self._buffer.extend(data)
        frames: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < HEADER_SIZE:
                return frames
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame:
                raise FrameTooLarge(
                    f"peer announced a {length}-byte frame "
                    f"(limit {self.max_frame})")
            end = HEADER_SIZE + length
            if len(self._buffer) < end:
                return frames
            body = bytes(self._buffer[HEADER_SIZE:end])
            del self._buffer[:end]
            frames.append(decode_body(body))

    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (clean EOF point)."""
        return not self._buffer


def decode_body(body: bytes) -> Dict[str, Any]:
    """Decode one frame body; :exc:`ProtocolError` on anything malformed."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not JSON: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got "
            f"{type(message).__name__}")
    return message


# -- asyncio stream helpers ----------------------------------------------------

async def read_frame(reader: asyncio.StreamReader,
                     max_frame: int = MAX_FRAME
                     ) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    EOF *inside* a frame — the peer died mid-message — raises
    :exc:`ConnectionLost`: the two conditions mean different things to an
    RPC client (graceful shutdown vs. a request that will never be
    answered) and must stay distinguishable.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ConnectionLost(
            "peer closed the connection inside a frame header") from error
    except (ConnectionError, OSError) as error:
        raise ConnectionLost(f"connection lost: {error}") from error
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(
            f"peer announced a {length}-byte frame (limit {max_frame})")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ConnectionLost(
            "peer closed the connection inside a frame body") from error
    except (ConnectionError, OSError) as error:
        raise ConnectionLost(f"connection lost: {error}") from error
    return decode_body(body)


async def send_frame(writer: asyncio.StreamWriter, payload: Dict[str, Any],
                     max_frame: int = MAX_FRAME) -> None:
    """Write one frame and drain — the drain is the backpressure point:
    a slow reader stalls its own connection, never the whole server."""
    try:
        writer.write(encode_frame(payload, max_frame))
        await writer.drain()
    except (ConnectionError, OSError) as error:
        raise ConnectionLost(f"connection lost: {error}") from error


# -- remote error mapping ------------------------------------------------------

def _known_exceptions() -> Dict[str, type]:
    known: Dict[str, type] = {}
    for name in dir(_core_exceptions):
        value = getattr(_core_exceptions, name)
        if isinstance(value, type) and issubclass(value, Exception):
            known[name] = value
    return known


#: Exception classes a remote error may be re-raised as.  Only the core
#: access-control taxonomy plus this module's own handshake error
#: qualify: re-instantiating arbitrary remote type names would let a
#: hostile server pick any importable exception.
_KNOWN_EXCEPTIONS = _known_exceptions()
_KNOWN_EXCEPTIONS["HandshakeError"] = HandshakeError


def error_payload(error: BaseException) -> Dict[str, str]:
    """How a handler exception crosses the wire."""
    return {"type": type(error).__name__, "message": str(error)}


def raise_remote_error(node: str, payload: Any) -> "NoReturn":  # noqa: F821
    """Re-raise a remote error: core exceptions as themselves (so scenario
    code catches ``ActivationDenied`` etc. unchanged), everything else as
    :exc:`RpcError` carrying the remote type name."""
    if not isinstance(payload, dict):
        raise RpcError(node, "UnknownError", repr(payload))
    error_type = str(payload.get("type", "UnknownError"))
    message = str(payload.get("message", ""))
    known = _KNOWN_EXCEPTIONS.get(error_type)
    if known is not None:
        raise known(message)
    raise RpcError(node, error_type, message)
