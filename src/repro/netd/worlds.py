"""World factories for served nodes: build the services one process hosts.

A served process is handed a :class:`NodeContext` (broker, registry,
:class:`~repro.netd.client.RemoteNetwork`, wall clock, optional state
directory) and a factory ``factory(ctx, *args)`` returning an object
with a ``services`` mapping and optionally a ``handlers`` mapping —
the exact contract :mod:`repro.shard.worker` uses, so world code is
portable between the pipe transport and sockets.

Every node rebuilds the *policies* it needs locally (policies are
code), but hosts only its own services: the Fig. 3 EHR deployment
splits into

* :func:`ehr_front` — hospital ``login`` + ``admin`` (issues the
  ``allocated`` appointment, the cascade's root);
* :func:`ehr_records` — hospital ``records`` with ``treating_doctor``,
  whose activation validates the login RMC and allocation appointment
  by callback *over TCP* to the front node;
* :func:`ehr_national` — national ``registry`` + ``patient-records``,
  validating treating RMCs by callback to the records node and caching
  them behind an ECR subscription.

Cross-service references (the admin service's id in the records policy,
the foreign ``treating_doctor`` role in the national policy) are plain
identifiers — :class:`~repro.core.types.ServiceId` /
:class:`~repro.core.types.RoleName` — so no node needs another node's
live objects.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from ..core.policy import ServicePolicy
from ..core.rules import (
    ActivationRule,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    PrerequisiteRole,
)
from ..core.service import OasisService, ServiceRegistry
from ..core.state import META, ServiceStateCodec
from ..core.terms import Var
from ..core.types import RoleName, RoleTemplate, ServiceId
from ..db import Database, default_store
from ..events import EventBroker

__all__ = ["NodeContext", "World", "resolve_factory",
           "ehr_front", "ehr_records", "ehr_national", "bench_world"]


class World:
    """What a factory returns: hosted services plus world-side handlers."""

    def __init__(self, services: Dict[str, OasisService],
                 handlers: Optional[Dict[str, Callable[[Any], Any]]]
                 = None) -> None:
        self.services = services
        self.handlers = handlers or {}


class NodeContext:
    """Per-process substrate a world factory builds services on."""

    def __init__(self, node: str, broker: EventBroker,
                 registry: ServiceRegistry, network: Any,
                 clock: Callable[[], float] = time.time,
                 state_dir: Optional[str] = None) -> None:
        self.node = node
        self.broker = broker
        self.registry = registry
        self.network = network
        self.clock = clock
        self.state_dir = state_dir

    def store(self, policy: ServicePolicy) -> Optional[Any]:
        """The env-selected store, with the served on-disk default: a
        sqlite backend without an explicit path lands in this node's
        state directory instead of ``:memory:`` (see :mod:`repro.db`)."""
        return default_store(ServiceStateCodec(),
                             service=str(policy.service),
                             state_dir=self.state_dir)

    def service(self, policy: ServicePolicy,
                databases: Optional[Dict[str, Database]] = None,
                **kwargs: Any) -> OasisService:
        """Build — or, when the store already holds state, *resume* — an
        :class:`OasisService` wired for this node.

        Resume detection peeks at the store's META ``secret`` record:
        its presence means a previous incarnation issued certificates
        under that signing secret, and a killed-and-restarted server
        must keep verifying them (then re-emit any journalled cascade
        cut mid-publish)."""
        store = self.store(policy)
        if store is not None and store.get(META, "secret") is not None:
            service = OasisService.resume(
                store, policy, self.broker, self.registry,
                clock=self.clock, databases=databases,
                network=self.network, **kwargs)
            service.replay_pending()
            return service
        return OasisService(policy, self.broker, self.registry,
                            clock=self.clock, databases=databases,
                            network=self.network, store=store, **kwargs)


def resolve_factory(spec: str) -> Callable[..., Any]:
    """``module:function`` → the callable (for ``repro serve --world``)."""
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"world spec {spec!r} must look like 'package.module:factory'")
    module = __import__(module_name, fromlist=[attr])
    factory = getattr(module, attr)
    if not callable(factory):
        raise TypeError(f"world spec {spec!r} does not name a callable")
    return factory


# -- Fig. 3 policies, shared between the three EHR nodes ----------------------

HOSPITAL = "hospital"
NATIONAL = "national-ehr"

LOGIN_ID = ServiceId(HOSPITAL, "login")
ADMIN_ID = ServiceId(HOSPITAL, "admin")
RECORDS_ID = ServiceId(HOSPITAL, "records")
REGISTRY_ID = ServiceId(NATIONAL, "registry")
NATIONAL_ID = ServiceId(NATIONAL, "patient-records")

_LOGGED_IN = RoleName(LOGIN_ID, "logged_in_user")
_TREATING = RoleName(RECORDS_ID, "treating_doctor")


def _login_policy() -> ServicePolicy:
    policy = ServicePolicy(LOGIN_ID)
    logged_in = policy.define_role("logged_in_user", 1)
    policy.add_activation_rule(
        ActivationRule(RoleTemplate(logged_in, (Var("u"),))))
    return policy


def _admin_policy() -> ServicePolicy:
    policy = ServicePolicy(ADMIN_ID)
    administrator = policy.define_role("administrator", 1)
    policy.add_activation_rule(ActivationRule(
        RoleTemplate(administrator, (Var("u"),)),
        (PrerequisiteRole(RoleTemplate(_LOGGED_IN, (Var("u"),)),
                          membership=True),)))
    policy.add_appointment_rule(AppointmentRule(
        "allocated", (Var("d"), Var("p")),
        (PrerequisiteRole(RoleTemplate(administrator, (Var("a"),))),)))
    return policy


def _records_policy() -> ServicePolicy:
    policy = ServicePolicy(RECORDS_ID)
    treating = policy.define_role("treating_doctor", 2)
    policy.add_activation_rule(ActivationRule(
        RoleTemplate(treating, (Var("d"), Var("p"))),
        (PrerequisiteRole(RoleTemplate(_LOGGED_IN, (Var("d"),)),
                          membership=True),
         AppointmentCondition(ADMIN_ID, "allocated", (Var("d"), Var("p")),
                              membership=True))))
    policy.add_authorization_rule(AuthorizationRule(
        "read_record", (Var("p"),),
        (PrerequisiteRole(RoleTemplate(treating, (Var("d"), Var("p")))),)))
    return policy


def _registry_policy() -> ServicePolicy:
    policy = ServicePolicy(REGISTRY_ID)
    registrar = policy.define_role("registrar", 0)
    policy.add_activation_rule(ActivationRule(RoleTemplate(registrar)))
    policy.add_appointment_rule(AppointmentRule(
        "accredited_hospital", (Var("h"),),
        (PrerequisiteRole(RoleTemplate(registrar)),)))
    return policy


def _national_policy() -> ServicePolicy:
    policy = ServicePolicy(NATIONAL_ID)
    hospital_role = policy.define_role("hospital", 1)
    policy.add_activation_rule(ActivationRule(
        RoleTemplate(hospital_role, (Var("h"),)),
        (AppointmentCondition(REGISTRY_ID, "accredited_hospital",
                              (Var("h"),), membership=True),)))
    treating_foreign = RoleTemplate(_TREATING, (Var("d"), Var("p")))
    for method, params in (("request_EHR", (Var("p"),)),
                           ("append_to_EHR", (Var("p"), Var("entry")))):
        policy.add_authorization_rule(AuthorizationRule(
            method, params,
            (PrerequisiteRole(RoleTemplate(hospital_role, (Var("h"),))),
             PrerequisiteRole(treating_foreign))))
    return policy


# -- node factories -----------------------------------------------------------

def ehr_front(ctx: NodeContext) -> World:
    """Hospital front node: login + admin."""
    login = ctx.service(_login_policy())
    admin = ctx.service(_admin_policy())
    return World({"login": login, "admin": admin})


def ehr_records(ctx: NodeContext) -> World:
    """Hospital records node: ``treating_doctor``."""
    records = ctx.service(_records_policy())
    store: Dict[str, list] = {}
    records.register_method("read_record",
                            lambda pat: list(store.get(pat, [])))
    return World({"records": records})


def ehr_national(ctx: NodeContext) -> World:
    """National EHR node: registry + patient record management."""
    registry = ctx.service(_registry_policy())
    national = ctx.service(_national_policy())
    ehr_store: Dict[str, list] = {"p1": ["2019: appendectomy",
                                         "2023: allergy noted"]}
    national.register_method("request_EHR",
                             lambda p: list(ehr_store.get(p, [])))
    national.register_method(
        "append_to_EHR",
        lambda p, entry: ehr_store.setdefault(p, []).append(entry)
        or "done")
    return World({"registry": registry, "patient-records": national})


# -- benchmark world ----------------------------------------------------------

def bench_world(ctx: NodeContext) -> World:
    """One service with a free role — the minimal target for measuring
    raw RPC overhead (activation throughput, revocation latency)."""
    policy = ServicePolicy(ServiceId("bench", "svc"))
    user = policy.define_role("user", 1)
    policy.add_activation_rule(
        ActivationRule(RoleTemplate(user, (Var("u"),))))
    policy.add_authorization_rule(AuthorizationRule(
        "echo", (Var("x"),),
        (PrerequisiteRole(RoleTemplate(user, (Var("u"),))),)))
    service = ctx.service(policy)
    service.register_method("echo", lambda x: x)
    return World({"svc": service})
