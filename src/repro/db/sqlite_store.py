"""SQLite backend for the keyed-record store (durable credential state).

The design target is the asymmetry the paper's workloads impose: role
activation and method invocation happen constantly and must stay
memory-speed, while revocation is rare but must *never* be lost — "the
ability to revoke ... is the essence of active security".  So:

* **records are write-behind**: ``put``/``delete`` land in an in-process
  buffer of live object references and are serialised (via the attached
  :class:`~repro.db.kv.StoreCodec`) only at :meth:`flush` — an activation
  costs one dict assignment, exactly like the memory backend.  Reads
  merge the buffer over the table, so the store is always read-your-writes
  consistent within the process.
* **the append log is write-through on demand**: ``log_append(durable=True)``
  commits synchronously, which is how a revocation cascade gets its
  journal entry onto disk *before* any event reaches the broker — and
  before any flipped record is mirrored into the buffer, so an
  auto-flush triggered by the mirroring can never durably commit a
  REVOKED record the log does not cover.  A crash after the commit but
  before (or during) publish leaves a ``cascade`` entry with no
  ``cascade-done`` marker — the recovery tail ``OasisService.resume``
  replays and re-emits.

Buffering deliberately holds *references*, not copies: a credential record
that is installed and later revoked before the next flush serialises once,
in its final state.  Conversely, buffered installs that never reach a
flush are lost on a crash — which is safe, because certificate checking
fails closed: a certificate without a credential record is invalid
(Sect. 4's callback finds nothing to validate against).

Uses only the stdlib ``sqlite3`` module; a ``path`` of ``":memory:"``
gives a private, process-lifetime database (the CI test matrix runs the
whole suite over it), a filesystem path gives real durability and
re-open-ability for the kill-and-resume tests and benchmarks.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .kv import DELETED, RecordStore, StoreCodec, completed_log_seqs

__all__ = ["SqliteRecordStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    bucket  TEXT NOT NULL,
    key     TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (bucket, key)
);
CREATE TABLE IF NOT EXISTS log (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    payload TEXT NOT NULL
);
"""


class SqliteRecordStore(RecordStore):
    """Durable record store over a single SQLite database."""

    backend = "sqlite"

    def __init__(self, path: str = ":memory:",
                 codec: Optional[StoreCodec] = None,
                 flush_every: int = 1024) -> None:
        super().__init__(codec)
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = path
        self.flush_every = flush_every
        # check_same_thread=False: access is serialized by construction
        # (one service thread), but the *constructing* thread may differ
        # from the serving thread — repro.netd builds worlds on the
        # process main thread and then runs every op on the server's
        # single worker slot.  Concurrent use is still excluded.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._conn.executescript(_SCHEMA)
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.commit()
        # Write-behind buffer: (bucket, key) -> live value | DELETED.
        self._pending: Dict[Tuple[str, str], Any] = {}
        self._closed = False

    # -- records --------------------------------------------------------
    def get(self, bucket: str, key: str, default: Any = None) -> Any:
        self.gets += 1
        buffered = self._pending.get((bucket, key), DELETED)
        if buffered is not DELETED:
            return buffered
        if (bucket, key) in self._pending:  # buffered delete
            return default
        row = self._conn.execute(
            "SELECT payload FROM records WHERE bucket=? AND key=?",
            (bucket, key)).fetchone()
        if row is None:
            return default
        return self.codec.decode(bucket, json.loads(row[0]))

    def put(self, bucket: str, key: str, value: Any) -> None:
        self.puts += 1
        self._pending[(bucket, key)] = value
        if len(self._pending) >= self.flush_every:
            self.flush()

    def put_many(self, bucket: str, items: Iterable[Tuple[str, Any]]) -> int:
        pending = self._pending
        written = 0
        for key, value in items:
            pending[(bucket, key)] = value
            written += 1
        self.puts += written
        if len(pending) >= self.flush_every:
            self.flush()
        return written

    def delete(self, bucket: str, key: str) -> bool:
        self.deletes += 1
        pending = self._pending
        slot = (bucket, key)
        if slot in pending:
            # The buffer already answers — no disk probe.  A buffered
            # tombstone means the key is gone (a second delete returns
            # False, matching MemoryRecordStore); a buffered value is
            # tombstoned so the flush also removes any older disk row.
            if pending[slot] is DELETED:
                return False
            pending[slot] = DELETED
            return True
        on_disk = self._conn.execute(
            "SELECT 1 FROM records WHERE bucket=? AND key=?",
            (bucket, key)).fetchone() is not None
        if on_disk:
            pending[slot] = DELETED
        return on_disk

    def scan(self, bucket: str) -> Iterator[Tuple[str, Any]]:
        self.scans += 1
        decode = self.codec.decode
        merged: Dict[str, Any] = {
            key: decode(bucket, json.loads(payload))
            for key, payload in self._conn.execute(
                "SELECT key, payload FROM records WHERE bucket=?",
                (bucket,))}
        for (pending_bucket, key), value in self._pending.items():
            if pending_bucket != bucket:
                continue
            if value is DELETED:
                merged.pop(key, None)
            else:
                merged[key] = value
        return iter(merged.items())

    def count(self, bucket: str) -> int:
        keys = {key for (key,) in self._conn.execute(
            "SELECT key FROM records WHERE bucket=?", (bucket,))}
        for (pending_bucket, key), value in self._pending.items():
            if pending_bucket != bucket:
                continue
            if value is DELETED:
                keys.discard(key)
            else:
                keys.add(key)
        return len(keys)

    # -- append log -----------------------------------------------------
    def log_append(self, entry: Dict[str, Any], durable: bool = False) -> int:
        self.log_appends += 1
        # No ``default=`` fallback: a journal entry that cannot survive
        # the JSON round trip type-faithfully must fail loudly here, at
        # journal time, not decode differently at replay.
        cursor = self._conn.execute(
            "INSERT INTO log (payload) VALUES (?)",
            (json.dumps(entry),))
        if durable:
            self._conn.commit()
            self.durable_commits += 1
        return int(cursor.lastrowid)

    def log_entries(self) -> List[Tuple[int, Dict[str, Any]]]:
        return [(int(seq), json.loads(payload))
                for seq, payload in self._conn.execute(
                    "SELECT seq, payload FROM log ORDER BY seq")]

    # -- lifecycle ------------------------------------------------------
    def flush(self) -> None:
        """Serialise the write-behind buffer, prune the log, commit."""
        self.flushes += 1
        conn = self._conn
        if self._pending:
            encode = self.codec.encode
            upserts = []
            removals = []
            for (bucket, key), value in self._pending.items():
                if value is DELETED:
                    removals.append((bucket, key))
                else:
                    upserts.append((bucket, key,
                                    json.dumps(encode(bucket, value),
                                               default=str)))
            if upserts:
                conn.executemany(
                    "INSERT OR REPLACE INTO records (bucket, key, payload) "
                    "VALUES (?, ?, ?)", upserts)
            if removals:
                conn.executemany(
                    "DELETE FROM records WHERE bucket=? AND key=?", removals)
            self._pending.clear()
        victims = completed_log_seqs(self.log_entries())
        if victims:
            conn.executemany("DELETE FROM log WHERE seq=?",
                             [(seq,) for seq in victims])
        conn.commit()

    def close(self, flush: bool = True) -> None:
        if self._closed:
            return
        if flush:
            self.flush()
        else:
            # Crash semantics: abandon the buffer and roll back anything
            # not yet durably committed.
            self._pending.clear()
            self._conn.rollback()
        self._conn.close()
        self._closed = True

    # -- observability --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "ops": self._op_counts(),
            "pending_writes": len(self._pending),
            "log_entries": len(self.log_entries()),
        }
