"""The keyed-record storage interface behind the service state core.

ROADMAP item 2: every piece of issuer-side security state — credential
records (the CRs of Fig. 4), cached validation keys, recovery metadata —
lives behind ONE storage discipline: named *buckets* of ``key -> record``
pairs with batch variants, plus an append-only log used to make revocation
cascades crash-consistent.  The discipline deliberately mirrors
attribute-bucket stores (one interface, not one schema per subsystem): a
backend only has to speak five verbs (get/put/delete/scan + log-append) to
host a service.

Two backends ship here and in :mod:`repro.db.sqlite_store`:

* :class:`MemoryRecordStore` — plain dict-of-dicts holding live object
  references.  A ``put`` is a dictionary assignment; this is the refit of
  the original in-process representation, so attaching it costs nothing
  measurable on the activation/cascade hot paths (gated at <=1.05x by the
  benchmark harness).
* :class:`~repro.db.sqlite_store.SqliteRecordStore` — durable, with a
  *write-behind* record buffer (activation and invocation stay
  memory-speed) and a synchronously-committed append log (revocations are
  on disk *before* their cascade publishes).

The append log carries small JSON-able dict entries.  The cascade
protocol writes one ``{"op": "cascade", "events": [...]}`` entry before
publishing and one ``{"op": "cascade-done", "cascade_seq": n}`` after the
broker drains; :func:`completed_log_seqs` identifies matched pairs so
:meth:`RecordStore.flush` can prune them.  Entries without a matching
``done`` marker are exactly the cascades a restarted service must re-emit
(see ``OasisService.resume``).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = [
    "RecordStore",
    "MemoryRecordStore",
    "StoreCodec",
    "completed_log_seqs",
]


class StoreCodec:
    """Translates between live objects and JSON-able payload dicts.

    Backends that serialise (SQLite) call :meth:`encode` when a record is
    written out and :meth:`decode` when one is read back; the in-memory
    backend never needs either.  The default codec is the identity — fine
    for buckets whose values are already plain dicts.
    """

    def encode(self, bucket: str, value: Any) -> Any:
        return value

    def decode(self, bucket: str, payload: Any) -> Any:
        return payload


def completed_log_seqs(entries: Iterable[Tuple[int, Dict[str, Any]]]
                       ) -> Set[int]:
    """Log sequence numbers safe to prune: every ``cascade`` entry with a
    matching ``cascade-done`` marker, the markers themselves, and all but
    the newest ``serial-reserve`` watermark."""
    done_for: Dict[int, int] = {}
    reserves: List[int] = []
    for seq, entry in entries:
        op = entry.get("op")
        if op == "cascade-done":
            done_for[entry["cascade_seq"]] = seq
        elif op == "serial-reserve":
            reserves.append(seq)
    victims: Set[int] = set()
    for cascade_seq, done_seq in done_for.items():
        victims.add(cascade_seq)
        victims.add(done_seq)
    if len(reserves) > 1:
        victims.update(reserves[:-1])
    return victims


class RecordStore:
    """Abstract keyed-record store: ``(bucket, key) -> record`` plus log.

    Keys are strings; values are whatever the attached :class:`StoreCodec`
    can round-trip.  Subclasses implement the primitive verbs; the batch
    variants have loop defaults a backend may override with something
    cheaper.  All implementations keep the operation counters exposed by
    :meth:`stats` (surfaced through the obs registry as ``oasis_store_*``
    collectors).
    """

    backend = "abstract"

    def __init__(self, codec: Optional[StoreCodec] = None) -> None:
        self.codec = codec or StoreCodec()
        self.puts = 0
        self.gets = 0
        self.deletes = 0
        self.scans = 0
        self.log_appends = 0
        self.durable_commits = 0
        self.flushes = 0

    # -- primitive verbs ------------------------------------------------
    def get(self, bucket: str, key: str, default: Any = None) -> Any:
        raise NotImplementedError

    def put(self, bucket: str, key: str, value: Any) -> None:
        raise NotImplementedError

    def delete(self, bucket: str, key: str) -> bool:
        raise NotImplementedError

    def scan(self, bucket: str) -> Iterator[Tuple[str, Any]]:
        """All ``(key, value)`` pairs of ``bucket``, pending writes
        included (a reader always sees its own write-behind buffer)."""
        raise NotImplementedError

    def count(self, bucket: str) -> int:
        raise NotImplementedError

    # -- batch variants -------------------------------------------------
    def put_many(self, bucket: str, items: Iterable[Tuple[str, Any]]) -> int:
        written = 0
        for key, value in items:
            self.put(bucket, key, value)
            written += 1
        return written

    def get_many(self, bucket: str, keys: Sequence[str],
                 default: Any = None) -> List[Any]:
        return [self.get(bucket, key, default) for key in keys]

    def delete_many(self, bucket: str, keys: Iterable[str]) -> int:
        return sum(1 for key in keys if self.delete(bucket, key))

    # -- append log -----------------------------------------------------
    def log_append(self, entry: Dict[str, Any], durable: bool = False) -> int:
        """Append ``entry`` to the log; returns its sequence number.

        ``durable=True`` means the entry is committed to stable storage
        before the call returns — the cascade-ordering guarantee rests on
        this.  Non-durable appends may ride along with the next flush or
        durable append.
        """
        raise NotImplementedError

    def log_entries(self) -> List[Tuple[int, Dict[str, Any]]]:
        """Unpruned log entries in append order (the recovery tail)."""
        raise NotImplementedError

    # -- lifecycle ------------------------------------------------------
    def flush(self) -> None:
        """Checkpoint: persist buffered record writes, prune completed
        cascade entries from the log."""
        raise NotImplementedError

    def close(self, flush: bool = True) -> None:
        """Release the backend.  ``flush=False`` abandons buffered record
        writes and any uncommitted log entries — the crash switch the
        kill-and-resume tests flip."""
        if flush:
            self.flush()

    # -- observability --------------------------------------------------
    def _op_counts(self) -> Dict[str, int]:
        return {
            "puts": self.puts,
            "gets": self.gets,
            "deletes": self.deletes,
            "scans": self.scans,
            "log_appends": self.log_appends,
            "durable_commits": self.durable_commits,
            "flushes": self.flushes,
        }

    def stats(self) -> Dict[str, Any]:
        return {
            "backend": self.backend,
            "ops": self._op_counts(),
            "pending_writes": 0,
            "log_entries": len(self.log_entries()),
        }

    def reset_stats(self) -> None:
        self.puts = self.gets = self.deletes = self.scans = 0
        self.log_appends = self.durable_commits = self.flushes = 0


#: Sentinel marking a pending delete in write-behind buffers.
DELETED = object()


class MemoryRecordStore(RecordStore):
    """The in-memory backend: buckets are dicts, values live references.

    Everything is "durable" for exactly as long as the process lives,
    which makes this the refit of the original all-in-one representation:
    a service state core running against it behaves byte-for-byte like the
    storeless service, and in-process ``resume`` (fail-over drills, the
    differential suite) reads the same objects back.
    """

    backend = "memory"

    def __init__(self, codec: Optional[StoreCodec] = None) -> None:
        super().__init__(codec)
        self._buckets: Dict[str, Dict[str, Any]] = {}
        self._log: List[Tuple[int, Dict[str, Any]]] = []
        self._log_seq = 0

    def get(self, bucket: str, key: str, default: Any = None) -> Any:
        self.gets += 1
        rows = self._buckets.get(bucket)
        if rows is None:
            return default
        return rows.get(key, default)

    def put(self, bucket: str, key: str, value: Any) -> None:
        self.puts += 1
        rows = self._buckets.get(bucket)
        if rows is None:
            rows = self._buckets[bucket] = {}
        rows[key] = value

    def put_many(self, bucket: str, items: Iterable[Tuple[str, Any]]) -> int:
        rows = self._buckets.get(bucket)
        if rows is None:
            rows = self._buckets[bucket] = {}
        batch = items if isinstance(items, list) else list(items)
        rows.update(batch)
        self.puts += len(batch)
        return len(batch)

    def delete(self, bucket: str, key: str) -> bool:
        self.deletes += 1
        rows = self._buckets.get(bucket)
        if rows is None:
            return False
        return rows.pop(key, DELETED) is not DELETED

    def scan(self, bucket: str) -> Iterator[Tuple[str, Any]]:
        self.scans += 1
        rows = self._buckets.get(bucket, {})
        return iter(list(rows.items()))

    def count(self, bucket: str) -> int:
        return len(self._buckets.get(bucket, ()))

    def log_append(self, entry: Dict[str, Any], durable: bool = False) -> int:
        self.log_appends += 1
        if durable:
            self.durable_commits += 1
        self._log_seq += 1
        self._log.append((self._log_seq, entry))
        return self._log_seq

    def log_entries(self) -> List[Tuple[int, Dict[str, Any]]]:
        return list(self._log)

    def flush(self) -> None:
        self.flushes += 1
        victims = completed_log_seqs(self._log)
        if victims:
            self._log = [(seq, entry) for seq, entry in self._log
                         if seq not in victims]
