"""A small in-memory relational store backing environmental constraints.

Several of the paper's environmental constraints are "ascertained by
database lookup at some service" (Sect. 2): group membership, a doctor
having a patient registered under their care, patient-specified exclusions
("Fred Smith may not access my health record").  This module supplies the
store those constraints query — named tables of named-column rows with
equality lookups, secondary indexes, and change notification hooks so
membership-rule monitoring can react when a fact is retracted.

Lookups are *self-indexing*: the first ``select`` filtering on an
un-indexed column builds a hash index for that column (one O(n) pass),
after which every equality lookup on it is an O(1) bucket probe instead of
a full scan.  Constraint evaluation repeats the same lookup shapes
millions of times in a scale world, so the column set worth indexing is
exactly the set that gets queried — no schema declaration needed.  The
:meth:`Table.stats` counters (rows scanned, index probes, indexes built)
make the behaviour assertable in tests and visible in benchmarks.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

__all__ = ["Row", "Table", "Database"]

Row = Mapping[str, Any]
ChangeListener = Callable[[str, str, Row], None]  # (table, op, row)


def _freeze(row: Row, columns: Tuple[str, ...]) -> Tuple[Any, ...]:
    return tuple(row[col] for col in columns)


class Table:
    """A table with a fixed column set and hash indexes.

    Rows are dictionaries keyed by column name; all columns are required on
    insert.  Duplicate rows are rejected — facts are set-valued, matching
    the logical reading constraints give them.
    """

    __slots__ = ("name", "columns", "_positions", "_rows", "_indexes",
                 "rows_scanned", "index_probes", "indexes_built")

    def __init__(self, name: str, columns: Iterable[str]) -> None:
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        if not self.columns:
            raise ValueError("table needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError("duplicate column names")
        # column -> tuple position, computed once (the per-row
        # ``columns.index`` calls were an O(width) tax on every insert).
        self._positions: Dict[str, int] = {
            column: position for position, column in enumerate(self.columns)}
        self._rows: Set[Tuple[Any, ...]] = set()
        self._indexes: Dict[str, Dict[Any, Set[Tuple[Any, ...]]]] = {}
        # Observability counters for the lookup regression tests and the
        # scale benchmarks: how much work selects actually did.
        self.rows_scanned = 0
        self.index_probes = 0
        self.indexes_built = 0

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        for values in self._rows:
            yield dict(zip(self.columns, values))

    def create_index(self, column: str) -> None:
        if column not in self._positions:
            raise KeyError(f"no column {column!r} in table {self.name}")
        if column in self._indexes:
            return
        index: Dict[Any, Set[Tuple[Any, ...]]] = {}
        position = self._positions[column]
        for values in self._rows:
            index.setdefault(values[position], set()).add(values)
        self._indexes[column] = index
        self.indexes_built += 1

    def indexed_columns(self) -> List[str]:
        return sorted(self._indexes)

    def _check_row(self, row: Row) -> Tuple[Any, ...]:
        missing = set(self.columns) - set(row)
        extra = set(row) - set(self.columns)
        if missing or extra:
            raise ValueError(
                f"row does not match columns of {self.name}: "
                f"missing={sorted(missing)} extra={sorted(extra)}")
        return _freeze(row, self.columns)

    def _index_add(self, values: Tuple[Any, ...]) -> None:
        for column, index in self._indexes.items():
            position = self._positions[column]
            index.setdefault(values[position], set()).add(values)

    def insert(self, row: Row) -> bool:
        """Insert a row; returns False when the identical row exists."""
        values = self._check_row(row)
        if values in self._rows:
            return False
        self._rows.add(values)
        if self._indexes:
            self._index_add(values)
        return True

    def insert_many(self, rows: Iterable[Row]) -> List[Row]:
        """Insert a batch; returns the rows that were actually new.

        Column validation is hoisted out of the loop (one schema check per
        batch shape, not per row), which with index maintenance inlined
        makes bulk population of a scale world's fact tables cheap.
        """
        inserted: List[Row] = []
        columns = self.columns
        live = self._rows
        check = self._check_row
        validated_shape: Optional[frozenset] = None
        for row in rows:
            shape = frozenset(row)
            if shape == validated_shape:
                values = _freeze(row, columns)
            else:
                values = check(row)
                validated_shape = shape
            if values in live:
                continue
            live.add(values)
            if self._indexes:
                self._index_add(values)
            inserted.append(row)
        return inserted

    def delete(self, **criteria: Any) -> int:
        """Delete rows matching all equality criteria; returns count."""
        victims = [_freeze(row, self.columns)
                   for row in self.select(**criteria)]
        for values in victims:
            self._rows.discard(values)
            for column, index in self._indexes.items():
                position = self._positions[column]
                bucket = index.get(values[position])
                if bucket:
                    bucket.discard(values)
                    if not bucket:
                        del index[values[position]]
        return len(victims)

    def select(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows matching all equality criteria (empty criteria = all rows).

        Every criteria column is (auto-)indexed, so the candidate pool is
        the intersection of hash buckets; a full scan happens only for the
        unfiltered ``select()``.
        """
        for key in criteria:
            if key not in self._positions:
                raise KeyError(f"no column {key!r} in table {self.name}")
        candidates: Optional[Set[Tuple[Any, ...]]] = None
        remaining = dict(criteria)
        for column in list(remaining):
            if column not in self._indexes:
                # Self-indexing: a column queried once will be queried
                # again — pay one O(n) pass now, probe in O(1) forever.
                self.create_index(column)
            bucket = self._indexes[column].get(remaining.pop(column), set())
            self.index_probes += 1
            candidates = bucket if candidates is None \
                else candidates & bucket
        pool: Iterable[Tuple[Any, ...]] = (
            self._rows if candidates is None else candidates)
        results = []
        for values in pool:
            self.rows_scanned += 1
            row = dict(zip(self.columns, values))
            if all(row[col] == want for col, want in remaining.items()):
                results.append(row)
        return results

    def exists(self, **criteria: Any) -> bool:
        return bool(self.select(**criteria))

    def stats(self) -> Dict[str, Any]:
        """Lookup-cost counters and the current index set."""
        return {
            "rows": len(self._rows),
            "indexed_columns": self.indexed_columns(),
            "rows_scanned": self.rows_scanned,
            "index_probes": self.index_probes,
            "indexes_built": self.indexes_built,
        }

    def reset_stats(self) -> None:
        """Zero the lookup-cost counters (indexes stay built)."""
        self.rows_scanned = 0
        self.index_probes = 0
        self.indexes_built = 0


class Database:
    """A named collection of tables with change notification.

    Listeners receive ``(table_name, op, row)`` where ``op`` is ``"insert"``
    or ``"delete"``; the OASIS membership monitor subscribes so that
    retracting a fact (e.g. a doctor-patient registration) can deactivate
    roles whose membership rule depends on it.
    """

    __slots__ = ("name", "_tables", "_listeners")

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._listeners: List[ChangeListener] = []

    def create_table(self, name: str, columns: Iterable[str]) -> Table:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r} in database {self.name}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def add_listener(self, listener: ChangeListener) -> Callable[[], None]:
        """Register a change listener; returns an unsubscribe function."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def _notify(self, table_name: str, op: str, row: Row) -> None:
        for listener in list(self._listeners):
            listener(table_name, op, row)

    def insert(self, table_name: str, **row: Any) -> bool:
        inserted = self.table(table_name).insert(row)
        if inserted:
            self._notify(table_name, "insert", row)
        return inserted

    def put_many(self, table_name: str, rows: Sequence[Row]) -> int:
        """Bulk insert; returns the number of rows actually inserted.

        Listener semantics are identical to ``insert`` in a loop — one
        ``(table, "insert", row)`` notification per *new* row, in input
        order — but the table-level batch path amortizes schema checks, and
        the listener list is snapshotted once per batch.
        """
        inserted = self.table(table_name).insert_many(rows)
        if inserted and self._listeners:
            listeners = list(self._listeners)
            for row in inserted:
                for listener in listeners:
                    listener(table_name, "insert", row)
        return len(inserted)

    def delete(self, table_name: str, **criteria: Any) -> int:
        table = self.table(table_name)
        victims = table.select(**criteria)
        count = table.delete(**criteria)
        for row in victims:
            self._notify(table_name, "delete", row)
        return count

    def select(self, table_name: str, **criteria: Any) -> List[Dict[str, Any]]:
        return self.table(table_name).select(**criteria)

    def exists(self, table_name: str, **criteria: Any) -> bool:
        return self.table(table_name).exists(**criteria)

    def stats(self) -> Dict[str, Any]:
        """Per-table lookup-cost counters plus database-wide totals.

        Returns a defensive copy (nested dicts are fresh per call), so a
        benchmark may freely diff two snapshots; the live counters are
        unaffected.
        """
        tables = {name: table.stats()
                  for name, table in sorted(self._tables.items())}
        totals = {
            counter: sum(entry[counter] for entry in tables.values())
            for counter in ("rows_scanned", "index_probes", "indexes_built")}
        totals["rows"] = sum(entry["rows"] for entry in tables.values())
        return {"name": self.name, "tables": tables, "totals": totals}

    def reset_stats(self) -> None:
        """Zero every table's lookup-cost counters, so a benchmark run can
        isolate the storage work of one workload."""
        for table in self._tables.values():
            table.reset_stats()
