"""A small in-memory relational store backing environmental constraints.

Several of the paper's environmental constraints are "ascertained by
database lookup at some service" (Sect. 2): group membership, a doctor
having a patient registered under their care, patient-specified exclusions
("Fred Smith may not access my health record").  This module supplies the
store those constraints query — named tables of named-column rows with
equality lookups, secondary indexes, and change notification hooks so
membership-rule monitoring can react when a fact is retracted.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

__all__ = ["Row", "Table", "Database"]

Row = Mapping[str, Any]
ChangeListener = Callable[[str, str, Row], None]  # (table, op, row)


def _freeze(row: Row, columns: Tuple[str, ...]) -> Tuple[Any, ...]:
    return tuple(row[col] for col in columns)


class Table:
    """A table with a fixed column set and hash indexes.

    Rows are dictionaries keyed by column name; all columns are required on
    insert.  Duplicate rows are rejected — facts are set-valued, matching
    the logical reading constraints give them.
    """

    def __init__(self, name: str, columns: Iterable[str]) -> None:
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        if not self.columns:
            raise ValueError("table needs at least one column")
        if len(set(self.columns)) != len(self.columns):
            raise ValueError("duplicate column names")
        self._rows: Set[Tuple[Any, ...]] = set()
        self._indexes: Dict[str, Dict[Any, Set[Tuple[Any, ...]]]] = {}

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        for values in self._rows:
            yield dict(zip(self.columns, values))

    def create_index(self, column: str) -> None:
        if column not in self.columns:
            raise KeyError(f"no column {column!r} in table {self.name}")
        if column in self._indexes:
            return
        index: Dict[Any, Set[Tuple[Any, ...]]] = {}
        position = self.columns.index(column)
        for values in self._rows:
            index.setdefault(values[position], set()).add(values)
        self._indexes[column] = index

    def _check_row(self, row: Row) -> Tuple[Any, ...]:
        missing = set(self.columns) - set(row)
        extra = set(row) - set(self.columns)
        if missing or extra:
            raise ValueError(
                f"row does not match columns of {self.name}: "
                f"missing={sorted(missing)} extra={sorted(extra)}")
        return _freeze(row, self.columns)

    def insert(self, row: Row) -> bool:
        """Insert a row; returns False when the identical row exists."""
        values = self._check_row(row)
        if values in self._rows:
            return False
        self._rows.add(values)
        for column, index in self._indexes.items():
            position = self.columns.index(column)
            index.setdefault(values[position], set()).add(values)
        return True

    def delete(self, **criteria: Any) -> int:
        """Delete rows matching all equality criteria; returns count."""
        victims = [_freeze(row, self.columns)
                   for row in self.select(**criteria)]
        for values in victims:
            self._rows.discard(values)
            for column, index in self._indexes.items():
                position = self.columns.index(column)
                bucket = index.get(values[position])
                if bucket:
                    bucket.discard(values)
                    if not bucket:
                        del index[values[position]]
        return len(victims)

    def select(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows matching all equality criteria (empty criteria = all rows)."""
        for key in criteria:
            if key not in self.columns:
                raise KeyError(f"no column {key!r} in table {self.name}")
        candidates: Optional[Set[Tuple[Any, ...]]] = None
        remaining = dict(criteria)
        for column in list(remaining):
            if column in self._indexes:
                bucket = self._indexes[column].get(remaining.pop(column), set())
                candidates = bucket if candidates is None \
                    else candidates & bucket
        pool: Iterable[Tuple[Any, ...]] = (
            self._rows if candidates is None else candidates)
        results = []
        for values in pool:
            row = dict(zip(self.columns, values))
            if all(row[col] == want for col, want in remaining.items()):
                results.append(row)
        return results

    def exists(self, **criteria: Any) -> bool:
        return bool(self.select(**criteria))


class Database:
    """A named collection of tables with change notification.

    Listeners receive ``(table_name, op, row)`` where ``op`` is ``"insert"``
    or ``"delete"``; the OASIS membership monitor subscribes so that
    retracting a fact (e.g. a doctor-patient registration) can deactivate
    roles whose membership rule depends on it.
    """

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._listeners: List[ChangeListener] = []

    def create_table(self, name: str, columns: Iterable[str]) -> Table:
        if name in self._tables:
            raise ValueError(f"table {name!r} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table {name!r} in database {self.name}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> List[str]:
        return sorted(self._tables)

    def add_listener(self, listener: ChangeListener) -> Callable[[], None]:
        """Register a change listener; returns an unsubscribe function."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return unsubscribe

    def _notify(self, table_name: str, op: str, row: Row) -> None:
        for listener in list(self._listeners):
            listener(table_name, op, row)

    def insert(self, table_name: str, **row: Any) -> bool:
        inserted = self.table(table_name).insert(row)
        if inserted:
            self._notify(table_name, "insert", row)
        return inserted

    def delete(self, table_name: str, **criteria: Any) -> int:
        table = self.table(table_name)
        victims = table.select(**criteria)
        count = table.delete(**criteria)
        for row in victims:
            self._notify(table_name, "delete", row)
        return count

    def select(self, table_name: str, **criteria: Any) -> List[Dict[str, Any]]:
        return self.table(table_name).select(**criteria)

    def exists(self, table_name: str, **criteria: Any) -> bool:
        return self.table(table_name).exists(**criteria)
