"""Storage layer: relational constraint store + keyed-record state store.

Two stores live here with deliberately different jobs:

* :class:`Database`/:class:`Table` — the in-memory *relational* store that
  environmental constraints query ("ascertained by database lookup at some
  service", Sect. 2).
* :class:`RecordStore` and its backends — the *keyed-record* store holding
  issuer-side security state (credential records, validation-cache keys,
  recovery metadata) behind one ``(bucket, key) -> record`` interface with
  an append log for crash-consistent revocation.  See
  :mod:`repro.db.kv` and docs/persistence.md.

Backend selection for services that are not handed an explicit store goes
through :func:`default_store`, driven by two environment variables:

* ``OASIS_STORE_BACKEND``:

  * unset or ``memory`` — no store object is attached: the service's live
    dicts *are* the in-memory backend (zero hot-path cost; the
    :class:`MemoryRecordStore` object exists for explicit mirroring in
    tests, benchmarks and in-process resume);
  * ``sqlite`` — a SQLite store per service; ``:memory:`` unless a
    durable path is configured (below), so the whole test suite exercises
    the durable write paths without littering files;
  * ``none`` — explicitly storeless (same as ``memory``).

* ``OASIS_STORE_PATH`` — where the sqlite backend puts its file.  The
  value is a *template*: ``{shard}`` is replaced with the shard index in
  sharded deployments (:mod:`repro.shard`) and ``{service}`` with a
  filesystem-safe form of the service id.  Because a service's META
  bucket keys are store-local (e.g. the signing ``secret``), two services
  must never share one file — when a durable path is configured without a
  ``{service}`` placeholder, a per-service suffix is appended
  automatically.

Sharded mode is strict: selecting sqlite for a shard worker without a
durable path would silently give every worker a private throwaway
``:memory:`` store, defeating crash consistency — that combination raises
loudly, as does a sharded path template with no ``{shard}`` placeholder
(N workers must not contend on one file).
"""

from __future__ import annotations

import os
import re
from typing import Optional

from .kv import MemoryRecordStore, RecordStore, StoreCodec, completed_log_seqs
from .sqlite_store import SqliteRecordStore
from .store import Database, Table

__all__ = [
    "Database",
    "Table",
    "RecordStore",
    "MemoryRecordStore",
    "SqliteRecordStore",
    "StoreCodec",
    "completed_log_seqs",
    "configured_backend",
    "configured_path",
    "resolve_store_path",
    "served_store_path",
    "make_store",
    "default_store",
]

#: Environment variable selecting the default service state backend.
BACKEND_ENV = "OASIS_STORE_BACKEND"
#: Environment variable giving the sqlite backend a durable path template
#: (``{shard}`` / ``{service}`` placeholders, see module docstring).
PATH_ENV = "OASIS_STORE_PATH"

_UNSAFE_PATH_CHARS = re.compile(r"[^A-Za-z0-9_.-]+")


def configured_backend() -> str:
    """The backend name selected by ``OASIS_STORE_BACKEND`` (normalised)."""
    return os.environ.get(BACKEND_ENV, "memory").strip().lower() or "memory"


def configured_path() -> Optional[str]:
    """The path template from ``OASIS_STORE_PATH``, or None if unset."""
    raw = os.environ.get(PATH_ENV, "").strip()
    return raw or None


def _sanitize(part: str) -> str:
    """A service id (``domain/name``) as a filesystem-safe path fragment."""
    return _UNSAFE_PATH_CHARS.sub("-", part).strip("-")


def resolve_store_path(template: str, *, shard: Optional[int] = None,
                       service: Optional[str] = None) -> str:
    """Substitute ``{shard}``/``{service}`` placeholders in a path template.

    Raises ``RuntimeError`` when the template demands context the caller
    does not have (a ``{shard}`` placeholder outside sharded mode), or
    when sharded mode would funnel every worker into one file (no
    ``{shard}`` placeholder while ``shard`` is given).  When a durable
    path has no ``{service}`` placeholder but the service is known, a
    per-service suffix is appended — service state files must be private
    (META keys such as the signing secret are store-local).
    """
    has_shard = "{shard}" in template
    has_service = "{service}" in template
    if shard is None and has_shard:
        raise RuntimeError(
            f"{PATH_ENV}={template!r} contains a {{shard}} placeholder but "
            f"no shard context was given; unset it or run sharded")
    if shard is not None and not has_shard:
        raise RuntimeError(
            f"sharded mode with {PATH_ENV}={template!r}: the template must "
            f"contain a {{shard}} placeholder so each worker gets its own "
            f"file (N workers must not share one sqlite database)")
    path = template
    if has_shard:
        path = path.replace("{shard}", str(shard))
    if has_service:
        if service is None:
            raise RuntimeError(
                f"{PATH_ENV}={template!r} contains a {{service}} "
                f"placeholder but no service id was given")
        path = path.replace("{service}", _sanitize(service))
    elif service is not None:
        path = f"{path}.{_sanitize(service)}"
    return path


def make_store(backend: str, codec: Optional[StoreCodec] = None,
               path: str = ":memory:") -> Optional[RecordStore]:
    """Construct a record store by backend name.

    ``memory``/``none`` return ``None`` — the caller's live structures are
    the store.  Use :class:`MemoryRecordStore` directly when an explicit
    mirrored in-memory store is wanted.
    """
    if backend in ("memory", "none", ""):
        return None
    if backend == "memory-mirror":
        return MemoryRecordStore(codec)
    if backend == "sqlite":
        return SqliteRecordStore(path, codec)
    raise ValueError(f"unknown record-store backend {backend!r} "
                     f"(expected memory, memory-mirror or sqlite)")


def served_store_path(state_dir: str, service: Optional[str]) -> str:
    """The on-disk default for one served service under ``state_dir``."""
    filename = f"{_sanitize(service) if service else 'service'}.sqlite"
    return os.path.join(state_dir, filename)


def default_store(codec: Optional[StoreCodec] = None, *,
                  shard: Optional[int] = None,
                  service: Optional[str] = None,
                  state_dir: Optional[str] = None
                  ) -> Optional[RecordStore]:
    """The store a service gets when none is passed explicitly.

    ``shard`` is set by shard workers (:mod:`repro.shard`) and switches on
    the strict path rules described in the module docstring; ``service``
    is the owning service's id string, used for per-service path
    templating.  Historically this function dropped ``OASIS_STORE_PATH``
    on the floor, so ``OASIS_STORE_BACKEND=sqlite`` always yielded an
    in-memory sqlite store — only the no-path single-process case keeps
    that behaviour, as the test-suite backend matrix depends on it.

    ``state_dir`` is set by *served* deployments (``repro serve``,
    :mod:`repro.netd`): a long-lived server selecting sqlite without an
    explicit ``OASIS_STORE_PATH`` must NOT silently land on ``:memory:``
    — that would discard every credential record on restart while
    claiming durability.  With a state directory, the no-path sqlite
    case resolves to a stable per-service file under it
    (:func:`served_store_path`), so kill-and-resume works out of the
    box.  An explicit ``OASIS_STORE_PATH`` still wins.
    """
    backend = configured_backend()
    template = configured_path()
    if backend != "sqlite" or template is None:
        if backend == "sqlite" and shard is not None:
            raise RuntimeError(
                f"{BACKEND_ENV}=sqlite in sharded mode requires a durable "
                f"{PATH_ENV}; without one every worker would get a private "
                f"throwaway :memory: store and crash consistency is lost")
        if backend == "sqlite" and state_dir is not None:
            os.makedirs(state_dir, exist_ok=True)
            return make_store(backend, codec,
                              served_store_path(state_dir, service))
        return make_store(backend, codec)
    path = resolve_store_path(template, shard=shard, service=service)
    return make_store(backend, codec, path)
