"""Storage layer: relational constraint store + keyed-record state store.

Two stores live here with deliberately different jobs:

* :class:`Database`/:class:`Table` — the in-memory *relational* store that
  environmental constraints query ("ascertained by database lookup at some
  service", Sect. 2).
* :class:`RecordStore` and its backends — the *keyed-record* store holding
  issuer-side security state (credential records, validation-cache keys,
  recovery metadata) behind one ``(bucket, key) -> record`` interface with
  an append log for crash-consistent revocation.  See
  :mod:`repro.db.kv` and docs/persistence.md.

Backend selection for services that are not handed an explicit store goes
through :func:`default_store`, driven by the ``OASIS_STORE_BACKEND``
environment variable:

* unset or ``memory`` — no store object is attached: the service's live
  dicts *are* the in-memory backend (zero hot-path cost; the
  :class:`MemoryRecordStore` object exists for explicit mirroring in
  tests, benchmarks and in-process resume);
* ``sqlite`` — a private ``:memory:`` SQLite store per service, so the
  whole test suite exercises the durable write paths;
* ``none`` — explicitly storeless (same as ``memory``).
"""

from __future__ import annotations

import os
from typing import Optional

from .kv import MemoryRecordStore, RecordStore, StoreCodec, completed_log_seqs
from .sqlite_store import SqliteRecordStore
from .store import Database, Table

__all__ = [
    "Database",
    "Table",
    "RecordStore",
    "MemoryRecordStore",
    "SqliteRecordStore",
    "StoreCodec",
    "completed_log_seqs",
    "configured_backend",
    "make_store",
    "default_store",
]

#: Environment variable selecting the default service state backend.
BACKEND_ENV = "OASIS_STORE_BACKEND"


def configured_backend() -> str:
    """The backend name selected by ``OASIS_STORE_BACKEND`` (normalised)."""
    return os.environ.get(BACKEND_ENV, "memory").strip().lower() or "memory"


def make_store(backend: str, codec: Optional[StoreCodec] = None,
               path: str = ":memory:") -> Optional[RecordStore]:
    """Construct a record store by backend name.

    ``memory``/``none`` return ``None`` — the caller's live structures are
    the store.  Use :class:`MemoryRecordStore` directly when an explicit
    mirrored in-memory store is wanted.
    """
    if backend in ("memory", "none", ""):
        return None
    if backend == "memory-mirror":
        return MemoryRecordStore(codec)
    if backend == "sqlite":
        return SqliteRecordStore(path, codec)
    raise ValueError(f"unknown record-store backend {backend!r} "
                     f"(expected memory, memory-mirror or sqlite)")


def default_store(codec: Optional[StoreCodec] = None) -> Optional[RecordStore]:
    """The store a service gets when none is passed explicitly."""
    return make_store(configured_backend(), codec)
