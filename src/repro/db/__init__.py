"""In-memory relational store backing database-lookup constraints (Sect. 2)."""

from .store import Database, Table

__all__ = ["Database", "Table"]
