"""``python -m repro`` — umbrella command-line entry point.

Delegates to :mod:`repro.lang.cli`, which hosts both the policy tooling
(``lint``, ``check``, ``format``, ``graph``, ``reach``) and the
observability demos (``trace``, ``metrics``).
"""

import sys

from .lang.cli import main

if __name__ == "__main__":
    sys.exit(main())
