"""The per-domain Certificate Issuing and Validation (CIV) service.

Sect. 4 (after [10]): "it is likely that certificates will not be issued
and validated by each individual service ... Rather, a domain will contain
one highly available service to carry out the functions of certificate
issuing and validation.  The paper outlined the design of such a service,
including replication for availability together with consistency
management."

Sect. 6 extends the CIV's function to *audit certificates*: "After an
interaction subject to contract the CIV service creates an audit
certificate which it issues to both parties and validates on request."

:class:`CivService` implements both:

* a replicated record store — one primary, N backups, synchronous
  primary-backup replication with failover, so validation survives node
  failures (the availability/consistency claim of [10]);
* audit-certificate issuing: given the two parties and the agreed outcome
  of a contracted interaction, it signs one certificate *per party* and
  records them for later callback validation;
* revocation ("a rogue domain might ... repudiate those issued to clients
  who had acted in good faith" — repudiation is modelled as revocation by
  the issuing CIV, and shows up in the SEC6 benchmark).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.audit import AuditCertificate, Outcome
from ..core.credentials import CredentialRef
from ..core.exceptions import CredentialInvalid, CredentialRevoked
from ..core.types import ServiceId
from ..crypto.hmac_sig import ServiceSecret

__all__ = ["CivNode", "CivService", "RogueCivService"]


@dataclass
class _AuditRecord:
    ref: CredentialRef
    subject: str
    revoked: bool = False


class CivNode:
    """One replica of the CIV record store."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        self.alive = True
        self._records: Dict[CredentialRef, _AuditRecord] = {}

    def store(self, record: _AuditRecord) -> None:
        self._records[record.ref] = record

    def mark_revoked(self, ref: CredentialRef) -> None:
        record = self._records.get(ref)
        if record is not None:
            record.revoked = True

    def lookup(self, ref: CredentialRef) -> Optional[_AuditRecord]:
        return self._records.get(ref)

    def snapshot(self) -> List[_AuditRecord]:
        return [_AuditRecord(r.ref, r.subject, r.revoked)
                for r in self._records.values()]

    def load(self, records: List[_AuditRecord]) -> None:
        self._records = {r.ref: r for r in records}

    @property
    def record_count(self) -> int:
        return len(self._records)


class CivService:
    """The domain's highly available certificate issuing/validation service.

    Writes go to the primary and are synchronously replicated to every
    alive backup before the issue/revoke returns — so any alive node can
    answer validation queries consistently.  When the primary fails, the
    first alive backup is promoted (its state is complete, by the
    synchronous write rule).
    """

    def __init__(self, domain: str, replicas: int = 2,
                 clock: Callable[[], float] = lambda: 0.0) -> None:
        if replicas < 0:
            raise ValueError("replicas must be non-negative")
        self.id = ServiceId(domain, "civ")
        self.clock = clock
        self.secret = ServiceSecret.generate()
        self._serial = itertools.count(1)
        self._nodes: List[CivNode] = [
            CivNode(f"{domain}/civ-{index}") for index in range(replicas + 1)]
        self.audits_issued = 0
        self.validations_served = 0

    # -- replication management ----------------------------------------------
    @property
    def nodes(self) -> List[CivNode]:
        return list(self._nodes)

    @property
    def primary(self) -> CivNode:
        for node in self._nodes:
            if node.alive:
                return node
        raise RuntimeError(f"CIV of {self.id.domain}: no alive node")

    @property
    def available(self) -> bool:
        return any(node.alive for node in self._nodes)

    def fail_node(self, index: int) -> None:
        """Crash a node (failure injection for tests/benchmarks)."""
        self._nodes[index].alive = False

    def recover_node(self, index: int) -> None:
        """Bring a node back; it re-syncs from the current primary."""
        node = self._nodes[index]
        if node.alive:
            return
        node.load(self.primary.snapshot())
        node.alive = True

    def _replicate(self, action: Callable[[CivNode], None]) -> None:
        wrote = False
        for node in self._nodes:
            if node.alive:
                action(node)
                wrote = True
        if not wrote:
            raise RuntimeError(f"CIV of {self.id.domain} is unavailable")

    # -- audit certificates (Sect. 6) ------------------------------------------
    def certify_interaction(self, client: str, service: str, contract: str,
                            client_outcome: str, service_outcome: str,
                            ) -> Tuple[AuditCertificate, AuditCertificate]:
        """Issue the pair of audit certificates for one interaction.

        Returns ``(client_copy, service_copy)`` — the certificate about the
        client's conduct (held and later presented by the client) and the
        one about the service's conduct.
        """
        now = self.clock()
        certificates = []
        for subject, counterparty, outcome in (
                (client, service, client_outcome),
                (service, client, service_outcome)):
            ref = CredentialRef(self.id, next(self._serial))
            certificate = AuditCertificate.issue(
                self.secret, self.id, subject, counterparty, outcome,
                contract, ref, now)
            self._replicate(
                lambda node, r=ref, s=subject: node.store(
                    _AuditRecord(r, s)))
            certificates.append(certificate)
        self.audits_issued += 2
        return certificates[0], certificates[1]

    def revoke_audit(self, ref: CredentialRef) -> None:
        """Repudiate an audit certificate (the rogue-domain behaviour of
        Sect. 6, also used for legitimate corrections)."""
        self._replicate(lambda node: node.mark_revoked(ref))

    def validate_audit(self, certificate: AuditCertificate) -> bool:
        """Callback validation of an audit certificate.

        Raises the appropriate :class:`CredentialInvalid` subclass when the
        certificate is unknown, revoked, or fails its signature.
        """
        self.validations_served += 1
        if certificate.issuer != self.id:
            raise CredentialInvalid(
                f"audit certificate {certificate.ref} was not issued by "
                f"{self.id}")
        record = self.primary.lookup(certificate.ref)
        if record is None:
            raise CredentialInvalid(
                f"no record of audit certificate {certificate.ref}")
        if record.revoked:
            raise CredentialRevoked(
                f"audit certificate {certificate.ref} repudiated by issuer")
        certificate.verify(self.secret)
        return True


class RogueCivService(CivService):
    """A CIV that will certify anything — the Sect. 6 threat model.

    Colluding parties use it to "build up a false history of
    trustworthiness"; the trust evaluator defends by weighting certificates
    by issuer domain.  Functionally identical to :class:`CivService` (its
    certificates are well-formed and validate!) — the *only* defence is
    reputation, which is precisely the paper's point.
    """

    def fabricate_history(self, subject: str, count: int,
                          counterparty: str = "shill-service"
                          ) -> List[AuditCertificate]:
        """Mass-produce glowing certificates for ``subject``."""
        certificates = []
        for index in range(count):
            client_copy, _ = self.certify_interaction(
                subject, f"{counterparty}-{index % 3}",
                contract="fabricated", client_outcome=Outcome.FULFILLED,
                service_outcome=Outcome.FULFILLED)
            certificates.append(client_copy)
        return certificates
