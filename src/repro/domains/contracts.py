"""Contract negotiation and co-signed outcome certificates (Sect. 6).

The paper's "formal approach": "the parties [might] negotiate a contract
before the service is undertaken, and together sign a certificate
recording the outcome."

Flow implemented here:

1. :class:`ContractDraft` — one party proposes terms (description, price,
   obligations per party);
2. each party endorses the draft with an RSA signature over its canonical
   encoding (:class:`SignedContract` is valid only with *both*
   endorsements — offer and acceptance);
3. after performance, both parties co-sign an :class:`OutcomeStatement`
   recording each side's conduct; a CIV can then countersign it into the
   pair of audit certificates of :mod:`repro.core.audit` via
   :func:`certify_outcome`.

A co-signed outcome is stronger evidence than a bare CIV certificate: the
counterparty's own key endorses the stated outcome, so later repudiation
("I never agreed it went badly") is cryptographically checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from ..core.audit import AuditCertificate, Outcome
from ..crypto.hmac_sig import canonical_encode
from ..crypto.keys import KeyPair
from ..crypto.rsa import RSAPublicKey
from ..crypto.signing import rsa_sign, rsa_verify
from .civ import CivService

__all__ = [
    "ContractDraft",
    "SignedContract",
    "OutcomeStatement",
    "ContractError",
    "certify_outcome",
]


class ContractError(ValueError):
    """A contract or outcome failed a signature or consistency check."""


@dataclass(frozen=True)
class ContractDraft:
    """Proposed terms between a client and a service."""

    client: str
    service: str
    description: str
    client_obligation: str
    service_obligation: str
    nonce: str = ""  # distinguishes otherwise-identical contracts

    def encode(self) -> bytes:
        return canonical_encode((
            "contract-v1", self.client, self.service, self.description,
            self.client_obligation, self.service_obligation, self.nonce))

    def signed_by(self, client_keys: KeyPair,
                  service_keys: KeyPair) -> "SignedContract":
        """Convenience: both parties endorse in one step."""
        message = self.encode()
        return SignedContract(
            draft=self,
            client_key=client_keys.public,
            service_key=service_keys.public,
            client_signature=rsa_sign(client_keys.private, message),
            service_signature=rsa_sign(service_keys.private, message))


@dataclass(frozen=True)
class SignedContract:
    """A draft endorsed by both parties' keys."""

    draft: ContractDraft
    client_key: RSAPublicKey
    service_key: RSAPublicKey
    client_signature: bytes = field(repr=False)
    service_signature: bytes = field(repr=False)

    def verify(self) -> None:
        """Raise :class:`ContractError` unless both endorsements check."""
        message = self.draft.encode()
        if not rsa_verify(self.client_key, message, self.client_signature):
            raise ContractError(
                f"client {self.draft.client!r} endorsement invalid")
        if not rsa_verify(self.service_key, message,
                          self.service_signature):
            raise ContractError(
                f"service {self.draft.service!r} endorsement invalid")


@dataclass(frozen=True)
class OutcomeStatement:
    """The agreed outcome of a performed contract, co-signed.

    ``client_outcome`` / ``service_outcome`` describe each party's own
    conduct (see :class:`~repro.core.audit.Outcome`).  Both parties sign
    the *same* statement — a party that disputes signs a statement with
    ``Outcome.DISPUTED`` entries instead.
    """

    contract: SignedContract
    client_outcome: str
    service_outcome: str
    client_signature: bytes = field(default=b"", repr=False)
    service_signature: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        for outcome in (self.client_outcome, self.service_outcome):
            if outcome not in Outcome.ALL:
                raise ContractError(f"unknown outcome {outcome!r}")

    def encode(self) -> bytes:
        return canonical_encode((
            "outcome-v1", self.contract.draft.encode(),
            self.client_outcome, self.service_outcome))

    def signed_by(self, client_keys: KeyPair,
                  service_keys: KeyPair) -> "OutcomeStatement":
        message = self.encode()
        return replace(
            self,
            client_signature=rsa_sign(client_keys.private, message),
            service_signature=rsa_sign(service_keys.private, message))

    def verify(self) -> None:
        """Check the underlying contract and both outcome endorsements."""
        self.contract.verify()
        if not self.client_signature or not self.service_signature:
            raise ContractError("outcome statement not fully signed")
        message = self.encode()
        if not rsa_verify(self.contract.client_key, message,
                          self.client_signature):
            raise ContractError("client outcome endorsement invalid")
        if not rsa_verify(self.contract.service_key, message,
                          self.service_signature):
            raise ContractError("service outcome endorsement invalid")


def certify_outcome(civ: CivService, statement: OutcomeStatement
                    ) -> Tuple[AuditCertificate, AuditCertificate]:
    """Have a CIV countersign a verified outcome into audit certificates.

    The CIV refuses statements that fail verification — it certifies only
    what both parties demonstrably agreed.  Returns the (client_copy,
    service_copy) pair exactly like
    :meth:`~repro.domains.civ.CivService.certify_interaction`.
    """
    statement.verify()
    draft = statement.contract.draft
    return civ.certify_interaction(
        client=draft.client, service=draft.service,
        contract=draft.description,
        client_outcome=statement.client_outcome,
        service_outcome=statement.service_outcome)
