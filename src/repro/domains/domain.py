"""Domains and deployments.

"In practice, distributed systems contain many domains; for example the
healthcare domain comprises subdomains of public and private hospitals,
primary care practices, research institutes, clinics, etc. as well as
national services such as electronic health record management." (Sect. 1)

A :class:`Deployment` owns the shared substrate — event broker, simulated
clock/scheduler/network, service registry — and the :class:`Domain` objects
living on it.  A :class:`Domain` is an administrative boundary: it hosts
OASIS services, optionally a CIV service, and is the unit the latency model
distinguishes (intra- vs inter-domain calls).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.policy import ServicePolicy
from ..core.service import OasisService, ServiceRegistry
from ..core.types import ServiceId
from ..db import Database
from ..events import EventBroker
from ..net import LatencyModel, Scheduler, SimClock, SimNetwork

__all__ = ["Deployment", "Domain"]


class Deployment:
    """A whole distributed system: substrate plus its domains."""

    def __init__(self, latency: Optional[LatencyModel] = None,
                 use_network: bool = True) -> None:
        self.clock = SimClock()
        self.scheduler = Scheduler(self.clock)
        self.broker = EventBroker()
        self.registry = ServiceRegistry()
        self.network: Optional[SimNetwork] = (
            SimNetwork(self.clock, latency or LatencyModel())
            if use_network else None)
        self._domains: Dict[str, Domain] = {}

    def create_domain(self, name: str) -> "Domain":
        if name in self._domains:
            raise ValueError(f"domain {name!r} already exists")
        domain = Domain(name, self)
        self._domains[name] = domain
        return domain

    def domain(self, name: str) -> "Domain":
        try:
            return self._domains[name]
        except KeyError:
            raise KeyError(f"no domain {name!r}") from None

    @property
    def domains(self) -> List["Domain"]:
        return list(self._domains.values())

    def run_for(self, duration: float) -> int:
        """Advance simulated time, firing scheduled work (heartbeats,
        polling sweeps, expiry checks)."""
        return self.scheduler.run_for(duration)


class Domain:
    """One administrative domain hosting OASIS services."""

    def __init__(self, name: str, deployment: Deployment) -> None:
        if not name:
            raise ValueError("domain name must be non-empty")
        self.name = name
        self.deployment = deployment
        self._services: Dict[str, OasisService] = {}
        self._databases: Dict[str, Database] = {}

    def service_id(self, name: str) -> ServiceId:
        return ServiceId(self.name, name)

    def create_database(self, name: str) -> Database:
        if name in self._databases:
            raise ValueError(f"database {name!r} already exists in {self.name}")
        database = Database(f"{self.name}/{name}")
        self._databases[name] = database
        return database

    def database(self, name: str) -> Database:
        return self._databases[name]

    def add_service(self, policy: ServicePolicy,
                    databases: Optional[Dict[str, Database]] = None,
                    cache_validations: bool = True) -> OasisService:
        """Instantiate an OASIS service in this domain from its policy."""
        if policy.service.domain != self.name:
            raise ValueError(
                f"policy is for domain {policy.service.domain!r}, "
                f"not {self.name!r}")
        if policy.service.name in self._services:
            raise ValueError(
                f"service {policy.service.name!r} already exists in "
                f"{self.name}")
        deployment = self.deployment
        service = OasisService(
            policy, deployment.broker, deployment.registry,
            clock=deployment.clock, databases=databases,
            network=deployment.network,
            cache_validations=cache_validations)
        self._services[policy.service.name] = service
        return service

    def service(self, name: str) -> OasisService:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"no service {name!r} in domain {self.name}") \
                from None

    @property
    def services(self) -> List[OasisService]:
        return list(self._services.values())
