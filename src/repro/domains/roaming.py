"""Roving principals and encounters between mutually unknown parties.

Sect. 6: "we may wish to set up a minimal infrastructure, sufficient for a
world in which roving computational entities encounter previously unknown,
and therefore untrusted, services.  Both parties should be able to present
checkable credentials which provide evidence of previous successful
interactions ... Each party may then take a calculated risk on whether to
proceed."

:class:`RovingEntity` is either side of such an encounter: it carries an
interaction history (audit certificates about itself), a trust policy, and
a view of which CIV domains it credits.  :func:`negotiate_encounter` runs
the paper's protocol:

1. the parties exchange their histories;
2. each validates the other's certificates by callback to the issuing CIVs
   it can reach, and scores them under its own :class:`TrustPolicy`;
3. both must accept for the interaction to proceed;
4. if it proceeds, a CIV acceptable to both certifies the outcome and each
   party's history grows — the web of trust evolves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.audit import (
    AuditCertificate,
    InteractionHistory,
    Outcome,
    TrustDecision,
    TrustEvaluator,
    TrustPolicy,
)
from .civ import CivService

__all__ = ["RovingEntity", "EncounterResult", "negotiate_encounter"]


class RovingEntity:
    """A principal or service that roams among unknown counterparties."""

    def __init__(self, identity: str, policy: TrustPolicy,
                 known_civs: Optional[Dict[str, CivService]] = None) -> None:
        self.identity = identity
        self.policy = policy
        self.history = InteractionHistory(identity)
        #: CIV services this entity can reach for callback validation,
        #: keyed by domain.  Certificates from unreachable CIVs cannot be
        #: validated and are discarded by the evaluator.
        self.known_civs: Dict[str, CivService] = dict(known_civs or {})

    def learn_civ(self, civ: CivService) -> None:
        self.known_civs[civ.id.domain] = civ

    def _validate(self, certificate: AuditCertificate) -> None:
        civ = self.known_civs.get(certificate.issuer.domain)
        if civ is None:
            raise LookupError(
                f"{self.identity} cannot reach CIV of "
                f"{certificate.issuer.domain}")
        civ.validate_audit(certificate)

    def assess(self, counterparty: "RovingEntity") -> TrustDecision:
        """Score the counterparty's presented history under our policy."""
        evaluator = TrustEvaluator(self.policy, validator=self._validate)
        return evaluator.evaluate(counterparty.identity,
                                  counterparty.history.certificates())

    def record(self, certificate: AuditCertificate) -> None:
        self.history.add(certificate)


@dataclass(frozen=True)
class EncounterResult:
    """Outcome of :func:`negotiate_encounter`."""

    proceeded: bool
    client_decision: TrustDecision
    service_decision: TrustDecision
    client_certificate: Optional[AuditCertificate] = None
    service_certificate: Optional[AuditCertificate] = None

    @property
    def mutually_trusted(self) -> bool:
        return self.client_decision.accept and self.service_decision.accept


def negotiate_encounter(client: RovingEntity, service: RovingEntity,
                        civ: CivService, contract: str,
                        client_conduct: str = Outcome.FULFILLED,
                        service_conduct: str = Outcome.FULFILLED,
                        ) -> EncounterResult:
    """Run the Sect. 6 protocol between two previously unknown parties.

    ``client_conduct`` / ``service_conduct`` are how the parties *actually
    behave* if the interaction proceeds (benchmarks inject defaulting
    behaviour here).  The certifying ``civ`` must be reachable by both
    parties or neither will credit the resulting certificates later — the
    function still records them, modelling a party that accepts a
    certificate it cannot yet check.
    """
    service_view = service.assess(client)   # the service risks the client
    client_view = client.assess(service)    # the client risks the service
    if not (service_view.accept and client_view.accept):
        return EncounterResult(proceeded=False,
                               client_decision=client_view,
                               service_decision=service_view)
    client_copy, service_copy = civ.certify_interaction(
        client.identity, service.identity, contract,
        client_outcome=client_conduct, service_outcome=service_conduct)
    client.record(client_copy)
    service.record(service_copy)
    return EncounterResult(proceeded=True,
                           client_decision=client_view,
                           service_decision=service_view,
                           client_certificate=client_copy,
                           service_certificate=service_copy)
