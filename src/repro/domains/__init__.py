"""Domains, service-level agreements, CIV services and roaming (Sect. 3-6)."""

from .domain import Deployment, Domain
from .sla import ServiceLevelAgreement, SlaTerm
from .civ import CivNode, CivService, RogueCivService
from .roaming import EncounterResult, RovingEntity, negotiate_encounter
from .contracts import (
    ContractDraft,
    ContractError,
    OutcomeStatement,
    SignedContract,
    certify_outcome,
)

__all__ = [
    "ContractDraft",
    "ContractError",
    "OutcomeStatement",
    "SignedContract",
    "certify_outcome",
    "Deployment",
    "Domain",
    "ServiceLevelAgreement",
    "SlaTerm",
    "CivNode",
    "CivService",
    "RogueCivService",
    "EncounterResult",
    "RovingEntity",
    "negotiate_encounter",
]
