"""Service-level agreements between domains (Sect. 3 and 5).

"Widely distributed services may establish agreements on the use of one
another's appointment certificates" and "service level agreements between
the national service and individual health care domains would establish a
protocol to validate local RMCs so that the identity of the original
requester can be recorded for audit" (Sect. 3).

An SLA here is a first-class object with:

* the two parties (service ids);
* a set of :class:`SlaTerm` — each term says *this foreign credential is
  accepted as a way into that local role*, with optional extra conditions;
* a validity window;
* :meth:`ServiceLevelAgreement.install`, which compiles the terms into
  activation rules in the accepting service's policy — the paper's "this
  activation rule is part of the policy established by the service level
  agreement" (Sect. 5), made executable.

The foreign credential in a term may be an appointment certificate (the
visiting-doctor and Tate-membership scenarios) or a foreign role / RMC (the
hospital RMC accepted by the national EHR service in Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..core.constraints import BeforeDeadlineConstraint, NotBeforeConstraint
from ..core.exceptions import PolicyError
from ..core.rules import (
    ActivationRule,
    AppointmentCondition,
    Condition,
    ConstraintCondition,
    PrerequisiteRole,
)
from ..core.service import OasisService
from ..core.terms import Term
from ..core.types import RoleTemplate, ServiceId

__all__ = ["SlaTerm", "ServiceLevelAgreement"]

ForeignCredential = Union[AppointmentCondition, PrerequisiteRole]


@dataclass(frozen=True)
class SlaTerm:
    """One clause of an agreement: foreign credential -> local role.

    ``local_role`` / ``local_parameters`` describe the role the accepting
    service grants; ``foreign`` is the credential of the other party that
    the activation rule will require (with ``membership=True`` it also
    becomes a revocation dependency — the granted role dies when the
    foreign credential is revoked at its issuer).  ``extra_conditions`` may
    add environmental constraints, e.g. the anonymity scenario's expiry
    check.
    """

    local_role: str
    local_parameters: Tuple[Term, ...]
    foreign: ForeignCredential
    extra_conditions: Tuple[Condition, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.local_role:
            raise PolicyError("SLA term needs a local role name")


class ServiceLevelAgreement:
    """A bilateral agreement; install it at the accepting service."""

    def __init__(self, accepting: ServiceId, issuing: ServiceId,
                 terms: Sequence[SlaTerm],
                 effective_from: float = 0.0,
                 effective_until: Optional[float] = None,
                 description: str = "") -> None:
        if not terms:
            raise PolicyError("an SLA needs at least one term")
        if effective_until is not None and effective_until <= effective_from:
            raise PolicyError("SLA validity window is empty")
        self.accepting = accepting
        self.issuing = issuing
        self.terms: List[SlaTerm] = list(terms)
        self.effective_from = effective_from
        self.effective_until = effective_until
        self.description = description
        self._installed = False
        for term in self.terms:
            issuer = (term.foreign.issuer
                      if isinstance(term.foreign, AppointmentCondition)
                      else term.foreign.template.role_name.service)
            if issuer != self.issuing:
                raise PolicyError(
                    f"SLA term requires a credential of {issuer}, but the "
                    f"agreement's issuing party is {self.issuing}")

    @property
    def installed(self) -> bool:
        return self._installed

    def is_effective(self, now: float) -> bool:
        if now < self.effective_from:
            return False
        return self.effective_until is None or now < self.effective_until

    def _window_conditions(self) -> Tuple[Condition, ...]:
        """Constraints enforcing the agreement's validity window at every
        activation under its rules.  The expiry bound is membership-
        flagged: roles granted under an expired agreement are deactivated
        by the next membership sweep — agreements end *actively*."""
        conditions: List[Condition] = []
        if self.effective_from > 0:
            conditions.append(ConstraintCondition(
                NotBeforeConstraint(self.effective_from)))
        if self.effective_until is not None:
            conditions.append(ConstraintCondition(
                BeforeDeadlineConstraint(self.effective_until),
                membership=True))
        return tuple(conditions)

    def install(self, service: OasisService) -> List[ActivationRule]:
        """Compile the terms into activation rules in ``service``'s policy.

        The service must be the accepting party.  Roles named by terms are
        declared on demand.  The agreement's validity window becomes
        environmental constraints on every rule, so an expired or not-yet-
        effective agreement grants nothing even though its rules remain in
        the policy.  Returns the rules added.
        """
        if service.id != self.accepting:
            raise PolicyError(
                f"agreement accepts at {self.accepting}, cannot install "
                f"at {service.id}")
        window = self._window_conditions()
        rules = []
        for term in self.terms:
            if not service.policy.defines_role(term.local_role):
                service.policy.define_role(term.local_role,
                                           len(term.local_parameters))
            rule = ActivationRule(
                RoleTemplate(service.policy.define_role(
                    term.local_role, len(term.local_parameters)),
                    term.local_parameters),
                (term.foreign,) + tuple(term.extra_conditions) + window)
            service.policy.add_activation_rule(rule)
            rules.append(rule)
        self._installed = True
        return rules

    def reciprocal(self, terms: Sequence[SlaTerm],
                   description: str = "") -> "ServiceLevelAgreement":
        """The mirror-image agreement (the paper's reciprocal side: research
        medics working temporarily in the hospital)."""
        return ServiceLevelAgreement(
            accepting=self.issuing, issuing=self.accepting, terms=terms,
            effective_from=self.effective_from,
            effective_until=self.effective_until,
            description=description or f"reciprocal of: {self.description}")

    def __repr__(self) -> str:
        return (f"SLA({self.issuing} -> {self.accepting}, "
                f"{len(self.terms)} terms)")
