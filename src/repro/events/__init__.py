"""Active event-based middleware substrate (paper reference [2]).

OASIS "depends on an active middleware platform to notify services of any
relevant changes in their environment" (Abstract).  This package is the
reproduction's substitute for the Cambridge Event Architecture: a topic
based publish/subscribe broker (:mod:`repro.events.broker`), immutable event
records (:mod:`repro.events.messages`) and per-credential channels with
heartbeat monitoring (:mod:`repro.events.channels`, realising Fig. 5).
"""

from .messages import (
    Event,
    CREDENTIAL_REVOKED,
    CREDENTIAL_REISSUED,
    CREDENTIAL_HEARTBEAT,
    ROLE_DEACTIVATED,
)
from .broker import EventBroker, Subscription
from .channels import CredentialChannel, HeartbeatMonitor
from .log import EventLog

__all__ = [
    "Event",
    "CREDENTIAL_REVOKED",
    "CREDENTIAL_REISSUED",
    "CREDENTIAL_HEARTBEAT",
    "ROLE_DEACTIVATED",
    "EventBroker",
    "EventLog",
    "Subscription",
    "CredentialChannel",
    "HeartbeatMonitor",
]
