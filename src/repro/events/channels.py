"""Typed event channels and heartbeat monitoring (Fig. 5).

Fig. 5 of the paper shows per-credential *event channels* between the
service that issued a credential record (CR) and services holding external
CR proxies (ECRs), carrying "heartbeats or change events".  This module
provides:

* :class:`CredentialChannel` — a channel scoped to one credential record,
  over which the issuer publishes revocation and heartbeat events;
* :class:`HeartbeatMonitor` — the consumer side: tracks the last heartbeat
  per credential and reports credentials whose heartbeats have gone silent,
  which a holder must treat as potentially revoked (fail-safe).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .broker import EventBroker, Subscription
from .messages import CREDENTIAL_HEARTBEAT, CREDENTIAL_REVOKED, Event

__all__ = ["CredentialChannel", "HeartbeatMonitor"]


class CredentialChannel:
    """Issuer-side handle for the event channel of one credential record.

    ``credential_ref`` is the credential record reference (CRR) string; all
    events published on the channel carry it so subscribers can filter.
    Slotted: one channel exists per live credential record.
    """

    __slots__ = ("_broker", "credential_ref", "_closed")

    def __init__(self, broker: EventBroker, credential_ref: str) -> None:
        if not credential_ref:
            raise ValueError("credential_ref must be non-empty")
        self._broker = broker
        self.credential_ref = credential_ref
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def notify_revoked(self, reason: str, timestamp: float = 0.0) -> int:
        """Publish a revocation event; closes the channel."""
        event = self.revocation_event(reason, timestamp)
        if event is None:
            return 0
        return self._broker.publish(event)

    def revocation_event(self, reason: str,
                         timestamp: float = 0.0) -> Optional[Event]:
        """Close the channel and return its revocation event *unpublished*.

        Batched cascades collect one event per collapsed credential and
        hand them to :meth:`EventBroker.publish_batch` in one pass; the
        channel still closes exactly once, so event counts per credential
        are identical to publishing eagerly.  Returns None if already
        closed.
        """
        if self._closed:
            return None
        self._closed = True
        return Event.make(
            CREDENTIAL_REVOKED, timestamp=timestamp,
            credential_ref=self.credential_ref, reason=reason)

    def heartbeat(self, timestamp: float = 0.0) -> int:
        """Publish a liveness heartbeat for the credential."""
        if self._closed:
            return 0
        return self._broker.publish(Event.make(
            CREDENTIAL_HEARTBEAT, timestamp=timestamp,
            credential_ref=self.credential_ref))

    def subscribe_revocation(self, handler: Callable[[Event], None]
                             ) -> Subscription:
        return self._broker.subscribe(
            CREDENTIAL_REVOKED, handler, credential_ref=self.credential_ref)

    def subscribe_heartbeat(self, handler: Callable[[Event], None]
                            ) -> Subscription:
        return self._broker.subscribe(
            CREDENTIAL_HEARTBEAT, handler, credential_ref=self.credential_ref)


class HeartbeatMonitor:
    """Tracks heartbeats for a set of credentials and flags silent ones.

    A service holding cached validations (ECRs, Fig. 5) registers each
    credential it depends on; :meth:`silent_credentials` then returns those
    whose last heartbeat is older than the timeout — the fail-safe signal
    that the issuer, or the channel, is gone.
    """

    __slots__ = ("_broker", "_timeout", "_clock", "_last_seen", "_subs")

    def __init__(self, broker: EventBroker, timeout: float,
                 clock: Callable[[], float]) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self._broker = broker
        self._timeout = timeout
        self._clock = clock
        self._last_seen: Dict[str, float] = {}
        self._subs: Dict[str, Subscription] = {}

    def watch(self, credential_ref: str) -> None:
        """Start monitoring heartbeats for ``credential_ref``."""
        if credential_ref in self._subs:
            return
        self._last_seen[credential_ref] = self._clock()
        self._subs[credential_ref] = self._broker.subscribe(
            CREDENTIAL_HEARTBEAT,
            lambda event, ref=credential_ref: self._on_heartbeat(ref, event),
            credential_ref=credential_ref)

    def unwatch(self, credential_ref: str) -> None:
        sub = self._subs.pop(credential_ref, None)
        if sub is not None:
            sub.cancel()
        self._last_seen.pop(credential_ref, None)

    def _on_heartbeat(self, credential_ref: str, event: Event) -> None:
        self._last_seen[credential_ref] = self._clock()

    def last_heartbeat(self, credential_ref: str) -> Optional[float]:
        return self._last_seen.get(credential_ref)

    def silent_credentials(self) -> List[str]:
        """Credentials with no heartbeat within the timeout window."""
        now = self._clock()
        return [ref for ref, seen in self._last_seen.items()
                if now - seen > self._timeout]

    @property
    def watched(self) -> List[str]:
        return list(self._subs)
