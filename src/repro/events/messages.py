"""Event message types for the active middleware substrate.

The paper integrates OASIS with an event-based middleware ([2], "Generic
support for distributed applications") so that "one service can be notified
of a change of state at another without any requirement for periodic
polling" (Sect. 4).  Events here are small immutable records published on
named topics; the access-control layer defines topics per credential record
so that revocation travels along the role-dependency edges of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Tuple

__all__ = [
    "Event",
    "CREDENTIAL_REVOKED",
    "CREDENTIAL_REISSUED",
    "CREDENTIAL_HEARTBEAT",
    "ROLE_DEACTIVATED",
]

#: Topic kinds used by the OASIS layer.
CREDENTIAL_REVOKED = "credential.revoked"
#: The credential's record is still valid but its *bytes* changed (e.g. the
#: issuer rotated its secret and the certificate must be re-issued).
#: Holders drop cached validations but do NOT cascade-revoke dependants.
CREDENTIAL_REISSUED = "credential.reissued"
CREDENTIAL_HEARTBEAT = "credential.heartbeat"
ROLE_DEACTIVATED = "role.deactivated"

#: Attribute value types that survive a JSON journal round trip with
#: their Python type intact (``bool`` is an ``int`` subclass; listing it
#: is documentation).  ``to_payload`` enforces this.
_JSON_SCALARS = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class Event:
    """An immutable event published on a topic.

    ``attributes`` is stored as a sorted tuple of pairs so events are
    hashable and order-insensitive in equality.
    """

    topic: str
    attributes: Tuple[Tuple[str, Any], ...] = field(default=())
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        if not self.topic:
            raise ValueError("event topic must be non-empty")
        normalized = tuple(sorted(self.attributes, key=lambda kv: kv[0]))
        object.__setattr__(self, "attributes", normalized)

    @classmethod
    def make(cls, topic: str, timestamp: float = 0.0,
             **attributes: Any) -> "Event":
        return cls(topic=topic, attributes=tuple(attributes.items()),
                   timestamp=timestamp)

    @property
    def attrs(self) -> Mapping[str, Any]:
        # Memoized: events are immutable and the broker consults the map
        # once per candidate subscription on the delivery hot path.
        cached = self.__dict__.get("_attrs")
        if cached is None:
            cached = dict(self.attributes)
            object.__setattr__(self, "_attrs", cached)
        return cached

    def get(self, key: str, default: Any = None) -> Any:
        # Events carry a handful of attributes; scanning the tuple avoids
        # materialising a dict for one lookup.
        for name, value in self.attributes:
            if name == key:
                return value
        return default

    def to_payload(self) -> Mapping[str, Any]:
        """A JSON-able dict round-trippable via :meth:`from_payload`.

        Used by the crash-consistent revocation path: a cascade's events
        are journalled to the record store's append log *before* they are
        published, and a resumed service re-emits them with topic,
        attributes and timestamp intact.  That round trip is only
        type-faithful for JSON-native scalar attribute values, so
        anything else is rejected *here* — at journal time — rather than
        silently replayed as a string after a restart.
        """
        for name, value in self.attributes:
            if not isinstance(value, _JSON_SCALARS):
                raise TypeError(
                    f"event attribute {name!r} has non-JSON-native value "
                    f"of type {type(value).__name__}; journalled events "
                    f"must round-trip without type loss")
        return {
            "topic": self.topic,
            "timestamp": self.timestamp,
            "attributes": [[name, value] for name, value in self.attributes],
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Event":
        """Rebuild an event journalled with :meth:`to_payload`."""
        return cls(topic=payload["topic"],
                   attributes=tuple((name, value) for name, value
                                    in payload.get("attributes", ())),
                   timestamp=payload.get("timestamp", 0.0))

    def with_attributes(self, **extra: Any) -> "Event":
        """A copy carrying additional attributes (same-named ones replaced).

        Used by the observability layer to let span context (``trace_id``,
        ``span_id``) ride on revocation events: subscriptions filter by
        attribute *equality on their own keys only*, so extra attributes
        never change who an event is delivered to.
        """
        merged = dict(self.attributes)
        merged.update(extra)
        return Event(topic=self.topic, attributes=tuple(merged.items()),
                     timestamp=self.timestamp)
