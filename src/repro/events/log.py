"""Event log: record and query every event crossing a broker.

Built on :meth:`~repro.events.broker.EventBroker.add_tap`.  Gives
deployments a middleware-level audit trail (which credential-revocation
events fired, when, and why) and gives tests a deterministic record to
assert against.  ``replay`` re-delivers a filtered slice into a handler —
useful to rebuild read-side state after a restart, the standard event-
sourcing pattern.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from .broker import EventBroker
from .messages import Event

__all__ = ["EventLog"]


class EventLog:
    """Records every event delivered by a broker, in order.

    With a ``capacity`` the log is a ring: the oldest events are evicted in
    O(1) once the bound is hit, and :meth:`stats` reports how many fell off
    so bounded retention never silently loses that it dropped history.  The
    default stays unbounded.
    """

    __slots__ = ("_capacity", "_events", "recorded", "discarded",
                 "_untap", "_closed")

    def __init__(self, broker: EventBroker,
                 capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self.recorded = 0
        self.discarded = 0
        self._untap = broker.add_tap(self._record)
        self._closed = False

    def _record(self, event: Event) -> None:
        self.recorded += 1
        if self._capacity is not None \
                and len(self._events) == self._capacity:
            self.discarded += 1  # the deque evicts the oldest on append
        self._events.append(event)

    def stats(self) -> Dict[str, Any]:
        """Retention counters: ring size/bound and what fell off the end."""
        return {
            "size": len(self._events),
            "capacity": self._capacity,
            "recorded": self.recorded,
            "discarded": self.discarded,
        }

    def close(self) -> None:
        """Stop recording (the log remains queryable)."""
        if not self._closed:
            self._untap()
            self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._events)

    def events(self, topic: Optional[str] = None,
               since: Optional[float] = None,
               until: Optional[float] = None,
               **attrs) -> List[Event]:
        """Events matching the filters, in delivery order.

        The time window is half-open, ``[since, until)`` — consecutive
        windows partition the log with no duplicates (same convention as
        :meth:`repro.core.access_log.AccessLog.query`).
        """
        results = []
        for event in self._events:
            if topic is not None and event.topic != topic:
                continue
            if since is not None and event.timestamp < since:
                continue
            if until is not None and event.timestamp >= until:
                continue
            event_attrs = event.attrs
            if any(event_attrs.get(key) != want
                   for key, want in attrs.items()):
                continue
            results.append(event)
        return results

    def topics(self) -> List[str]:
        return sorted({event.topic for event in self._events})

    def replay(self, handler: Callable[[Event], None],
               topic: Optional[str] = None, **attrs) -> int:
        """Deliver the filtered slice into ``handler``; returns count."""
        matched = self.events(topic=topic, **attrs)
        for event in matched:
            handler(event)
        return len(matched)
