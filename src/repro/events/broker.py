"""Publish/subscribe event broker.

A minimal but complete realisation of the active middleware the paper
depends on: services *advertise* topics, clients *subscribe* with optional
attribute filters, and published events are delivered synchronously (the
default, giving the "immediate deactivation" semantics of Sect. 4) or
buffered for deterministic replay in simulations.

Delivery is depth-safe: a handler may publish further events (revocation
cascades do exactly this); nested publishes are queued and drained in FIFO
order so the cascade is breadth-first and terminates even with cyclic
subscription graphs, since the OASIS layer never re-revokes an already
revoked credential.

Dispatch is *indexed*: subscriptions whose filter includes the broker's
designated index key (``credential_ref`` by default — every Fig. 5 channel
event carries it) are bucketed under ``(topic, value)``, so delivering an
event costs O(matching + wildcard subscribers on the topic) rather than
O(all topic subscribers).  The FIG5 cascade revokes S credentials against
a population of N live subscriptions; the naive scan made that O(S·N),
the index makes it O(S · services).  ``EventBroker(indexed=False)``
retains the naive linear scan as a reference path; a differential test
(``tests/events/test_broker_differential.py``) checks both paths deliver
identical sequences.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, Iterable, List, Mapping,
                    Optional, Tuple)

from ..core.terms import DATACLASS_SLOTS
from ..obs import runtime as _obs_runtime
from .messages import Event

__all__ = ["Subscription", "EventBroker"]

Handler = Callable[[Event], None]

#: Distinguishes broker instances in exported metric labels.
_BROKER_COUNTER = itertools.count(1)

#: The default equality-filter key the dispatch index is built on.  Every
#: per-credential channel event (revocation, re-issue, heartbeat) carries
#: this attribute, so the index covers all Fig. 5 traffic.
DEFAULT_INDEX_KEY = "credential_ref"

#: Sentinel distinguishing "attribute absent" from any real value during
#: residual filter checks (an event attribute can legitimately be None).
_MISSING = object()


@dataclass(**DATACLASS_SLOTS)
class Subscription:
    """A live subscription; call :meth:`cancel` to stop receiving events.

    Slotted: the Fig. 5 architecture takes one subscription per dependency
    edge, so a scale world carries hundreds of thousands of these.
    """

    topic: str
    handler: Handler
    filter_attrs: Mapping[str, Any]
    _broker: "EventBroker"
    _active: bool = True
    #: Global registration order; delivery merges index buckets and
    #: wildcard lists on it so indexed dispatch preserves the naive order.
    seq: int = field(default=0)
    #: Filters still to check at delivery time, given where the broker
    #: placed this subscription: a bucketed subscription's index-key
    #: filter is guaranteed by bucket selection and the topic by candidate
    #: selection, so only the rest is re-checked per event.
    residual: Tuple[Tuple[str, Any], ...] = ()

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> None:
        if self._active:
            self._active = False
            self._broker._remove(self)

    def matches(self, event: Event) -> bool:
        if event.topic != self.topic:
            return False
        attrs = event.attrs
        for key, want in self.filter_attrs.items():
            if key not in attrs or attrs[key] != want:
                return False
        return True


class EventBroker:
    """Topic-based pub/sub broker with attribute filtering.

    Statistics (`published_count`, `delivered_count`, :meth:`stats`)
    support the FIG5/ABL1 benchmarks, which compare the message cost of
    event-driven revocation against polling.
    """

    def __init__(self, indexed: bool = True,
                 index_key: str = DEFAULT_INDEX_KEY) -> None:
        self._indexed = indexed
        self._index_key = index_key
        self._seq = itertools.count(1)
        # topic -> {seq: Subscription}; authoritative registry.  Dicts keep
        # insertion (= registration) order and give O(1) removal by seq.
        self._subs: Dict[str, Dict[int, Subscription]] = {}
        # (topic, index-key value) -> {seq: Subscription} — subscriptions
        # whose filter pins the index key to one value.
        self._buckets: Dict[Tuple[str, Any], Dict[int, Subscription]] = {}
        # topic -> {seq: Subscription} — subscriptions with no index-key
        # filter; they must be considered for every event on the topic.
        self._wildcards: Dict[str, Dict[int, Subscription]] = {}
        self._taps: List[Handler] = []
        self._publishing = False
        self._queue: Deque[Event] = deque()
        self.published_count = 0
        self.delivered_count = 0
        self._topic_published: Dict[str, int] = {}
        self._topic_delivered: Dict[str, int] = {}
        self._queue_depth_peak = 0
        self._obs = _obs_runtime.pipeline()
        if self._obs is not None:
            self._obs_label = f"b{next(_BROKER_COUNTER)}"
            self._obs.metrics.register_collector(self._collect_obs_metrics)

    def _collect_obs_metrics(self) -> Iterable[Tuple[str, str, str,
                                                     List[Tuple[Dict[str, Any],
                                                                Any]]]]:
        """Pull-time metric families; the publish/deliver hot paths stay
        plain counter increments."""
        broker = self._obs_label
        yield ("oasis_broker_events_total", "counter",
               "events through the broker, by stage",
               [({"broker": broker, "kind": "published"},
                 self.published_count),
                ({"broker": broker, "kind": "delivered"},
                 self.delivered_count)])
        yield ("oasis_broker_queue_depth", "gauge",
               "events currently queued for delivery",
               [({"broker": broker}, len(self._queue))])
        yield ("oasis_broker_queue_depth_peak", "gauge",
               "high-watermark of the delivery queue",
               [({"broker": broker}, self._queue_depth_peak)])
        yield ("oasis_broker_subscriptions", "gauge",
               "live subscriptions",
               [({"broker": broker}, self.subscriber_count())])

    @property
    def indexed(self) -> bool:
        return self._indexed

    @property
    def index_key(self) -> str:
        return self._index_key

    def add_tap(self, handler: Handler) -> Callable[[], None]:
        """Register a tap that sees *every* delivered event, any topic.

        Taps are for observability (event logs, debugging, audit) — they
        run after regular subscribers and must not publish.  Returns an
        un-tap function.
        """
        self._taps.append(handler)

        def remove() -> None:
            if handler in self._taps:
                self._taps.remove(handler)

        return remove

    def subscribe(self, topic: str, handler: Handler,
                  **filter_attrs: Any) -> Subscription:
        """Register ``handler`` for events on ``topic`` matching the filter."""
        if not topic:
            raise ValueError("topic must be non-empty")
        sub = Subscription(topic=topic, handler=handler,
                           filter_attrs=dict(filter_attrs), _broker=self,
                           seq=next(self._seq))
        sub.residual = tuple(sub.filter_attrs.items())
        self._subs.setdefault(topic, {})[sub.seq] = sub
        if self._indexed:
            if self._index_key in sub.filter_attrs:
                key = (topic, sub.filter_attrs[self._index_key])
                self._buckets.setdefault(key, {})[sub.seq] = sub
                sub.residual = tuple(
                    (k, v) for k, v in sub.residual if k != self._index_key)
            else:
                self._wildcards.setdefault(topic, {})[sub.seq] = sub
        return sub

    def subscribe_many(self, topic: str,
                       entries: Iterable[Tuple[Handler, Mapping[str, Any]]],
                       ) -> List[Subscription]:
        """Register a batch of subscriptions on one topic in one pass.

        Equivalent to calling :meth:`subscribe` per entry (same registration
        order, same delivery semantics) but the per-call overhead — topic
        registry lookup, index-key classification, residual-filter
        construction — is paid once per *shape* instead of once per
        subscription.  The dominant caller is bulk credential issuance,
        where every entry filters on exactly the index key
        (``credential_ref=...``): that shape short-circuits to an empty
        residual without rebuilding filter tuples.
        """
        if not topic:
            raise ValueError("topic must be non-empty")
        batch = [(handler, dict(filter_attrs))
                 for handler, filter_attrs in entries]
        if not batch:
            return []
        registry = self._subs.setdefault(topic, {})
        indexed = self._indexed
        index_key = self._index_key
        seq_counter = self._seq
        buckets = self._buckets
        wildcards: Optional[Dict[int, Subscription]] = None
        subs: List[Subscription] = []
        for handler, attrs in batch:
            sub = Subscription(topic=topic, handler=handler,
                               filter_attrs=attrs, _broker=self,
                               seq=next(seq_counter))
            if indexed and index_key in attrs:
                if len(attrs) == 1:
                    sub.residual = ()
                else:
                    sub.residual = tuple(
                        (k, v) for k, v in attrs.items() if k != index_key)
                buckets.setdefault((topic, attrs[index_key]), {})[sub.seq] = sub
            else:
                sub.residual = tuple(attrs.items())
                if indexed:
                    if wildcards is None:
                        wildcards = self._wildcards.setdefault(topic, {})
                    wildcards[sub.seq] = sub
            registry[sub.seq] = sub
            subs.append(sub)
        return subs

    def subscriber_count(self, topic: Optional[str] = None) -> int:
        if topic is None:
            return sum(len(subs) for subs in self._subs.values())
        return len(self._subs.get(topic, ()))

    def publish(self, event: Event) -> int:
        """Publish an event; returns the number of deliveries it caused.

        Deliveries triggered transitively (handlers that publish) are
        counted in `delivered_count` but not in the return value.
        """
        self.published_count += 1
        self._topic_published[event.topic] = \
            self._topic_published.get(event.topic, 0) + 1
        self._queue.append(event)
        if self._publishing:
            return 0  # outer publish loop will drain the queue
        return self._drain(first=1)

    def publish_batch(self, events: Iterable[Event]) -> int:
        """Publish a coalesced batch of events in one queue pass.

        The batch is appended to the delivery queue in order and drained
        FIFO exactly as individually-published events would be, so batched
        revocation cascades keep breadth-first semantics.  Returns the
        number of deliveries the batch's own events caused (transitive
        deliveries are counted in ``delivered_count`` only); inside an
        outer publish the batch is queued and 0 is returned, as with
        :meth:`publish`.
        """
        batch = list(events)
        if not batch:
            return 0
        self.published_count += len(batch)
        for event in batch:
            self._topic_published[event.topic] = \
                self._topic_published.get(event.topic, 0) + 1
            self._queue.append(event)
        if self._publishing:
            return 0
        return self._drain(first=len(batch))

    def _drain(self, first: int) -> int:
        """Drain the queue; count deliveries of the first ``first`` events
        (they are the caller's own — the queue was empty before them)."""
        self._publishing = True
        own_deliveries = 0
        popped = 0
        try:
            while self._queue:
                if self._obs is not None:
                    depth = len(self._queue)
                    if depth > self._queue_depth_peak:
                        self._queue_depth_peak = depth
                current = self._queue.popleft()
                delivered = self._deliver(current)
                popped += 1
                if popped <= first:
                    own_deliveries += delivered
        finally:
            self._publishing = False
        return own_deliveries

    def _candidates(self, event: Event) -> List[Subscription]:
        """Subscriptions that may match ``event``, in registration order."""
        if not self._indexed:
            return list(self._subs.get(event.topic, {}).values())
        wildcards = self._wildcards.get(event.topic)
        bucket = None
        for key, value in event.attributes:
            if key == self._index_key:
                bucket = self._buckets.get((event.topic, value))
                break
        # An event without the index key cannot match any indexed
        # subscription (their filters require it), so buckets are skipped.
        if not bucket:
            return list(wildcards.values()) if wildcards else []
        if not wildcards:
            return list(bucket.values())
        # Merge the two registration-ordered lists by seq so delivery
        # order is identical to the naive scan's.
        merged: List[Subscription] = []
        left = iter(bucket.values())
        right = iter(wildcards.values())
        a = next(left, None)
        b = next(right, None)
        while a is not None and b is not None:
            if a.seq < b.seq:
                merged.append(a)
                a = next(left, None)
            else:
                merged.append(b)
                b = next(right, None)
        while a is not None:
            merged.append(a)
            a = next(left, None)
        while b is not None:
            merged.append(b)
            b = next(right, None)
        return merged

    def _deliver(self, event: Event) -> int:
        # Candidates are copied out: handlers may subscribe/cancel during
        # delivery.  Only each subscription's *residual* filters need
        # checking here — topic and (for bucketed subscriptions) the index
        # key are guaranteed by candidate selection.
        delivered = 0
        for sub in self._candidates(event):
            if not sub._active:
                continue
            residual = sub.residual
            if residual:
                attrs = event.attrs
                satisfied = True
                for key, want in residual:
                    if attrs.get(key, _MISSING) != want:
                        satisfied = False
                        break
                if not satisfied:
                    continue
            sub.handler(event)
            delivered += 1
        self.delivered_count += delivered
        if delivered:
            self._topic_delivered[event.topic] = \
                self._topic_delivered.get(event.topic, 0) + delivered
        if self._taps:
            for tap in tuple(self._taps):
                tap(event)
        return delivered

    def _remove(self, sub: Subscription) -> None:
        subs = self._subs.get(sub.topic)
        if subs is not None and subs.pop(sub.seq, None) is not None:
            if not subs:
                del self._subs[sub.topic]
        if not self._indexed:
            return
        if self._index_key in sub.filter_attrs:
            key = (sub.topic, sub.filter_attrs[self._index_key])
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.pop(sub.seq, None)
                if not bucket:
                    del self._buckets[key]
        else:
            wildcards = self._wildcards.get(sub.topic)
            if wildcards is not None:
                wildcards.pop(sub.seq, None)
                if not wildcards:
                    del self._wildcards[sub.topic]

    def stats(self) -> Dict[str, Any]:
        """Observability snapshot: global/per-topic counters and the
        current shape of the dispatch index.

        Consumed by the benchmark harness and asserted in tests; cheap
        enough to call from monitoring loops.
        """
        topics: Dict[str, Dict[str, int]] = {}
        for topic, count in self._topic_published.items():
            topics.setdefault(topic, {"published": 0, "delivered": 0})[
                "published"] = count
        for topic, count in self._topic_delivered.items():
            topics.setdefault(topic, {"published": 0, "delivered": 0})[
                "delivered"] = count
        bucket_sizes: Dict[str, Dict[str, int]] = {}
        for (topic, _value), bucket in self._buckets.items():
            entry = bucket_sizes.setdefault(
                topic, {"buckets": 0, "subscriptions": 0, "largest": 0})
            entry["buckets"] += 1
            entry["subscriptions"] += len(bucket)
            entry["largest"] = max(entry["largest"], len(bucket))
        return {
            "indexed": self._indexed,
            "index_key": self._index_key,
            "published_count": self.published_count,
            "delivered_count": self.delivered_count,
            "subscriptions": self.subscriber_count(),
            "wildcard_subscriptions": sum(
                len(subs) for subs in self._wildcards.values()),
            "topics": topics,
            "index_buckets": bucket_sizes,
        }
