"""Publish/subscribe event broker.

A minimal but complete realisation of the active middleware the paper
depends on: services *advertise* topics, clients *subscribe* with optional
attribute filters, and published events are delivered synchronously (the
default, giving the "immediate deactivation" semantics of Sect. 4) or
buffered for deterministic replay in simulations.

Delivery is depth-safe: a handler may publish further events (revocation
cascades do exactly this); nested publishes are queued and drained in FIFO
order so the cascade is breadth-first and terminates even with cyclic
subscription graphs, since the OASIS layer never re-revokes an already
revoked credential.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional

from .messages import Event

__all__ = ["Subscription", "EventBroker"]

Handler = Callable[[Event], None]


@dataclass
class Subscription:
    """A live subscription; call :meth:`cancel` to stop receiving events."""

    topic: str
    handler: Handler
    filter_attrs: Mapping[str, Any]
    _broker: "EventBroker"
    _active: bool = True

    @property
    def active(self) -> bool:
        return self._active

    def cancel(self) -> None:
        if self._active:
            self._active = False
            self._broker._remove(self)

    def matches(self, event: Event) -> bool:
        if event.topic != self.topic:
            return False
        attrs = event.attrs
        for key, want in self.filter_attrs.items():
            if key not in attrs or attrs[key] != want:
                return False
        return True


class EventBroker:
    """Topic-based pub/sub broker with attribute filtering.

    Statistics (`published_count`, `delivered_count`) support the FIG5/ABL1
    benchmarks, which compare the message cost of event-driven revocation
    against polling.
    """

    def __init__(self) -> None:
        self._subs: Dict[str, List[Subscription]] = {}
        self._taps: List[Handler] = []
        self._publishing = False
        self._queue: Deque[Event] = deque()
        self.published_count = 0
        self.delivered_count = 0

    def add_tap(self, handler: Handler) -> Callable[[], None]:
        """Register a tap that sees *every* delivered event, any topic.

        Taps are for observability (event logs, debugging, audit) — they
        run after regular subscribers and must not publish.  Returns an
        un-tap function.
        """
        self._taps.append(handler)

        def remove() -> None:
            if handler in self._taps:
                self._taps.remove(handler)

        return remove

    def subscribe(self, topic: str, handler: Handler,
                  **filter_attrs: Any) -> Subscription:
        """Register ``handler`` for events on ``topic`` matching the filter."""
        if not topic:
            raise ValueError("topic must be non-empty")
        sub = Subscription(topic=topic, handler=handler,
                           filter_attrs=dict(filter_attrs), _broker=self)
        self._subs.setdefault(topic, []).append(sub)
        return sub

    def subscriber_count(self, topic: Optional[str] = None) -> int:
        if topic is None:
            return sum(len(subs) for subs in self._subs.values())
        return len(self._subs.get(topic, []))

    def publish(self, event: Event) -> int:
        """Publish an event; returns the number of deliveries it caused.

        Deliveries triggered transitively (handlers that publish) are
        counted in `delivered_count` but not in the return value.
        """
        self.published_count += 1
        self._queue.append(event)
        if self._publishing:
            return 0  # outer publish loop will drain the queue
        self._publishing = True
        first_deliveries = 0
        first = True
        try:
            while self._queue:
                current = self._queue.popleft()
                delivered = self._deliver(current)
                if first:
                    first_deliveries = delivered
                    first = False
        finally:
            self._publishing = False
        return first_deliveries

    def _deliver(self, event: Event) -> int:
        # Copy: handlers may subscribe/cancel during delivery.
        subs = list(self._subs.get(event.topic, []))
        delivered = 0
        for sub in subs:
            if sub.active and sub.matches(event):
                sub.handler(event)
                delivered += 1
        self.delivered_count += delivered
        for tap in list(self._taps):
            tap(event)
        return delivered

    def _remove(self, sub: Subscription) -> None:
        subs = self._subs.get(sub.topic)
        if subs and sub in subs:
            subs.remove(sub)
            if not subs:
                del self._subs[sub.topic]
