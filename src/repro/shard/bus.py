"""Cross-shard event routing: remote dependency links + forwarding broker.

A revocation cascade is local until a Fig. 5 dependency edge crosses a
shard boundary: a credential issued on shard B depends on one owned by
shard A.  The protocol mirrors the in-process design (one event channel
per credential record) at shard granularity:

* **link registration** — when B issues a credential with a foreign
  dependency, it queues a ``link`` message to the owner shard A.  A's
  :class:`CrossShardBus` records ``ref -> {B}``; this is the cross-shard
  analogue of the issuer-side event channel subscription.
* **cascade forwarding** — when A's broker publishes a collapsed
  subtree's coalesced ``CREDENTIAL_REVOKED`` batch (PR 3 semantics), the
  :class:`ShardBroker` hands the batch to the bus, which selects the
  events whose refs have remote links and queues **one coalesced
  ``cascade`` message per target shard** — one cross-shard hop per
  publish, however many credentials died.  Events travel as
  :meth:`~repro.events.messages.Event.to_payload` dicts, so the span
  context (``trace_id``/``span_id``) attached by the observability layer
  rides along and the receiving worker parents its cascade spans under
  the remote revocation — ``obs`` stitches the multi-worker cascade into
  one trace tree.
* **delivery** — the receiving worker injects the batch through
  :meth:`ShardBroker.deliver_remote`, which publishes on the *base*
  broker only: injected events are never re-forwarded, so two shards can
  hold links onto each other without ping-pong.  Cascades the delivery
  *triggers* publish through the subclass and do forward — multi-hop
  chains settle hop by hop.

Exactly-once collapse does not depend on the bus being exactly-once:
``CredentialRecord.revoke`` is idempotent and a worker only flips records
it owns, so a duplicate or stale forwarded event finds no active
dependents and dies out (same argument as the in-process diamond
convergence in tests/core/test_cascade_graphs.py).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Set, Tuple

from ..events.broker import EventBroker
from ..events.messages import CREDENTIAL_REVOKED, Event

__all__ = ["CrossShardBus", "ShardBroker"]


class CrossShardBus:
    """One worker's endpoint of the cross-shard revocation bus.

    Holds the remote-link registry for credentials this shard owns and an
    outbox of coalesced messages for other shards.  The transport is
    deliberately not here: the worker loop drains the outbox into its
    pipe responses and the coordinator routes each message to the target
    worker (see :mod:`repro.shard.router`), so delivery order per link is
    the pipe's FIFO order.
    """

    def __init__(self, shard: int, shards: int) -> None:
        self.shard = shard
        self.shards = shards
        #: ref.qualified -> shards holding dependents of that credential.
        self._remote_links: Dict[str, Set[int]] = {}
        self._outbox: List[Dict[str, Any]] = []
        self.links_registered = 0
        self.batches_sent = 0
        self.batches_received = 0
        self.events_sent = 0
        self.events_received = 0

    # -- issuance side ------------------------------------------------------
    def link_dependency(self, dep_ref_qualified: str,
                        owner_shard: int) -> None:
        """Queue a link registration to a foreign dependency's owner."""
        if owner_shard == self.shard:
            return
        self._outbox.append({"kind": "link", "to": owner_shard,
                             "links": [[dep_ref_qualified, self.shard]]})

    # -- owner side ---------------------------------------------------------
    def register_remote_links(self,
                              links: Iterable[Tuple[str, int]]) -> int:
        """Record that foreign shards hold dependents of local credentials."""
        count = 0
        for ref, holder_shard in links:
            self._remote_links.setdefault(ref, set()).add(holder_shard)
            count += 1
        self.links_registered += count
        return count

    def forward(self, events: Iterable[Event]) -> None:
        """Queue remote-linked events, one coalesced message per shard.

        Called by :class:`ShardBroker` on every publish.  A
        ``CREDENTIAL_REVOKED`` event is terminal for its channel, so its
        links are dropped after forwarding; other linked topics (e.g.
        ``credential.reissued``) keep theirs.
        """
        per_shard: Dict[int, List[Mapping[str, Any]]] = {}
        for event in events:
            ref = event.get("credential_ref")
            if ref is None:
                continue
            targets = self._remote_links.get(ref)
            if not targets:
                continue
            if event.topic == CREDENTIAL_REVOKED:
                del self._remote_links[ref]
            payload = event.to_payload()
            for target in targets:
                per_shard.setdefault(target, []).append(payload)
        for target, payloads in sorted(per_shard.items()):
            self._outbox.append({"kind": "cascade", "to": target,
                                 "events": payloads})
            self.batches_sent += 1
            self.events_sent += len(payloads)

    # -- transport glue -----------------------------------------------------
    def drain(self) -> List[Dict[str, Any]]:
        """Take the queued outgoing messages (coalescing link messages
        that target the same shard)."""
        out, self._outbox = self._outbox, []
        merged: List[Dict[str, Any]] = []
        link_index: Dict[int, Dict[str, Any]] = {}
        for message in out:
            if message["kind"] == "link":
                existing = link_index.get(message["to"])
                if existing is not None:
                    existing["links"].extend(message["links"])
                    continue
                link_index[message["to"]] = message
            merged.append(message)
        return merged

    def remote_link_count(self) -> int:
        return sum(len(holders) for holders in self._remote_links.values())

    def stats(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "remote_links": self.remote_link_count(),
            "links_registered": self.links_registered,
            "batches_sent": self.batches_sent,
            "batches_received": self.batches_received,
            "events_sent": self.events_sent,
            "events_received": self.events_received,
        }


class ShardBroker(EventBroker):
    """An :class:`EventBroker` whose publishes also cross shard boundaries.

    Locally it is the ordinary indexed broker — services subscribe,
    cascades collapse, delivery order is FIFO.  Additionally every
    published event is offered to the :class:`CrossShardBus` for
    forwarding to shards that registered dependent links.
    """

    def __init__(self, bus: CrossShardBus, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.bus = bus

    def publish(self, event: Event) -> int:
        self.bus.forward((event,))
        return super().publish(event)

    def publish_batch(self, events: Iterable[Event]) -> int:
        batch = list(events)
        self.bus.forward(batch)
        return super().publish_batch(batch)

    def deliver_remote(self, payloads: Iterable[Mapping[str, Any]]) -> int:
        """Publish a forwarded batch locally without re-forwarding it."""
        events = [Event.from_payload(payload) for payload in payloads]
        self.bus.batches_received += 1
        self.bus.events_received += len(events)
        return EventBroker.publish_batch(self, events)
