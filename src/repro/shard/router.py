"""Shard coordinator: request fan-out, bus routing, metric/trace merging.

The :class:`ShardRouter` owns N workers (child processes over
``multiprocessing`` pipes by default; in-process :class:`ShardWorker`
objects with ``inprocess=True`` for deterministic single-interpreter
tests) and is the only component that talks to more than one shard:

* **request routing** — ``issue/activate/invoke/revoke`` go to the
  owning shard: by ``CredentialRef`` hash when a ref (or a presented
  credential) pins the request, by session/principal key hash otherwise.
  Bulk entry points are batch-aware: entries are grouped per shard and
  travel as one ``issue_rmcs_bulk``/``activate_roles_bulk`` message per
  shard, results reassembled in caller order.
* **bus routing** — every worker response carries that worker's drained
  :class:`~repro.shard.bus.CrossShardBus` outbox; the router forwards
  each message to its target shard and breadth-first drains any messages
  *those* deliveries produce.  A cross-shard cascade therefore settles
  completely before the originating call returns — callers observe the
  same synchronous-cascade semantics as the single-process service.
* **merging** — per-shard stats become coordinator-level
  ``oasis_shard_*`` metric families (registerable as a collector on an
  :class:`~repro.obs.runtime.Observability` pipeline), and worker span
  exports merge into one tracer via :meth:`~repro.obs.tracing.Tracer.adopt`
  so a multi-worker cascade renders as a single trace tree.

Responses are matched to requests by sequence number, not arrival order:
when routing a cascade hop to a worker that still owes an earlier
response, the earlier response is stashed until its caller collects it.
Workers process their pipe strictly in order, so this never deadlocks.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple, Union)

from ..core import wire
from ..core.credentials import CredentialRef
from ..core.service import ActivationRequest, Presentation
from ..core.state import ref_payload
from ..core.types import PrincipalId
from ..obs.runtime import Observability
from ..obs.tracing import Tracer
from .partition import shard_of_key, shard_of_ref
from .worker import ShardWorker, worker_main

__all__ = ["ShardRouter", "ShardRequestError", "START_METHOD_ENV"]

#: Environment override for the multiprocessing start method
#: (``fork``/``spawn``/``forkserver``); defaults to ``fork`` when the
#: platform offers it (cheapest), ``spawn`` otherwise.
START_METHOD_ENV = "OASIS_SHARD_START_METHOD"


class ShardRequestError(RuntimeError):
    """A worker-side exception, re-raised at the coordinator.

    ``error_type`` preserves the worker-side exception class name
    (``ActivationDenied``, ``InvocationDenied``, ...) so callers can
    branch on the access-control outcome without sharing exception
    objects across the pipe.
    """

    def __init__(self, shard: int, error_type: str, message: str) -> None:
        super().__init__(f"shard {shard}: {error_type}: {message}")
        self.shard = shard
        self.error_type = error_type
        self.detail = message


def _encode_presentations(credentials: Sequence[Any]) -> List[Dict[str, Any]]:
    encoded = []
    for item in credentials:
        if isinstance(item, Presentation):
            encoded.append({"cert": wire.encode_certificate(item.certificate),
                            "holder": item.holder,
                            "on_behalf_of": item.on_behalf_of})
        else:  # a bare certificate
            encoded.append({"cert": wire.encode_certificate(item),
                            "holder": None, "on_behalf_of": None})
    return encoded


class _WorkerHandle:
    """Seq-matched request/response channel to one worker."""

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self._seq = 0
        self._stash: Dict[int, Dict[str, Any]] = {}

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def send(self, message: Dict[str, Any]) -> int:
        raise NotImplementedError

    def recv(self, seq: int) -> Dict[str, Any]:
        raise NotImplementedError

    def close(self) -> None:
        pass


class _InprocessHandle(_WorkerHandle):
    def __init__(self, shard: int, worker: ShardWorker) -> None:
        super().__init__(shard)
        self.worker = worker

    def send(self, message: Dict[str, Any]) -> int:
        seq = self.next_seq()
        message["seq"] = seq
        self._stash[seq] = self.worker.dispatch(message)
        return seq

    def recv(self, seq: int) -> Dict[str, Any]:
        return self._stash.pop(seq)


class _ProcessHandle(_WorkerHandle):
    def __init__(self, shard: int, conn: Any, process: Any) -> None:
        super().__init__(shard)
        self.conn = conn
        self.process = process
        ready = conn.recv()  # construction handshake
        if not ready.get("ok"):
            error = ready.get("error", {})
            raise ShardRequestError(shard, error.get("type", "Error"),
                                    error.get("message", "worker failed"))

    def send(self, message: Dict[str, Any]) -> int:
        seq = self.next_seq()
        message["seq"] = seq
        self.conn.send(message)
        return seq

    def recv(self, seq: int) -> Dict[str, Any]:
        while seq not in self._stash:
            response = self.conn.recv()
            self._stash[response["seq"]] = response
        return self._stash.pop(seq)

    def close(self) -> None:
        self.conn.close()
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)


class ShardRouter:
    """Coordinator for a sharded OASIS universe (see module docstring)."""

    def __init__(self, shards: int, factory: Callable[..., Any],
                 factory_args: Sequence[Any] = (), *,
                 observed: bool = False,
                 inprocess: bool = False,
                 start_method: Optional[str] = None,
                 pipeline: Optional[Observability] = None) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.shards = shards
        self.observed = observed
        self._pipeline = pipeline
        self._closed = False
        # Coordinator-side counters (the per-shard ones live in workers).
        self.requests_routed = [0] * shards
        self.cross_shard_batches_routed = 0
        self.cross_shard_events_routed = 0
        self.links_routed = 0
        self._handles: List[_WorkerHandle] = []
        if inprocess:
            for shard in range(shards):
                worker = ShardWorker(shard, shards, factory, factory_args,
                                     observed=observed)
                self._handles.append(_InprocessHandle(shard, worker))
        else:
            method = (start_method
                      or os.environ.get(START_METHOD_ENV, "").strip()
                      or None)
            if method is None:
                available = multiprocessing.get_all_start_methods()
                method = "fork" if "fork" in available else "spawn"
            ctx = multiprocessing.get_context(method)
            started: List[Tuple[Any, Any]] = []
            for shard in range(shards):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=worker_main,
                    args=(child_conn, shard, shards, factory,
                          tuple(factory_args), observed),
                    daemon=True)
                process.start()
                child_conn.close()
                started.append((parent_conn, process))
            for shard, (parent_conn, process) in enumerate(started):
                self._handles.append(
                    _ProcessHandle(shard, parent_conn, process))
        if pipeline is not None:
            pipeline.metrics.register_collector(self._collect_shard_metrics)

    # -- low-level plumbing -------------------------------------------------
    def _send(self, shard: int, op: str, **fields: Any) -> int:
        self.requests_routed[shard] += 1
        message = {"op": op}
        message.update(fields)
        return self._handles[shard].send(message)

    def _collect(self, shard: int, seq: int,
                 route_bus: bool = True) -> Any:
        response = self._handles[shard].recv(seq)
        bus_messages = response.get("bus", ())
        if route_bus and bus_messages:
            self._route_bus(bus_messages)
        if not response["ok"]:
            error = response["error"]
            raise ShardRequestError(shard, error["type"], error["message"])
        return response["value"]

    def _request(self, shard: int, op: str, **fields: Any) -> Any:
        return self._collect(shard, self._send(shard, op, **fields))

    def _route_bus(self, messages: Iterable[Mapping[str, Any]]) -> None:
        """Breadth-first drain of cross-shard messages until quiescence."""
        queue = deque(messages)
        while queue:
            message = queue.popleft()
            target = message["to"]
            if message["kind"] == "cascade":
                self.cross_shard_batches_routed += 1
                self.cross_shard_events_routed += len(message["events"])
                seq = self._send(target, "bus.cascade",
                                 events=message["events"])
            elif message["kind"] == "link":
                self.links_routed += len(message["links"])
                seq = self._send(target, "bus.link",
                                 links=message["links"])
            else:
                raise ValueError(f"unknown bus message kind "
                                 f"{message['kind']!r}")
            response = self._handles[target].recv(seq)
            if not response["ok"]:
                error = response["error"]
                raise ShardRequestError(target, error["type"],
                                        error["message"])
            queue.extend(response.get("bus", ()))

    # -- placement ----------------------------------------------------------
    def shard_for_ref(self, ref: CredentialRef) -> int:
        return shard_of_ref(ref, self.shards)

    def shard_for_key(self, key: str) -> int:
        return shard_of_key(key, self.shards)

    def _placement(self, session_id: Optional[str],
                   principal: Union[str, PrincipalId],
                   credentials: Sequence[Any] = ()) -> int:
        """Owning shard for a new credential: pinned by the presented
        credentials when there are any (their records live there and the
        new Fig. 5 edges must be shard-local), else by session key, else
        by principal."""
        for item in credentials:
            certificate = item.certificate \
                if isinstance(item, Presentation) else item
            return self.shard_for_ref(certificate.ref)
        if session_id is not None:
            return self.shard_for_key(session_id)
        value = principal.value if isinstance(principal, PrincipalId) \
            else str(principal)
        return self.shard_for_key(value)

    # -- access-control API (mirrors OasisService) --------------------------
    def issue_rmcs_bulk(self, service: str,
                        entries: Sequence[Tuple[Any, str, Sequence[Any],
                                                Sequence[CredentialRef],
                                                Optional[str]]],
                        shards: Optional[Sequence[int]] = None) -> List[Any]:
        """Batch-aware trusted issuance across shards.

        Each entry is ``(principal, role_name, parameters, dependencies,
        session_id)``.  Placement follows ``shards`` when given (explicit
        pinning, used by tests that lay dependency edges across a shard
        boundary), otherwise the session/principal key hash.  One
        ``issue_rmcs_bulk`` message goes to each involved shard; results
        come back in entry order.
        """
        groups: Dict[int, List[int]] = {}
        for index, entry in enumerate(entries):
            principal, _role, _params, _deps, session = entry
            shard = shards[index] if shards is not None \
                else self._placement(session, principal)
            groups.setdefault(shard, []).append(index)
        pending: List[Tuple[int, int, List[int]]] = []
        for shard, indices in sorted(groups.items()):
            payload = []
            for index in indices:
                principal, role, parameters, dependencies, session = \
                    entries[index]
                value = principal.value \
                    if isinstance(principal, PrincipalId) else str(principal)
                payload.append({
                    "principal": value,
                    "role": role,
                    "parameters": list(parameters),
                    "dependencies": [ref_payload(dep)
                                     for dep in dependencies],
                    "session": session,
                })
            pending.append((shard,
                            self._send(shard, "issue_bulk", service=service,
                                       entries=payload), indices))
        results: List[Any] = [None] * len(entries)
        for shard, seq, indices in pending:
            value = self._collect(shard, seq)
            for index, cert_payload in zip(indices, value["certs"]):
                results[index] = wire.decode_certificate(cert_payload)
        return results

    def _activation_payload(self, request: ActivationRequest
                            ) -> Dict[str, Any]:
        return {
            "principal": request.principal.value,
            "role": request.role_name,
            "parameters": None if request.parameters is None
            else list(request.parameters),
            "credentials": _encode_presentations(request.credentials),
            "environment": request.environment,
            "session": request.session_id,
        }

    def activate_role(self, service: str, principal: Any, role_name: str,
                      parameters: Optional[Sequence[Any]] = None,
                      credentials: Sequence[Any] = (),
                      session_id: Optional[str] = None,
                      environment: Optional[Dict[str, Any]] = None,
                      shard: Optional[int] = None) -> Any:
        principal_id = principal if isinstance(principal, PrincipalId) \
            else PrincipalId(str(principal))
        if shard is None:
            shard = self._placement(session_id, principal_id, credentials)
        request = ActivationRequest(
            principal=principal_id, role_name=role_name,
            parameters=parameters,
            credentials=[item if isinstance(item, Presentation)
                         else Presentation(item) for item in credentials],
            environment=environment, session_id=session_id)
        value = self._request(shard, "activate", service=service,
                              request=self._activation_payload(request))
        return wire.decode_certificate(value["cert"])

    def activate_roles_bulk(self, service: str,
                            requests: Sequence[ActivationRequest],
                            shards: Optional[Sequence[int]] = None
                            ) -> List[Any]:
        """Batch-aware activation: one ``activate_roles_bulk`` per shard."""
        groups: Dict[int, List[int]] = {}
        for index, request in enumerate(requests):
            shard = shards[index] if shards is not None \
                else self._placement(request.session_id, request.principal,
                                     request.credentials)
            groups.setdefault(shard, []).append(index)
        pending: List[Tuple[int, int, List[int]]] = []
        for shard, indices in sorted(groups.items()):
            payload = [self._activation_payload(requests[index])
                       for index in indices]
            pending.append((shard,
                            self._send(shard, "activate_bulk",
                                       service=service, requests=payload),
                            indices))
        results: List[Any] = [None] * len(requests)
        for shard, seq, indices in pending:
            value = self._collect(shard, seq)
            for index, cert_payload in zip(indices, value["certs"]):
                results[index] = wire.decode_certificate(cert_payload)
        return results

    def invoke(self, service: str, principal: Any, method: str,
               arguments: Sequence[Any] = (),
               credentials: Sequence[Any] = (),
               shard: Optional[int] = None) -> Any:
        principal_id = principal if isinstance(principal, PrincipalId) \
            else PrincipalId(str(principal))
        if shard is None:
            shard = self._placement(None, principal_id, credentials)
        value = self._request(
            shard, "invoke", service=service,
            principal=principal_id.value, method=method,
            arguments=list(arguments),
            credentials=_encode_presentations(credentials))
        return value["result"]

    def revoke(self, ref: CredentialRef, reason: str = "revoked") -> bool:
        """Revoke wherever the record lives; the cross-shard cascade has
        fully settled when this returns."""
        value = self._request(self.shard_for_ref(ref), "revoke",
                              ref=ref_payload(ref), reason=reason)
        return value["revoked"]

    def is_active(self, ref: CredentialRef) -> bool:
        value = self._request(self.shard_for_ref(ref), "is_active",
                              ref=ref_payload(ref))
        return value["active"]

    def credential_record(self, ref: CredentialRef
                          ) -> Optional[Dict[str, Any]]:
        value = self._request(self.shard_for_ref(ref), "record",
                              ref=ref_payload(ref))
        return value if value["found"] else None

    # -- whole-universe queries ---------------------------------------------
    def _all(self, op: str, **fields: Any) -> Dict[int, Any]:
        pending = [(shard, self._send(shard, op, **dict(fields)))
                   for shard in range(self.shards)]
        return {shard: self._collect(shard, seq) for shard, seq in pending}

    def audit(self, service: str,
              kind: Optional[str] = None) -> Dict[int, List[List[Any]]]:
        """Per-shard audit records for one service (access-log order
        within a shard; shards are independent streams)."""
        values = self._all("audit", service=service, kind=kind)
        return {shard: value["records"] for shard, value in values.items()}

    def live_sessions(self, service: str) -> List[str]:
        values = self._all("sessions", service=service)
        merged: List[str] = []
        for value in values.values():
            merged.extend(value["sessions"])
        return sorted(merged)

    def live_credential_count(self) -> int:
        values = self._all("live_count")
        return sum(sum(value["counts"].values())
                   for value in values.values())

    def checkpoint(self) -> None:
        self._all("checkpoint")

    # -- world handlers -----------------------------------------------------
    def call_handler(self, name: str, payload: Any = None,
                     shard: int = 0) -> Any:
        return self._request(shard, "handler", name=name,
                             payload=payload)["result"]

    def call_handler_all(self, name: str,
                         payloads: Optional[Mapping[int, Any]] = None
                         ) -> Dict[int, Any]:
        """Send one handler call to every worker *concurrently*, then
        collect.  This is the parallel traffic path of the scaling
        benchmark: all workers run their slice at the same time."""
        pending = [(shard,
                    self._send(shard, "handler", name=name,
                               payload=None if payloads is None
                               else payloads.get(shard)))
                   for shard in range(self.shards)]
        return {shard: self._collect(shard, seq)["result"]
                for shard, seq in pending}

    # -- observability merging ----------------------------------------------
    def worker_stats(self) -> Dict[int, Dict[str, Any]]:
        return self._all("stats")

    def stats(self) -> Dict[str, Any]:
        return {
            "shards": self.shards,
            "router": {
                "requests_routed": list(self.requests_routed),
                "cross_shard_batches_routed":
                    self.cross_shard_batches_routed,
                "cross_shard_events_routed": self.cross_shard_events_routed,
                "links_routed": self.links_routed,
            },
            "workers": self.worker_stats(),
        }

    def _collect_shard_metrics(self):
        """Pull-time collector: per-shard gauges/counters merged at the
        coordinator (family shapes match ``MetricsRegistry.collect``)."""
        if self._closed:
            return
        per_shard = self.worker_stats()
        def samples(field: str):
            return [({"shard": str(shard)}, stats.get(field, 0))
                    for shard, stats in sorted(per_shard.items())]
        yield ("oasis_shard_requests_total", "counter",
               "requests dispatched by each shard worker",
               samples("requests"))
        yield ("oasis_shard_revocations_total", "counter",
               "revocations (direct + cascade) executed per shard",
               samples("revocations"))
        yield ("oasis_shard_live_credentials", "gauge",
               "active credential records per shard",
               samples("live_credentials"))
        yield ("oasis_shard_events_published_total", "counter",
               "broker events published per shard",
               samples("events_published"))
        bus_samples = []
        link_samples = []
        for shard, stats in sorted(per_shard.items()):
            bus = stats.get("bus", {})
            for direction, batches, events in (
                    ("sent", "batches_sent", "events_sent"),
                    ("received", "batches_received", "events_received")):
                bus_samples.append((
                    {"shard": str(shard), "direction": direction,
                     "unit": "batches"}, bus.get(batches, 0)))
                bus_samples.append((
                    {"shard": str(shard), "direction": direction,
                     "unit": "events"}, bus.get(events, 0)))
            link_samples.append(({"shard": str(shard)},
                                 bus.get("remote_links", 0)))
        yield ("oasis_shard_cross_shard_traffic_total", "counter",
               "coalesced cross-shard cascade traffic per shard",
               bus_samples)
        yield ("oasis_shard_remote_links", "gauge",
               "live remote dependency links registered per shard",
               link_samples)
        yield ("oasis_shard_router_bus_total", "counter",
               "cross-shard messages routed by the coordinator",
               [({"kind": "cascade_batches"},
                 self.cross_shard_batches_routed),
                ({"kind": "cascade_events"},
                 self.cross_shard_events_routed),
                ({"kind": "links"}, self.links_routed)])

    def spans(self, trace_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Span exports from every worker (dicts, coordinator-mergeable)."""
        values = self._all("spans", trace_id=trace_id)
        merged: List[Dict[str, Any]] = []
        for shard in sorted(values):
            merged.extend(values[shard]["spans"])
        return merged

    def stitch(self, trace_id: str,
               tracer: Optional[Tracer] = None) -> Tracer:
        """Merge every worker's spans for one trace into a tracer whose
        :meth:`~repro.obs.tracing.Tracer.tree` then shows the whole
        multi-worker cascade as one tree."""
        target = tracer if tracer is not None else Tracer()
        target.adopt(self.spans(trace_id))
        return target

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard, handle in enumerate(self._handles):
            try:
                seq = handle.send({"op": "shutdown"})
                handle.recv(seq)
            except (BrokenPipeError, EOFError, OSError):
                pass
            handle.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
