"""Credential partitioning: which shard owns which ``CredentialRef``.

The scale-out design (ROADMAP item 3, docs/scaling.md) partitions
credential records and live sessions across N worker processes **by
CredentialRef hash**: shard ``crc32(ref.qualified) % shards`` owns the
record, receives the revocation for it, and runs its cascade.

Routing by the hash of a ref is only useful if the shard that *issues* a
credential is also the shard its ref hashes to — otherwise ownership and
issuance disagree and every lookup needs a directory.  The
:class:`ShardedRefAllocator` closes that loop from the issuing side: a
worker's allocator skips any serial whose ref would hash to a different
shard, so the serial spaces of the N workers are disjoint and *whoever
issued a credential owns it*, by construction, with no coordination.
``crc32`` (not Python's ``hash``) keeps the placement stable across
processes and interpreter runs — ``PYTHONHASHSEED`` must not move
records between shards.
"""

from __future__ import annotations

import itertools
import zlib
from typing import List

from ..core.credentials import CredentialRef, CredentialRefAllocator
from ..core.types import ServiceId

__all__ = [
    "stable_hash",
    "shard_of_key",
    "shard_of_ref",
    "ShardedRefAllocator",
]


def stable_hash(key: str) -> int:
    """A process-stable 32-bit hash of a routing key."""
    return zlib.crc32(key.encode("utf-8"))


def shard_of_key(key: str, shards: int) -> int:
    """The shard a free-form routing key (session id, principal) maps to."""
    return stable_hash(key) % shards


def shard_of_ref(ref: CredentialRef, shards: int) -> int:
    """The shard that owns a credential record."""
    return stable_hash(ref.qualified) % shards


class ShardedRefAllocator(CredentialRefAllocator):
    """A serial allocator that only mints refs owned by its shard.

    Works by rejection over the serial space: serials whose qualified ref
    string hashes to a foreign shard are skipped, never allocated by this
    worker (a sibling worker with the complementary filter allocates
    them).  Expected probing cost is ``shards`` crc32 calls per
    allocation — micro-costs, and the bulk path amortises bookkeeping.

    Invariant: ``_next_serial`` always sits on an owned serial, so
    :attr:`next_serial` (used for durable serial-reserve watermarks)
    stays meaningful for resume.
    """

    __slots__ = ("shard", "shards")

    def __init__(self, service: ServiceId, shard: int, shards: int) -> None:
        if shards <= 0:
            raise ValueError("shards must be positive")
        if not 0 <= shard < shards:
            raise ValueError(f"shard {shard} out of range for {shards} "
                             f"shards")
        super().__init__(service)
        self.shard = shard
        self.shards = shards
        self._align()

    def owns_serial(self, serial: int) -> bool:
        return (stable_hash(f"{self._service}#{serial}") % self.shards
                == self.shard)

    def _align(self) -> None:
        """Advance ``_next_serial`` to the next owned serial (no-op when
        already owned)."""
        serial = self._next_serial
        owns = self.owns_serial
        while not owns(serial):
            serial += 1
        if serial != self._next_serial:
            self._next_serial = serial
            self._counter = itertools.count(serial)

    def next(self) -> CredentialRef:
        serial = self._next_serial  # owned, by invariant
        ref = CredentialRef(self._service, serial)
        serial += 1
        owns = self.owns_serial
        while not owns(serial):
            serial += 1
        self._next_serial = serial
        self._counter = itertools.count(serial)
        return ref

    def next_many(self, count: int) -> List[CredentialRef]:
        service = self._service
        owns = self.owns_serial
        serial = self._next_serial
        refs: List[CredentialRef] = []
        while len(refs) < count:
            if owns(serial):
                refs.append(CredentialRef(service, serial))
            serial += 1
        while not owns(serial):
            serial += 1
        self._next_serial = serial
        self._counter = itertools.count(serial)
        return refs

    def advance_past(self, serial: int) -> None:
        super().advance_past(serial)
        self._align()
