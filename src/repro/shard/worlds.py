"""Shard-aware demo worlds: module-level factories for workers.

Worker processes do not unpickle live services (policies hold closures);
they *rebuild* the world locally from a module-level factory, which must
therefore be importable by name in a spawned child — that is why these
live in the package rather than in a test or benchmark file.  Each
factory takes the worker's :class:`~repro.shard.worker.ShardContext`
first and returns an object with a ``services`` mapping and optional
``handlers``.

:class:`ShardScaleWorld` is the sharded twin of the single-process
``ScaleWorld`` in ``benchmarks/workloads.py`` — same two services, same
roles, same 60/30/10 invoke/churn/collapse traffic mix — partitioned by
session stride so each worker owns a disjoint slice of the live
sessions.  The diamond and chain worlds carry only policy (credentials
are laid down by tests through the router's trusted bulk-issue path,
with dependency edges crossing shard boundaries on purpose).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional

from ..core import (ActivationRule, AuthorizationRule, PrerequisiteRole,
                    Presentation, PrincipalId, Role, RoleTemplate,
                    ServiceId, ServicePolicy, Var)
from ..core.access_log import AccessLog
from ..db import Database
from .worker import ShardContext

__all__ = [
    "scale_policies",
    "ShardScaleWorld",
    "scale_world_factory",
    "graph_world_factory",
]


def scale_policies() -> Dict[str, Any]:
    """Fresh policy objects for the scale world (shared with its
    single-process twin so differential tests compare like with like):
    ``login`` defines the parameterless-prerequisite ``root`` role,
    ``resource`` defines the ``leaf`` role requiring root membership and
    guards a ``use`` method on it."""
    login_policy = ServicePolicy(ServiceId("scale", "login"))
    root_role = login_policy.define_role("root", 1)
    root_template = RoleTemplate(root_role, (Var("u"),))
    login_policy.add_activation_rule(ActivationRule(root_template))

    resource_policy = ServicePolicy(ServiceId("scale", "resource"))
    leaf_role = resource_policy.define_role("leaf", 1)
    leaf_template = RoleTemplate(leaf_role, (Var("u"),))
    resource_policy.add_activation_rule(ActivationRule(
        leaf_template,
        (PrerequisiteRole(root_template, membership=True),)))
    resource_policy.add_authorization_rule(AuthorizationRule(
        "use", (Var("u"),), (PrerequisiteRole(leaf_template),)))
    return {
        "login": login_policy,
        "resource": resource_policy,
        "root_role": root_role,
        "leaf_role": leaf_role,
    }


class ShardScaleWorld:
    """One worker's slice of the million-principal world.

    Handlers:

    * ``build`` — ``{"principals": N, "live": M}``: issue the worker's
      stride of root (and live leaf) credentials through the bulk APIs,
      keeping the client-side RMCs locally; returns slice counts.
    * ``traffic`` — ``{"rounds": R, "inner": K}``: run ``R`` timed
      rounds of ``K`` mixed ops (60% invoke / 30% leaf churn / 10% root
      collapse) over the local live sessions; returns wall/CPU seconds
      and per-round per-op microseconds, which the harness merges across
      workers.
    * ``live_count`` / ``state`` — accounting for differential checks.
    """

    CHUNK = 50_000

    def __init__(self, ctx: ShardContext,
                 access_log_capacity: Optional[int] = 10_000) -> None:
        self.ctx = ctx
        policies = scale_policies()
        self.root_role = policies["root_role"]
        self.leaf_role = policies["leaf_role"]
        self.db = Database("scale-db")
        self.db.create_table("accounts", ["principal", "tier"])
        self.login = ctx.service(
            policies["login"],
            access_log=AccessLog(capacity=access_log_capacity))
        self.resource = ctx.service(
            policies["resource"], databases={"main": self.db},
            access_log=AccessLog(capacity=access_log_capacity))
        self.resource.register_method("use", lambda user: f"ok[{user}]")
        self.services = {"login": self.login, "resource": self.resource}
        self.handlers = {
            "build": self.build,
            "traffic": self.traffic,
            "live_count": lambda _payload: self.live_credential_count(),
            "state": lambda _payload: self.state(),
        }
        # Client-side state for this worker's live sessions: parallel
        # lists, position i is local live session i.
        self.session_indices: List[int] = []
        self.session_principals: List[PrincipalId] = []
        self.session_roots: List[Any] = []
        self.session_leaves: List[Any] = []
        self._cursor = 0

    # -- construction -------------------------------------------------------
    def _slice(self, total: int) -> range:
        """This worker's stride of the global index space."""
        return range(self.ctx.shard, total, self.ctx.shards)

    def build(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        principals = int(payload["principals"])
        live = int(payload.get("live", 0))
        indices = list(self._slice(principals))
        self.db.put_many("accounts", [
            {"principal": f"p{index}", "tier": index % 4}
            for index in indices])
        for start in range(0, len(indices), self.CHUNK):
            chunk = indices[start:start + self.CHUNK]
            ids = [PrincipalId(f"p{index}") for index in chunk]
            roots = self.login.issue_rmcs_bulk([
                (pid, Role(self.root_role, (pid.value,)), (),
                 f"s{index}")
                for index, pid in zip(chunk, ids)])
            live_pairs = [(index, pid, root) for (index, pid), root
                          in zip(zip(chunk, ids), roots) if index < live]
            if live_pairs:
                leaves = self.resource.issue_rmcs_bulk([
                    (pid, Role(self.leaf_role, (pid.value,)),
                     (root.ref,), f"s{index}")
                    for index, pid, root in live_pairs])
                for (index, pid, root), leaf in zip(live_pairs, leaves):
                    self.session_indices.append(index)
                    self.session_principals.append(pid)
                    self.session_roots.append(root)
                    self.session_leaves.append(leaf)
        return {"principals": len(indices),
                "live": len(self.session_indices)}

    # -- mixed traffic ------------------------------------------------------
    def invoke_op(self) -> None:
        index = self._cursor % len(self.session_principals)
        self._cursor += 1
        self.resource.invoke(
            self.session_principals[index], "use",
            [self.session_principals[index].value],
            credentials=[Presentation(self.session_leaves[index])])

    def churn_op(self) -> None:
        index = self._cursor % len(self.session_principals)
        self._cursor += 1
        pid = self.session_principals[index]
        self.resource.revoke(self.session_leaves[index].ref, "churn")
        self.session_leaves[index] = self.resource.activate_role(
            pid, "leaf", None, [Presentation(self.session_roots[index])],
            session_id=f"s{self.session_indices[index]}")

    def root_revoke_op(self) -> None:
        index = self._cursor % len(self.session_principals)
        self._cursor += 1
        pid = self.session_principals[index]
        session = f"s{self.session_indices[index]}"
        self.login.revoke(self.session_roots[index].ref, "logout")
        root = self.login.issue_rmcs_bulk(
            [(pid, Role(self.root_role, (pid.value,)), (), session)])[0]
        leaf = self.resource.issue_rmcs_bulk(
            [(pid, Role(self.leaf_role, (pid.value,)), (root.ref,),
              session)])[0]
        self.session_roots[index] = root
        self.session_leaves[index] = leaf

    def mixed_op(self) -> None:
        slot = self._cursor % 10
        if slot < 6:
            self.invoke_op()
        elif slot < 9:
            self.churn_op()
        else:
            self.root_revoke_op()

    def traffic(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        if not self.session_principals:
            raise RuntimeError("traffic before build (or empty live slice)")
        rounds = int(payload.get("rounds", 3))
        inner = int(payload.get("inner", 100))
        mixed_op = self.mixed_op
        round_us: List[float] = []
        wall_started = time.perf_counter()
        cpu_started = time.process_time()
        for _ in range(rounds):
            started = time.perf_counter()
            for _ in range(inner):
                mixed_op()
            elapsed = time.perf_counter() - started
            round_us.append(elapsed / inner * 1e6)
        return {
            "ops": rounds * inner,
            "wall_s": time.perf_counter() - wall_started,
            "cpu_s": time.process_time() - cpu_started,
            "round_us": round_us,
        }

    # -- accounting ---------------------------------------------------------
    def live_credential_count(self) -> int:
        return (len(self.login.active_credentials())
                + len(self.resource.active_credentials()))

    def state(self) -> Dict[str, Any]:
        """Observable per-session state for differential comparison."""
        return {
            "live": self.live_credential_count(),
            "sessions": {
                f"s{index}": {
                    "root_active": self.login.is_active(root.ref),
                    "leaf_active": self.resource.is_active(leaf.ref),
                }
                for index, root, leaf in zip(self.session_indices,
                                             self.session_roots,
                                             self.session_leaves)
            },
        }


def scale_world_factory(ctx: ShardContext) -> ShardScaleWorld:
    return ShardScaleWorld(ctx)


class GraphShardWorld:
    """Policy world for dependency-graph tests: ``names`` services in
    one domain, each defining a unary ``role`` and a ``ping`` method
    guarded by it; credentials and their (possibly cross-shard)
    dependency edges are laid down by the tests through the router's
    trusted bulk-issue path."""

    def __init__(self, ctx: ShardContext, names: List[str]) -> None:
        self.ctx = ctx
        self.services = {}
        for name in names:
            policy = ServicePolicy(ServiceId("graph", name))
            role = policy.define_role("role", 1)
            template = RoleTemplate(role, (Var("u"),))
            policy.add_activation_rule(ActivationRule(template))
            policy.add_authorization_rule(AuthorizationRule(
                "ping", (Var("u"),), (PrerequisiteRole(template),)))
            service = ctx.service(
                policy, access_log=AccessLog(capacity=10_000))
            service.register_method("ping", lambda u: f"pong[{u}]")
            self.services[name] = service
        self.handlers: Dict[str, Any] = {}


def graph_world_factory(ctx: ShardContext,
                        names: List[str]) -> GraphShardWorld:
    return GraphShardWorld(ctx, names)
