"""Shard worker: one process hosting one partition of the universe.

A worker holds a *full replica of the policy world* (every service's
rules, methods and secrets are rebuilt locally by the world factory) but
only *its partition of the security state*: each service gets a
:class:`~repro.shard.partition.ShardedRefAllocator`, so every credential
record a worker holds has a ref that hashes to its own shard.  Requests
reach the worker as small dict messages over a ``multiprocessing`` pipe;
certificates cross as :mod:`repro.core.wire` payloads, events as
:meth:`~repro.events.messages.Event.to_payload` dicts, and CRRs as
:func:`~repro.core.state.ref_payload` dicts — nothing process-local ever
crosses the boundary, which is what lets the interned
``ServiceId``/``RoleName`` ``__reduce__`` paths land ``is``-identical on
the far side.

The worker never talks to its siblings directly: outgoing cross-shard
messages (link registrations, coalesced cascade batches) accumulate on
its :class:`~repro.shard.bus.CrossShardBus` and ride back to the
coordinator on the next response's ``bus`` field; the coordinator routes
them (see :mod:`repro.shard.router`).  That keeps the worker loop a pure
request/response automaton — no cross-worker deadlocks by construction.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..core import wire
from ..core.access_log import AccessRecord
from ..core.credentials import CredentialRef
from ..core.policy import ServicePolicy
from ..core.service import (ActivationRequest, OasisService, Presentation,
                            ServiceRegistry)
from ..core.state import ServiceStateCodec, ref_from_payload, ref_payload
from ..core.types import PrincipalId, Role, RoleName
from ..db import default_store
from ..obs.runtime import Observability, disable, enable
from .bus import CrossShardBus, ShardBroker
from .partition import ShardedRefAllocator, shard_of_ref

__all__ = ["ShardContext", "ShardWorker", "worker_main"]


class ShardContext:
    """What a world factory needs to build shard-correct services."""

    def __init__(self, shard: int, shards: int, broker: ShardBroker,
                 registry: ServiceRegistry,
                 clock: Callable[[], float] = lambda: 0.0) -> None:
        self.shard = shard
        self.shards = shards
        self.broker = broker
        self.bus = broker.bus
        self.registry = registry
        self.clock = clock

    def allocator(self, policy: ServicePolicy) -> ShardedRefAllocator:
        return ShardedRefAllocator(policy.service, self.shard, self.shards)

    def store(self, policy: ServicePolicy) -> Optional[Any]:
        """The env-selected record store for one service, shard-templated.

        In sharded mode the sqlite backend *requires* a durable
        ``OASIS_STORE_PATH`` template (see :mod:`repro.db`) — this is
        where that strictness bites.
        """
        return default_store(ServiceStateCodec(), shard=self.shard,
                             service=str(policy.service))

    def service(self, policy: ServicePolicy, **kwargs: Any) -> OasisService:
        """Build an :class:`OasisService` wired for this shard."""
        kwargs.setdefault("clock", self.clock)
        kwargs.setdefault("store", self.store(policy))
        return OasisService(policy, self.broker, self.registry,
                            allocator=self.allocator(policy),
                            **kwargs)

    # -- cross-shard dependency edges ---------------------------------------
    def owner_of(self, ref: CredentialRef) -> int:
        return shard_of_ref(ref, self.shards)

    def link_dependencies(self,
                          dependencies: Sequence[CredentialRef]) -> None:
        """Register this shard as a dependent holder with each foreign
        dependency's owner (no-op for locally owned deps)."""
        for dep in dependencies:
            owner = shard_of_ref(dep, self.shards)
            if owner != self.shard:
                self.bus.link_dependency(dep.qualified, owner)


class ShardWorker:
    """The request-dispatching core of one shard worker.

    Usable in-process (deterministic tests drive :meth:`dispatch`
    directly) or as the engine of a child process (:func:`worker_main`).
    The world ``factory`` is a module-level callable
    ``factory(ctx, *factory_args)`` returning an object with a
    ``services`` mapping (``key -> OasisService``) and an optional
    ``handlers`` mapping (``name -> callable(payload)``) for world-side
    bulk operations such as benchmark traffic.
    """

    def __init__(self, shard: int, shards: int,
                 factory: Callable[..., Any],
                 factory_args: Sequence[Any] = (),
                 observed: bool = False) -> None:
        self.shard = shard
        self.shards = shards
        self.pipeline: Optional[Observability] = None
        if observed:
            # Per-worker pipeline with shard-prefixed span ids: workers
            # mint globally unique ids that the coordinator can merge.
            self.pipeline = Observability(trace_id_prefix=f"w{shard}.")
            enable(self.pipeline)
        try:
            self.bus = CrossShardBus(shard, shards)
            self.broker = ShardBroker(self.bus)
            self.registry = ServiceRegistry()
            self.context = ShardContext(shard, shards, self.broker,
                                        self.registry)
            self.world = factory(self.context, *factory_args)
        finally:
            if observed:
                # Services snapshot the pipeline at construction; the
                # module-level current pipeline need not stay set (and in
                # in-process multi-worker tests it must not leak).
                disable()
        self.services: Dict[str, OasisService] = dict(self.world.services)
        self.handlers: Dict[str, Callable[[Any], Any]] = \
            dict(getattr(self.world, "handlers", None) or {})
        self._by_id = {service.id: service
                       for service in self.services.values()}
        self.requests = 0

    # -- lookups ------------------------------------------------------------
    def _service(self, key: str) -> OasisService:
        try:
            return self.services[key]
        except KeyError:
            raise KeyError(f"worker {self.shard} has no service "
                           f"keyed {key!r}") from None

    def _service_for_ref(self, ref: CredentialRef) -> OasisService:
        try:
            return self._by_id[ref.service]
        except KeyError:
            raise KeyError(f"worker {self.shard} hosts no service "
                           f"{ref.service}") from None

    @staticmethod
    def _presentations(payloads: Sequence[Mapping[str, Any]]
                       ) -> List[Presentation]:
        return [Presentation(wire.decode_certificate(entry["cert"]),
                             holder=entry.get("holder"),
                             on_behalf_of=entry.get("on_behalf_of"))
                for entry in payloads]

    def _role(self, service: OasisService,
              name: str, parameters: Sequence[Any]) -> Role:
        return Role(RoleName(service.id, name), tuple(parameters))

    # -- operations ---------------------------------------------------------
    def dispatch(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """Execute one request; always returns a response dict carrying
        the drained cross-shard outbox (even on error — a failed batch
        may have produced partial forwards that must still settle)."""
        self.requests += 1
        try:
            value = self._execute(message)
            response: Dict[str, Any] = {"seq": message.get("seq"),
                                        "ok": True, "value": value}
        except Exception as error:  # noqa: BLE001 - crosses the pipe
            response = {"seq": message.get("seq"), "ok": False,
                        "error": {"type": type(error).__name__,
                                  "message": str(error)}}
        response["bus"] = self.bus.drain()
        return response

    def _execute(self, message: Mapping[str, Any]) -> Any:
        op = message["op"]
        if op == "issue_bulk":
            return self._op_issue_bulk(message)
        if op == "activate":
            return self._op_activate(message)
        if op == "activate_bulk":
            return self._op_activate_bulk(message)
        if op == "invoke":
            return self._op_invoke(message)
        if op == "revoke":
            service = self._service_for_ref(
                ref := ref_from_payload(message["ref"]))
            return {"revoked": service.revoke(ref,
                                              message.get("reason",
                                                          "revoked"))}
        if op == "is_active":
            ref = ref_from_payload(message["ref"])
            return {"active": self._service_for_ref(ref).is_active(ref)}
        if op == "record":
            return self._op_record(message)
        if op == "audit":
            return self._op_audit(message)
        if op == "sessions":
            service = self._service(message["service"])
            return {"sessions": sorted(service.live_sessions())}
        if op == "live_count":
            return {"counts": {key: len(service.active_credentials())
                               for key, service in self.services.items()}}
        if op == "stats":
            return self.stats()
        if op == "spans":
            return {"spans": self.export_spans(message.get("trace_id"),
                                               message.get("name"))}
        if op == "handler":
            handler = self.handlers.get(message["name"])
            if handler is None:
                raise KeyError(f"worker {self.shard} has no handler "
                               f"{message['name']!r}")
            return {"result": handler(message.get("payload"))}
        if op == "bus.cascade":
            return {"delivered":
                    self.broker.deliver_remote(message["events"])}
        if op == "bus.link":
            return {"registered": self.bus.register_remote_links(
                (ref, int(shard)) for ref, shard in message["links"])}
        if op == "checkpoint":
            for service in self.services.values():
                service.checkpoint()
            return {}
        if op == "ping":
            return {"shard": self.shard}
        if op == "shutdown":  # meaningful for the child loop; no-op here
            return None
        raise ValueError(f"unknown worker op {op!r}")

    def _op_issue_bulk(self, message: Mapping[str, Any]) -> Any:
        service = self._service(message["service"])
        entries = []
        all_deps: List[CredentialRef] = []
        for entry in message["entries"]:
            dependencies = tuple(ref_from_payload(dep)
                                 for dep in entry.get("dependencies", ()))
            all_deps.extend(dependencies)
            entries.append((PrincipalId(entry["principal"]),
                            self._role(service, entry["role"],
                                       entry.get("parameters", ())),
                            dependencies, entry.get("session")))
        certificates = service.issue_rmcs_bulk(entries)
        self.context.link_dependencies(all_deps)
        return {"certs": [wire.encode_certificate(certificate)
                          for certificate in certificates]}

    def _activation_request(self, payload: Mapping[str, Any]
                            ) -> ActivationRequest:
        parameters = payload.get("parameters")
        return ActivationRequest(
            principal=PrincipalId(payload["principal"]),
            role_name=payload["role"],
            parameters=None if parameters is None else list(parameters),
            credentials=self._presentations(payload.get("credentials", ())),
            environment=payload.get("environment"),
            session_id=payload.get("session"))

    def _link_issued(self, service: OasisService, certificate: Any) -> None:
        record = service.credential_record(certificate.ref)
        if record is not None and record.membership_dependencies:
            self.context.link_dependencies(record.membership_dependencies)

    def _op_activate(self, message: Mapping[str, Any]) -> Any:
        service = self._service(message["service"])
        request = self._activation_request(message["request"])
        certificate = service.activate_role(
            request.principal, request.role_name, request.parameters,
            request.credentials, environment=request.environment,
            session_id=request.session_id)
        self._link_issued(service, certificate)
        return {"cert": wire.encode_certificate(certificate)}

    def _op_activate_bulk(self, message: Mapping[str, Any]) -> Any:
        service = self._service(message["service"])
        requests = [self._activation_request(payload)
                    for payload in message["requests"]]
        certificates = service.activate_roles_bulk(requests)
        for certificate in certificates:
            self._link_issued(service, certificate)
        return {"certs": [wire.encode_certificate(certificate)
                          for certificate in certificates]}

    def _op_invoke(self, message: Mapping[str, Any]) -> Any:
        service = self._service(message["service"])
        result = service.invoke(
            PrincipalId(message["principal"]), message["method"],
            list(message.get("arguments", ())),
            credentials=self._presentations(message.get("credentials", ())))
        return {"result": result}

    def _op_record(self, message: Mapping[str, Any]) -> Any:
        ref = ref_from_payload(message["ref"])
        record = self._service_for_ref(ref).credential_record(ref)
        if record is None:
            return {"found": False}
        return {"found": True, "status": record.status,
                "reason": record.revoked_reason,
                "session": record.session_id,
                "principal": record.principal.value,
                "dependencies": [ref_payload(dep) for dep
                                 in record.membership_dependencies]}

    def _op_audit(self, message: Mapping[str, Any]) -> Any:
        service = self._service(message["service"])
        kind = message.get("kind")
        records: List[AccessRecord] = (service.access_log.query(kind=kind)
                                       if kind is not None
                                       else list(service.access_log))
        return {"records": [[entry.timestamp, entry.kind, entry.principal,
                             entry.subject, entry.reason]
                            for entry in records]}

    # -- introspection ------------------------------------------------------
    def export_spans(self, trace_id: Optional[str] = None,
                     name: Optional[str] = None) -> List[Dict[str, Any]]:
        if self.pipeline is None:
            return []
        return [span.to_dict() for span
                in self.pipeline.tracer.spans(trace_id, name)]

    def stats(self) -> Dict[str, Any]:
        revocations = 0
        live = 0
        service_stats: Dict[str, Any] = {}
        for key, service in self.services.items():
            snapshot = service.stats.snapshot()
            service_stats[key] = snapshot
            # ``revocations`` already includes the cascaded ones;
            # ``cascade_revocations`` is the subset, not an addend.
            revocations += snapshot.get("revocations", 0)
            live += len(service.active_credentials())
        broker_stats = self.broker.stats()
        published = broker_stats.get("published_count", 0)
        return {
            "shard": self.shard,
            "requests": self.requests,
            "revocations": revocations,
            "live_credentials": live,
            "events_published": published,
            "services": service_stats,
            "broker": broker_stats,
            "bus": self.bus.stats(),
        }


def worker_main(conn: Any, shard: int, shards: int,
                factory: Callable[..., Any], factory_args: Sequence[Any],
                observed: bool) -> None:
    """Child-process entry point: build the worker, serve the pipe."""
    try:
        worker = ShardWorker(shard, shards, factory, factory_args,
                             observed=observed)
    except Exception as error:  # noqa: BLE001 - surface construction failure
        conn.send({"seq": None, "ok": False,
                   "error": {"type": type(error).__name__,
                             "message": str(error)},
                   "bus": []})
        conn.close()
        return
    conn.send({"seq": None, "ok": True, "value": {"shard": shard},
               "bus": []})
    try:
        while True:
            message = conn.recv()
            if message.get("op") == "shutdown":
                conn.send({"seq": message.get("seq"), "ok": True,
                           "value": None, "bus": worker.bus.drain()})
                break
            conn.send(worker.dispatch(message))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()
