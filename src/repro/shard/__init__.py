"""Horizontal scale-out: sharded multi-worker OASIS (ROADMAP item 3).

Partitions credential records and live sessions across N worker
processes by ``CredentialRef`` hash and routes revocation cascades
across shard boundaries as coalesced event batches, preserving the
single-process observable semantics (same grants, same cascade
completeness, same per-service audit streams).  See docs/scaling.md.

Layers:

* :mod:`repro.shard.partition` — stable hashing, ownership, and the
  rejection-sampling serial allocator that makes issuance agree with
  ownership.
* :mod:`repro.shard.bus` — remote dependency links and the forwarding
  broker (:class:`CrossShardBus`/:class:`ShardBroker`).
* :mod:`repro.shard.worker` — the per-process worker
  (:class:`ShardWorker`/:class:`ShardContext`).
* :mod:`repro.shard.router` — the coordinator
  (:class:`ShardRouter`), metric and trace merging.
* :mod:`repro.shard.worlds` — module-level world factories for
  benchmarks and tests.
"""

from .bus import CrossShardBus, ShardBroker
from .partition import (ShardedRefAllocator, shard_of_key, shard_of_ref,
                        stable_hash)
from .router import ShardRequestError, ShardRouter
from .worker import ShardContext, ShardWorker

__all__ = [
    "CrossShardBus",
    "ShardBroker",
    "ShardedRefAllocator",
    "shard_of_key",
    "shard_of_ref",
    "stable_hash",
    "ShardRequestError",
    "ShardRouter",
    "ShardContext",
    "ShardWorker",
]
