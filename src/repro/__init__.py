"""OASIS: Access Control and Trust in the Use of Widely Distributed Services.

A full reproduction of Bacon, Moody & Yao (Middleware 2001): a decentralised
role-based access control architecture with parametrised roles, Horn-clause
activation rules, appointment certificates instead of privilege delegation,
session-bound role membership certificates, and active revocation over
event-based middleware.

Top-level convenience re-exports cover the most common API surface; the
subpackages are:

* :mod:`repro.core` — the OASIS model, engine, services, sessions, audit;
* :mod:`repro.lang` — the policy definition language;
* :mod:`repro.events` — the active middleware substrate;
* :mod:`repro.crypto` — signatures, RSA, challenge-response;
* :mod:`repro.net` — simulated clock, scheduler and network;
* :mod:`repro.domains` — domains, service-level agreements, CIV services;
* :mod:`repro.db` — the lookup store backing environmental constraints;
* :mod:`repro.baselines` — ACL / flat-RBAC / delegation comparators.
"""

from .core import (
    ActivationDenied,
    ActivationRule,
    AppointmentCertificate,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    ConstraintCondition,
    CredentialInvalid,
    CredentialRevoked,
    EvaluationContext,
    InvocationDenied,
    OasisError,
    OasisService,
    Presentation,
    PrerequisiteRole,
    Principal,
    PrincipalId,
    Role,
    RoleMembershipCertificate,
    RoleName,
    RoleTemplate,
    ServiceId,
    ServicePolicy,
    ServiceRegistry,
    Session,
    Var,
)
from .events import EventBroker
from .net import Scheduler, SimClock, SimNetwork

__version__ = "1.0.0"

__all__ = [
    "ActivationDenied",
    "ActivationRule",
    "AppointmentCertificate",
    "AppointmentCondition",
    "AppointmentRule",
    "AuthorizationRule",
    "ConstraintCondition",
    "CredentialInvalid",
    "CredentialRevoked",
    "EvaluationContext",
    "EventBroker",
    "InvocationDenied",
    "OasisError",
    "OasisService",
    "Presentation",
    "PrerequisiteRole",
    "Principal",
    "PrincipalId",
    "Role",
    "RoleMembershipCertificate",
    "RoleName",
    "RoleTemplate",
    "Scheduler",
    "ServiceId",
    "ServicePolicy",
    "ServiceRegistry",
    "Session",
    "SimClock",
    "SimNetwork",
    "Var",
    "__version__",
]
