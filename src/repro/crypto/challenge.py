"""ISO/9798-style challenge-response protocol (Sect. 4.1).

From the paper:

    "The issuing service produces a random challenge, encrypted with the
    public key presented by the activator, and a nonce.  The client must
    respond with the challenge in plaintext encrypted with the nonce.  Upon
    receiving this, the service can conclude that the activator has access
    to the private key corresponding to the public key presented."

The flow implemented here:

1. :meth:`ChallengeResponseServer.issue` — returns ``(challenge_id,
   rsa_enc(pub, challenge), nonce)``.
2. :meth:`ChallengeResponseClient.respond` — decrypts the challenge with the
   private key and returns it encrypted under the nonce (a hash-keystream
   cipher; any symmetric scheme keyed by the nonce fits the paper's text).
3. :meth:`ChallengeResponseServer.verify` — decrypts with the stored nonce
   and compares with the issued challenge.  Challenges are single-use and
   nonces are replay-checked.
"""

from __future__ import annotations

import hashlib
import secrets
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .keys import KeyPair
from .nonce import NonceFactory, NonceRegistry
from .rsa import RSAPublicKey, rsa_encrypt_bytes

__all__ = [
    "symmetric_transform",
    "IssuedChallenge",
    "ChallengeResponseServer",
    "ChallengeResponseClient",
]


def symmetric_transform(key: bytes, data: bytes) -> bytes:
    """XOR ``data`` with a SHA-256 counter keystream derived from ``key``.

    Symmetric: applying it twice with the same key recovers the plaintext.
    """
    if not key:
        raise ValueError("empty symmetric key")
    out = bytearray()
    counter = 0
    while len(out) < len(data):
        block = hashlib.sha256(key + counter.to_bytes(8, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(b ^ k for b, k in zip(data, out))


@dataclass(frozen=True)
class IssuedChallenge:
    """What the server sends to the client."""

    challenge_id: str
    encrypted_challenge: bytes
    nonce: bytes


class ChallengeResponseServer:
    """Server side: issue challenges against a presented public key.

    Pending challenges are *bounded*: a real listener issues one per
    half-open handshake, so an unbounded ``_pending`` map is a trivial
    memory DoS — any peer able to reach the port could park millions of
    abandoned challenges.  Two independent limits apply:

    * ``ttl`` — a challenge not answered within this many seconds (by the
      server's ``clock``) is expired; expiry is enforced lazily on
      :meth:`issue`/:meth:`verify`, so no sweeper thread is needed.
    * ``max_pending`` — a hard cap on simultaneously pending challenges;
      issuing past it evicts the *oldest* pending challenge (the one most
      likely abandoned), never the newest.

    Both kinds of removal are counted (:attr:`expired_count`,
    :attr:`evicted_count`) so a deployment can alarm on handshake floods.
    """

    #: Defaults sized for an interactive handshake: answering takes one
    #: round trip, so 30 simulated/real seconds is generous, and 1024
    #: half-open handshakes per listener is far beyond honest load.
    DEFAULT_TTL = 30.0
    DEFAULT_MAX_PENDING = 1024

    def __init__(self, challenge_size: int = 16,
                 nonce_registry: Optional[NonceRegistry] = None,
                 ttl: Optional[float] = DEFAULT_TTL,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 clock: Callable[[], float] = lambda: 0.0) -> None:
        if challenge_size < 8:
            raise ValueError("challenge must be at least 8 bytes")
        if ttl is not None and ttl <= 0:
            raise ValueError("challenge ttl must be positive (or None)")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self._challenge_size = challenge_size
        self._nonces = NonceFactory()
        self._registry = nonce_registry or NonceRegistry()
        self._ttl = ttl
        self._max_pending = max_pending
        self._clock = clock
        # challenge_id -> (challenge, nonce, issued_at); insertion order is
        # issuance order, so the front entry is always the oldest.
        self._pending: "OrderedDict[str, Tuple[bytes, bytes, float]]" = \
            OrderedDict()
        self.expired_count = 0
        self.evicted_count = 0

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def _expire(self, now: float) -> None:
        if self._ttl is None:
            return
        horizon = now - self._ttl
        while self._pending:
            oldest_id = next(iter(self._pending))
            if self._pending[oldest_id][2] > horizon:
                break
            del self._pending[oldest_id]
            self.expired_count += 1

    def issue(self, presented_key: RSAPublicKey) -> IssuedChallenge:
        """Issue a fresh challenge encrypted under ``presented_key``."""
        now = self._clock()
        self._expire(now)
        while len(self._pending) >= self._max_pending:
            self._pending.popitem(last=False)
            self.evicted_count += 1
        challenge = secrets.token_bytes(self._challenge_size)
        nonce = self._nonces.new()
        if not self._registry.check_and_register(nonce):
            # Astronomically unlikely; regenerate rather than fail.
            nonce = self._nonces.new()
            self._registry.check_and_register(nonce)
        challenge_id = secrets.token_hex(8)
        self._pending[challenge_id] = (challenge, nonce, now)
        return IssuedChallenge(
            challenge_id=challenge_id,
            encrypted_challenge=rsa_encrypt_bytes(presented_key, challenge),
            nonce=nonce,
        )

    def verify(self, challenge_id: str, response: bytes) -> bool:
        """Check a response; the challenge is consumed either way."""
        self._expire(self._clock())
        entry = self._pending.pop(challenge_id, None)
        if entry is None:
            return False
        challenge, nonce, _ = entry
        recovered = symmetric_transform(nonce, response)
        return secrets.compare_digest(recovered, challenge)


class ChallengeResponseClient:
    """Client side: prove possession of the private key."""

    def __init__(self, keypair: KeyPair) -> None:
        self._keypair = keypair

    @property
    def public_key(self) -> RSAPublicKey:
        return self._keypair.public

    def respond(self, issued: IssuedChallenge) -> bytes:
        """Decrypt the challenge and return it encrypted under the nonce."""
        challenge = self._keypair.decrypt(issued.encrypted_challenge)
        return symmetric_transform(issued.nonce, challenge)
