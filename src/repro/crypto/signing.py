"""RSA hash-then-sign signatures for party co-signing (Sect. 6).

The audit-certificate proposal has the parties "negotiate a contract before
the service is undertaken, and together sign a certificate recording the
outcome".  HMAC signatures (Fig. 4) only authenticate the *issuer*; for two
mutually unknown parties to co-sign, public-key signatures are needed:
anyone holding a party's public key can verify its endorsement.

Construction: SHA-256 the message, embed the digest with a fixed domain
separation prefix, and apply the RSA private operation.  Textbook RSA
signatures without PSS randomisation — adequate here for the same reason as
in :mod:`repro.crypto.rsa`: the reproduction targets the architecture, and
the messages are canonical certificate encodings, not adversarial inputs
chosen to exploit malleability.
"""

from __future__ import annotations

import hashlib

from .rsa import RSAPrivateKey, RSAPublicKey

__all__ = ["rsa_sign", "rsa_verify"]

_PREFIX = b"oasis-sig-v1:"


def _digest_int(message: bytes, modulus: int) -> int:
    digest = hashlib.sha256(_PREFIX + message).digest()
    value = int.from_bytes(_PREFIX + digest, "big")
    return value % modulus


def rsa_sign(key: RSAPrivateKey, message: bytes) -> bytes:
    """Sign ``message``; returns the signature as fixed-width bytes."""
    value = _digest_int(message, key.n)
    signature = pow(value, key.d, key.n)
    width = (key.n.bit_length() + 7) // 8
    return signature.to_bytes(width, "big")


def rsa_verify(key: RSAPublicKey, message: bytes, signature: bytes) -> bool:
    """Verify an :func:`rsa_sign` signature under ``key``."""
    width = (key.n.bit_length() + 7) // 8
    if len(signature) != width:
        return False
    value = int.from_bytes(signature, "big")
    if value >= key.n:
        return False
    recovered = pow(value, key.e, key.n)
    return recovered == _digest_int(message, key.n)
