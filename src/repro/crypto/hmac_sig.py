"""Keyed signatures over certificate fields (Fig. 4 of the paper).

OASIS certificates are protected by a signature computed from the protected
fields, the principal id, and a SECRET held by the issuing service::

    F(principal_id, protected RMC fields, SECRET) = signature

We realise ``F`` as HMAC-SHA256 over a canonical, injective byte encoding of
the fields.  The security properties the paper claims follow directly:

* **tampering** — changing any protected field invalidates the signature;
* **forgery** — a correct signature cannot be produced without the secret;
* **theft** — the principal id enters the MAC, so a stolen certificate fails
  verification when presented under a different principal id.

The encoding must be *injective* (no two distinct field sequences encode to
the same bytes), otherwise an attacker could shift data between fields.  We
use a length-prefixed, type-tagged encoding.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
import weakref
from dataclasses import dataclass, field
from typing import Sequence, Tuple, Union

__all__ = ["ServiceSecret", "canonical_encode", "sign_fields", "verify_fields"]

#: Values that may appear in certificate fields.
FieldValue = Union[str, int, float, bool, None, bytes, Tuple["FieldValue", ...]]


@dataclass(frozen=True)
class ServiceSecret:
    """A secret held by a certificate-issuing service.

    The paper notes that long-lived appointment certificates "would be
    re-issued, encrypted with a new server secret, from time to time"
    (Sect. 4.1); :meth:`rotated` models exactly that — a fresh secret with a
    bumped generation number, so certificates signed under an old secret can
    be recognised as stale.
    """

    key: bytes = field(repr=False)
    generation: int = 0

    def __post_init__(self) -> None:
        if len(self.key) < 16:
            raise ValueError("service secret must be at least 16 bytes")
        if self.generation < 0:
            raise ValueError("generation must be non-negative")

    @classmethod
    def generate(cls) -> "ServiceSecret":
        return cls(key=secrets.token_bytes(32), generation=0)

    def rotated(self) -> "ServiceSecret":
        """Return a fresh secret with the next generation number."""
        return ServiceSecret(key=secrets.token_bytes(32),
                             generation=self.generation + 1)


def canonical_encode(value: FieldValue) -> bytes:
    """Encode a field value injectively as bytes.

    Every value is tagged with a one-byte type marker and length-prefixed so
    that concatenation of encodings is unambiguous.
    """
    if value is None:
        return b"N0:"
    if isinstance(value, bool):  # must precede int: bool is a subclass
        return b"B1:" + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        raw = str(value).encode("ascii")
        return b"I" + str(len(raw)).encode("ascii") + b":" + raw
    if isinstance(value, float):
        raw = repr(value).encode("ascii")
        return b"F" + str(len(raw)).encode("ascii") + b":" + raw
    if isinstance(value, str):
        raw = value.encode("utf-8")
        return b"S" + str(len(raw)).encode("ascii") + b":" + raw
    if isinstance(value, bytes):
        return b"Y" + str(len(value)).encode("ascii") + b":" + value
    if isinstance(value, tuple):
        parts = b"".join(canonical_encode(item) for item in value)
        return b"T" + str(len(parts)).encode("ascii") + b":" + parts
    raise TypeError(f"cannot encode field of type {type(value).__name__}")


def _message(principal_id: str, fields: Sequence[FieldValue]) -> bytes:
    return canonical_encode((principal_id, tuple(fields)))


# HMAC key schedules, precomputed once per secret.  ``hmac.new`` re-derives
# the inner/outer pads from the key on every call; cloning a prepared
# template with ``.copy()`` skips that work on the sign/verify hot paths.
# Weak keys let secrets (and their templates) be garbage collected.
_MAC_TEMPLATES: "weakref.WeakKeyDictionary[ServiceSecret, hmac.HMAC]" = \
    weakref.WeakKeyDictionary()


def _mac_digest(secret: ServiceSecret, message: bytes) -> bytes:
    template = _MAC_TEMPLATES.get(secret)
    if template is None:
        template = hmac.new(secret.key, digestmod=hashlib.sha256)
        _MAC_TEMPLATES[secret] = template
    mac = template.copy()
    mac.update(message)
    return mac.digest()


def sign_fields(secret: ServiceSecret, principal_id: str,
                fields: Sequence[FieldValue]) -> bytes:
    """Compute ``F(principal_id, fields, SECRET)`` as in Fig. 4.

    ``principal_id`` is an argument to the MAC but is *not* itself one of the
    protected fields — exactly as the paper describes ("Although not visible
    as a parameter field in the RMC, a principal id is an argument to the
    encryption function that generates the signature").
    """
    return _mac_digest(secret, _message(principal_id, fields))


def verify_fields(secret: ServiceSecret, principal_id: str,
                  fields: Sequence[FieldValue], signature: bytes) -> bool:
    """Constant-time verification of a field signature."""
    expected = sign_fields(secret, principal_id, fields)
    return hmac.compare_digest(expected, signature)
