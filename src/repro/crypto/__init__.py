"""Cryptographic substrate for OASIS certificates (paper Sect. 4.1).

The paper's certificate design (Fig. 4) signs the protected fields of a
certificate together with a *principal id* and a *service secret*:

    F(principal_id, protected RMC fields, SECRET) = signature

:mod:`repro.crypto.hmac_sig` provides that construction (HMAC-SHA256 over a
canonical field encoding).  :mod:`repro.crypto.rsa` is a from-scratch RSA
implementation (Miller-Rabin key generation, PKCS#1-v1.5-shaped padding
omitted in favour of hash-then-encrypt suitable for the simulation) used for
the public-key integration of Sect. 4.1: session keys bound into RMC
signatures and the ISO/9798 challenge-response protocol in
:mod:`repro.crypto.challenge`.
"""

from .hmac_sig import (
    ServiceSecret,
    sign_fields,
    verify_fields,
    canonical_encode,
)
from .keys import KeyPair, generate_keypair
from .rsa import (
    RSAPublicKey,
    RSAPrivateKey,
    rsa_encrypt_int,
    rsa_decrypt_int,
    rsa_encrypt_bytes,
    rsa_decrypt_bytes,
)
from .nonce import NonceFactory, NonceRegistry
from .challenge import ChallengeResponseServer, ChallengeResponseClient
from .signing import rsa_sign, rsa_verify
from .envelope import EnvelopeError, SealedMessage, open_sealed, seal

__all__ = [
    "ServiceSecret",
    "sign_fields",
    "verify_fields",
    "canonical_encode",
    "KeyPair",
    "generate_keypair",
    "RSAPublicKey",
    "RSAPrivateKey",
    "rsa_encrypt_int",
    "rsa_decrypt_int",
    "rsa_encrypt_bytes",
    "rsa_decrypt_bytes",
    "NonceFactory",
    "NonceRegistry",
    "ChallengeResponseServer",
    "ChallengeResponseClient",
    "rsa_sign",
    "rsa_verify",
    "EnvelopeError",
    "SealedMessage",
    "open_sealed",
    "seal",
]
