"""Sealed message envelopes for sensitive call/return data (Sect. 4.1).

"If any visibility of data and certificates 'on the wire' is unacceptable
to an application ... then encrypted communication must be used.
Sensitive data might be encrypted selectively within a trusted domain.
Data sent to a service can be encrypted with the service's public key and
the public key of the caller can be included for encrypting the reply."

:func:`seal` implements exactly that construction: hybrid encryption (a
fresh symmetric key encrypted under the recipient's RSA public key; the
payload under the symmetric keystream) with the caller's public key riding
along in the clear for the reply.  :func:`open_sealed` inverts it and
returns both payload and reply key.

Integrity: the symmetric layer appends an HMAC over the ciphertext keyed
by the session key, so tampering is detected before decryption results are
trusted.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Optional, Tuple

from .challenge import symmetric_transform
from .rsa import RSAPrivateKey, RSAPublicKey, rsa_decrypt_bytes, rsa_encrypt_bytes

__all__ = ["SealedMessage", "seal", "open_sealed", "EnvelopeError"]

_MAC_SIZE = 32


class EnvelopeError(ValueError):
    """A sealed message failed integrity or structural checks."""


@dataclass(frozen=True)
class SealedMessage:
    """A hybrid-encrypted message.

    ``encrypted_key`` — the fresh symmetric key under the recipient's RSA
    key; ``ciphertext`` — payload under the symmetric keystream, with an
    HMAC-SHA256 trailer; ``reply_key`` — optionally, the caller's public
    key for encrypting the reply (travels in the clear, as in the paper).
    """

    encrypted_key: bytes
    ciphertext: bytes
    reply_key: Optional[RSAPublicKey] = None


def seal(recipient: RSAPublicKey, payload: bytes,
         reply_key: Optional[RSAPublicKey] = None) -> SealedMessage:
    """Encrypt ``payload`` for ``recipient``."""
    session_key = secrets.token_bytes(32)
    body = symmetric_transform(session_key, payload)
    mac = hmac.new(session_key, body, hashlib.sha256).digest()
    return SealedMessage(
        encrypted_key=rsa_encrypt_bytes(recipient, session_key),
        ciphertext=body + mac,
        reply_key=reply_key)


def open_sealed(private: RSAPrivateKey, message: SealedMessage
                ) -> Tuple[bytes, Optional[RSAPublicKey]]:
    """Decrypt a sealed message; returns ``(payload, reply_key)``.

    Raises :class:`EnvelopeError` on tampering or malformed input.
    """
    try:
        session_key = rsa_decrypt_bytes(private, message.encrypted_key)
    except ValueError as error:
        raise EnvelopeError(f"cannot recover session key: {error}") \
            from error
    if len(session_key) != 32:
        raise EnvelopeError("recovered session key has wrong size "
                            "(wrong recipient key?)")
    if len(message.ciphertext) < _MAC_SIZE:
        raise EnvelopeError("ciphertext too short")
    body = message.ciphertext[:-_MAC_SIZE]
    mac = message.ciphertext[-_MAC_SIZE:]
    expected = hmac.new(session_key, body, hashlib.sha256).digest()
    if not hmac.compare_digest(mac, expected):
        raise EnvelopeError("integrity check failed (tampered ciphertext)")
    return symmetric_transform(session_key, body), message.reply_key
