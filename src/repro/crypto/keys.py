"""Key pairs for principals and services.

A principal "can create a key-pair ... and the public key sent to the
service to be bound into the certificate" (Sect. 4.1).  :class:`KeyPair`
wraps the raw RSA keys with the convenience operations certificates and the
challenge-response protocol need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .rsa import (
    RSAPrivateKey,
    RSAPublicKey,
    generate_rsa_keypair,
    rsa_decrypt_bytes,
    rsa_encrypt_bytes,
)

__all__ = ["KeyPair", "generate_keypair"]


@dataclass(frozen=True)
class KeyPair:
    """An RSA key pair owned by a principal or service."""

    private: RSAPrivateKey = field(repr=False)

    @property
    def public(self) -> RSAPublicKey:
        return self.private.public

    def fingerprint(self) -> str:
        """Short identifier of the public key, suitable as a session key id."""
        return self.public.fingerprint()

    def decrypt(self, blob: bytes) -> bytes:
        return rsa_decrypt_bytes(self.private, blob)

    @staticmethod
    def encrypt_for(public: RSAPublicKey, data: bytes) -> bytes:
        return rsa_encrypt_bytes(public, data)


def generate_keypair(bits: int = 512) -> KeyPair:
    """Generate a fresh key pair (small modulus by default for test speed)."""
    return KeyPair(private=generate_rsa_keypair(bits))
