"""A from-scratch RSA implementation for the PKC integration of Sect. 4.1.

The paper integrates OASIS with public/private key cryptography: a public
key of the activator of an initial role is bound into RMC signatures as a
session key, and the issuing service verifies possession of the private key
with an ISO/9798-style challenge–response.  No external crypto library is
assumed, so this module implements textbook RSA:

* Miller–Rabin probabilistic primality testing,
* key generation with configurable modulus size (small by default — the
  reproduction's security arguments are structural, not about key length),
* raw modular-exponentiation encrypt/decrypt over integers, plus a
  chunked byte interface.

Textbook RSA without OAEP is malleable; that is acceptable here because the
protocol messages it protects (challenges, nonces) are random values checked
for exact equality, and because the point of the reproduction is the
*architecture* of Sect. 4.1, not resistance to modern cryptanalysis.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Tuple

__all__ = [
    "RSAPublicKey",
    "RSAPrivateKey",
    "generate_rsa_keypair",
    "is_probable_prime",
    "rsa_encrypt_int",
    "rsa_decrypt_int",
    "rsa_encrypt_bytes",
    "rsa_decrypt_bytes",
]

# Small primes used to cheaply reject candidates before Miller-Rabin.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def is_probable_prime(n: int, rounds: int = 24) -> bool:
    """Miller–Rabin primality test.

    Deterministically correct for the small primes table; probabilistic with
    error probability at most 4**-rounds otherwise.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n - 1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x == 1 or x == n - 1:
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int) -> int:
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = secrets.randbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # correct size, odd
        if is_probable_prime(candidate):
            return candidate


def _egcd(a: int, b: int) -> Tuple[int, int, int]:
    if b == 0:
        return a, 1, 0
    g, x, y = _egcd(b, a % b)
    return g, y, x - (a // b) * y


def _modinv(a: int, m: int) -> int:
    g, x, _ = _egcd(a % m, m)
    if g != 1:
        raise ValueError("no modular inverse")
    return x % m


@dataclass(frozen=True)
class RSAPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bit_length(self) -> int:
        return self.n.bit_length()

    def fingerprint(self) -> str:
        """A short stable identifier for binding the key into certificates."""
        import hashlib

        digest = hashlib.sha256(f"{self.n}:{self.e}".encode()).hexdigest()
        return digest[:16]


@dataclass(frozen=True)
class RSAPrivateKey:
    """RSA private key; keeps the public part alongside ``d``."""

    n: int
    e: int
    d: int

    @property
    def public(self) -> RSAPublicKey:
        return RSAPublicKey(self.n, self.e)


def generate_rsa_keypair(bits: int = 512) -> RSAPrivateKey:
    """Generate an RSA key pair with a modulus of roughly ``bits`` bits.

    512-bit keys keep the test suite fast; pass ``bits=2048`` for realistic
    sizes.  ``e`` is the conventional 65537, with regeneration on the rare
    gcd clash.
    """
    if bits < 64:
        raise ValueError("modulus must be at least 64 bits")
    e = 65537
    while True:
        p = _random_prime(bits // 2)
        q = _random_prime(bits - bits // 2)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        d = _modinv(e, phi)
        return RSAPrivateKey(n=n, e=e, d=d)


def rsa_encrypt_int(key: RSAPublicKey, message: int) -> int:
    """Raw RSA encryption of an integer ``0 <= message < n``."""
    if not 0 <= message < key.n:
        raise ValueError("message out of range for modulus")
    return pow(message, key.e, key.n)


def rsa_decrypt_int(key: RSAPrivateKey, ciphertext: int) -> int:
    """Raw RSA decryption of an integer ciphertext."""
    if not 0 <= ciphertext < key.n:
        raise ValueError("ciphertext out of range for modulus")
    return pow(ciphertext, key.d, key.n)


def _chunk_size(n: int) -> int:
    # Leave one byte of headroom so every chunk is < n.
    size = (n.bit_length() - 1) // 8
    if size < 1:
        raise ValueError("modulus too small to carry bytes")
    return size


def rsa_encrypt_bytes(key: RSAPublicKey, data: bytes) -> bytes:
    """Encrypt arbitrary bytes by chunking under the modulus.

    Output frames each encrypted chunk with a 4-byte big-endian length so
    decryption is unambiguous.  A leading 4-byte length of the plaintext
    allows exact reconstruction (chunk padding is implicit in int encoding).
    """
    chunk = _chunk_size(key.n)
    out = [len(data).to_bytes(4, "big")]
    for start in range(0, len(data), chunk):
        piece = data[start:start + chunk]
        value = int.from_bytes(b"\x01" + piece, "big")  # guard zero-stripping
        enc = rsa_encrypt_int(key, value)
        enc_bytes = enc.to_bytes((key.n.bit_length() + 7) // 8, "big")
        out.append(len(enc_bytes).to_bytes(4, "big"))
        out.append(enc_bytes)
    if len(data) == 0:
        pass  # header alone round-trips the empty string
    return b"".join(out)


def rsa_decrypt_bytes(key: RSAPrivateKey, blob: bytes) -> bytes:
    """Inverse of :func:`rsa_encrypt_bytes`."""
    if len(blob) < 4:
        raise ValueError("ciphertext too short")
    total = int.from_bytes(blob[:4], "big")
    pos = 4
    pieces = []
    while pos < len(blob):
        if pos + 4 > len(blob):
            raise ValueError("truncated ciphertext frame")
        frame_len = int.from_bytes(blob[pos:pos + 4], "big")
        pos += 4
        frame = blob[pos:pos + frame_len]
        if len(frame) != frame_len:
            raise ValueError("truncated ciphertext frame body")
        pos += frame_len
        value = rsa_decrypt_int(key, int.from_bytes(frame, "big"))
        raw = value.to_bytes((value.bit_length() + 7) // 8, "big")
        if not raw or raw[0] != 1:
            raise ValueError("corrupt chunk guard byte")
        pieces.append(raw[1:])
    data = b"".join(pieces)
    if len(data) != total:
        raise ValueError("plaintext length mismatch")
    return data
