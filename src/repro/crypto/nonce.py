"""Nonce generation and replay protection.

The ISO/9798 challenge-response of Sect. 4.1 uses "a random challenge ...
and a nonce".  :class:`NonceFactory` issues unpredictable nonces;
:class:`NonceRegistry` lets a verifier reject replayed nonces, with optional
expiry against a supplied clock so long-running services do not accumulate
state without bound.
"""

from __future__ import annotations

import secrets
from typing import Callable, Dict, Optional

__all__ = ["NonceFactory", "NonceRegistry"]


class NonceFactory:
    """Generates fixed-size random nonces."""

    def __init__(self, size: int = 16) -> None:
        if size < 8:
            raise ValueError("nonce size must be at least 8 bytes")
        self._size = size

    def new(self) -> bytes:
        return secrets.token_bytes(self._size)


class NonceRegistry:
    """Tracks seen nonces and rejects replays.

    ``clock`` is any zero-argument callable returning the current time as a
    float; a simulated clock (:class:`repro.net.sim.SimClock`) works as well
    as ``time.monotonic``.  When ``ttl`` is set, nonces older than ``ttl``
    are forgotten — a replay after expiry is treated as fresh, which is the
    standard trade-off when challenges themselves are short-lived.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 ttl: Optional[float] = None) -> None:
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive")
        if ttl is not None and clock is None:
            raise ValueError("ttl requires a clock")
        self._clock = clock
        self._ttl = ttl
        self._seen: Dict[bytes, float] = {}

    def __len__(self) -> int:
        return len(self._seen)

    def _expire(self) -> None:
        if self._ttl is None or self._clock is None:
            return
        now = self._clock()
        cutoff = now - self._ttl
        stale = [nonce for nonce, at in self._seen.items() if at <= cutoff]
        for nonce in stale:
            del self._seen[nonce]

    def check_and_register(self, nonce: bytes) -> bool:
        """Register ``nonce``; return False if it was already seen (replay)."""
        self._expire()
        if nonce in self._seen:
            return False
        self._seen[nonce] = self._clock() if self._clock else 0.0
        return True
