"""Pretty-printer: policy documents back to canonical text.

``parse_document(format_document(doc)) == doc`` — round-tripping is checked
by property-based tests, which makes the printer a useful oracle for the
parser as well as a deployment tool (normalising policies for diffing and
review, which the paper's policy-management thread [1] calls "essential to
maintain consistency as policies evolve").
"""

from __future__ import annotations

from typing import Iterable

from .ast import (
    AppointmentAtom,
    ArgVar,
    Argument,
    BodyAtom,
    ConstraintAtom,
    PolicyDocument,
    RoleAtom,
)

__all__ = ["format_document"]


def _format_arg(argument: Argument) -> str:
    if isinstance(argument, ArgVar):
        return argument.name
    value = argument.value
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def _format_args(arguments: Iterable[Argument]) -> str:
    return ", ".join(_format_arg(argument) for argument in arguments)


def _format_atom(atom: BodyAtom) -> str:
    star = "*" if atom.membership else ""
    if isinstance(atom, RoleAtom):
        prefix = (f"{atom.domain}/{atom.service}:" if atom.qualified else "")
        return f"{prefix}{atom.name}({_format_args(atom.arguments)}){star}"
    if isinstance(atom, AppointmentAtom):
        return (f"appointment {atom.issuer_domain}/{atom.issuer_service}:"
                f"{atom.name}({_format_args(atom.arguments)}){star}")
    assert isinstance(atom, ConstraintAtom)
    return f"where {atom.name}({_format_args(atom.arguments)}){star}"


def _format_rule(keyword: str, name: str, arguments: Iterable[Argument],
                 body: Iterable[BodyAtom]) -> str:
    head = f"{keyword} {name}({_format_args(arguments)})"
    atoms = list(body)
    if not atoms:
        return head
    lines = ",\n    ".join(_format_atom(atom) for atom in atoms)
    return f"{head} <-\n    {lines}"


def format_document(document: PolicyDocument) -> str:
    """Render a document as canonical policy text."""
    parts = [f"service {document.domain}/{document.service}", ""]
    for decl in document.roles:
        parts.append(f"role {decl.name}({', '.join(decl.parameters)})")
    if document.roles:
        parts.append("")
    for stmt in document.activations:
        parts.append(_format_rule("activate", stmt.head_name,
                                  stmt.head_arguments, stmt.body))
        parts.append("")
    for stmt in document.authorizations:
        parts.append(_format_rule("authorize", stmt.method,
                                  stmt.arguments, stmt.body))
        parts.append("")
    for stmt in document.appointments:
        parts.append(_format_rule("appoint", stmt.name,
                                  stmt.arguments, stmt.body))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
