"""The OASIS policy definition language (the paper's [1] thread).

``parse_policy(text, registry)`` turns policy text into an executable
:class:`~repro.core.policy.ServicePolicy`; ``format_document`` renders
parsed policy back to canonical text.
"""

from .ast import (
    ActivateStmt,
    AppointStmt,
    AppointmentAtom,
    ArgConst,
    ArgVar,
    AuthorizeStmt,
    ConstraintAtom,
    PolicyDocument,
    RoleAtom,
    RoleDecl,
    SourceSpan,
)
from .lexer import LexError, Token, tokenize
from .parser import ParseError, parse_document
from .compiler import UnresolvedConstraint, compile_document, parse_policy
from .printer import format_document
from .diagnostics import (
    CODES,
    CodeInfo,
    Diagnostic,
    render_json,
    render_sarif,
    render_text,
)
from .analysis import Finding, PolicyUniverse
from .loader import (
    PolicyUnit,
    discover_policy_files,
    load_policies,
    load_policy_file,
    load_unit,
    load_units,
)
from .passes import LintContext, run_passes
from .model_check import Endowment, GroundReachability, ReachabilityResult

__all__ = [
    "CODES",
    "CodeInfo",
    "Diagnostic",
    "Endowment",
    "Finding",
    "GroundReachability",
    "LintContext",
    "PolicyUniverse",
    "PolicyUnit",
    "ReachabilityResult",
    "SourceSpan",
    "UnresolvedConstraint",
    "discover_policy_files",
    "load_policies",
    "load_policy_file",
    "load_unit",
    "load_units",
    "render_json",
    "render_sarif",
    "render_text",
    "run_passes",
    "ActivateStmt",
    "AppointStmt",
    "AppointmentAtom",
    "ArgConst",
    "ArgVar",
    "AuthorizeStmt",
    "ConstraintAtom",
    "LexError",
    "ParseError",
    "PolicyDocument",
    "RoleAtom",
    "RoleDecl",
    "Token",
    "compile_document",
    "format_document",
    "parse_document",
    "parse_policy",
    "tokenize",
]
