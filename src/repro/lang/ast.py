"""Abstract syntax of the OASIS policy definition language.

The language gives the Horn-clause policies of Sect. 2 a concrete textual
form (the paper's companion work [1] translates pseudo-natural language
policy into first-order predicate calculus; this DSL is the executable
target of such a pipeline).  Example::

    service hospital/records

    role treating_doctor(doc, pat)

    activate treating_doctor(doc, pat) <-
        hospital/login:logged_in_user(doc)*,
        appointment hospital/admin:allocated(doc, pat)*,
        where registered(doc, pat)*

    authorize read_record(pat) <-
        treating_doctor(doc, pat),
        where not_excluded(pat, doc)

    appoint allocated(doc, pat) <-
        administrator(a)

Conventions:

* an unqualified role atom refers to a role of the policy's own service;
  ``domain/service:name(...)`` names a foreign role;
* ``appointment issuer:name(...)`` requires an appointment certificate;
* ``where name(...)`` invokes a named constraint from the deployment's
  :class:`~repro.core.constraints.ConstraintRegistry`;
* a trailing ``*`` marks the condition as part of the *membership rule*;
* lower-case identifiers in argument position are variables; quoted
  strings and numerals are constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..core.rules import SourceSpan

__all__ = [
    "SourceSpan",
    "ArgVar",
    "ArgConst",
    "Argument",
    "RoleAtom",
    "AppointmentAtom",
    "ConstraintAtom",
    "BodyAtom",
    "RoleDecl",
    "ActivateStmt",
    "AuthorizeStmt",
    "AppointStmt",
    "PolicyDocument",
]


@dataclass(frozen=True)
class ArgVar:
    """A variable argument, e.g. ``doc``."""

    name: str


@dataclass(frozen=True)
class ArgConst:
    """A constant argument: string, int or float literal."""

    value: Union[str, int, float]


Argument = Union[ArgVar, ArgConst]


@dataclass(frozen=True)
class RoleAtom:
    """A (possibly foreign) role condition in a rule body.

    ``domain``/``service`` are None for local roles.
    """

    name: str
    arguments: Tuple[Argument, ...]
    domain: Optional[str] = None
    service: Optional[str] = None
    membership: bool = False
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)

    @property
    def qualified(self) -> bool:
        return self.domain is not None


@dataclass(frozen=True)
class AppointmentAtom:
    """An appointment-certificate condition."""

    issuer_domain: str
    issuer_service: str
    name: str
    arguments: Tuple[Argument, ...]
    membership: bool = False
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)


@dataclass(frozen=True)
class ConstraintAtom:
    """A ``where <name>(args)`` condition resolved via the registry."""

    name: str
    arguments: Tuple[Argument, ...]
    membership: bool = False
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)


BodyAtom = Union[RoleAtom, AppointmentAtom, ConstraintAtom]


@dataclass(frozen=True)
class RoleDecl:
    """``role name(p1, ..., pn)`` — declares a local role and its arity."""

    name: str
    parameters: Tuple[str, ...]
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)


@dataclass(frozen=True)
class ActivateStmt:
    """``activate head <- body`` — an activation rule."""

    head_name: str
    head_arguments: Tuple[Argument, ...]
    body: Tuple[BodyAtom, ...]
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)


@dataclass(frozen=True)
class AuthorizeStmt:
    """``authorize method(args) <- body`` — an authorization rule."""

    method: str
    arguments: Tuple[Argument, ...]
    body: Tuple[BodyAtom, ...]
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)


@dataclass(frozen=True)
class AppointStmt:
    """``appoint name(args) <- body`` — an appointment rule."""

    name: str
    arguments: Tuple[Argument, ...]
    body: Tuple[BodyAtom, ...]
    span: Optional[SourceSpan] = field(default=None, compare=False,
                                       repr=False)


@dataclass(frozen=True)
class PolicyDocument:
    """A parsed policy file."""

    domain: str
    service: str
    roles: Tuple[RoleDecl, ...] = field(default=())
    activations: Tuple[ActivateStmt, ...] = field(default=())
    authorizations: Tuple[AuthorizeStmt, ...] = field(default=())
    appointments: Tuple[AppointStmt, ...] = field(default=())
