"""Tokenizer for the OASIS policy language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset({
    "service", "role", "activate", "authorize", "appoint",
    "appointment", "where",
})


class LexError(ValueError):
    """Raised on unrecognisable input, with line/column context.

    ``line``/``column`` are 1-based; ``bare_message`` is the message
    without the position prefix (for callers that render positions
    themselves, e.g. the caret excerpts of :mod:`repro.lang.diagnostics`).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        prefix = f"line {line}, column {column}: " if line else ""
        super().__init__(f"{prefix}{message}")
        self.bare_message = message
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str      # KEYWORD IDENT NUMBER STRING ARROW STAR LPAREN RPAREN
    #                COMMA COLON SLASH EOF
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.kind}({self.value!r})@{self.line}:{self.column}"


_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("ARROW", r"<-"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("NUMBER", r"-?\d+(?:\.\d+)?"),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_\-]*"),
    ("STAR", r"\*"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("COLON", r":"),
    ("SLASH", r"/"),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})"
                              for name, pattern in _TOKEN_SPEC))


def tokenize(text: str) -> List[Token]:
    """Tokenize a policy document; raises :class:`LexError` on bad input."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(text):
        match = _MASTER.match(text, position)
        if match is None:
            column = position - line_start + 1
            raise LexError(f"unexpected character {text[position]!r}",
                           line, column)
        kind = match.lastgroup
        value = match.group()
        column = position - line_start + 1
        position = match.end()
        if kind == "NEWLINE":
            line += 1
            line_start = position
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "IDENT" and value in KEYWORDS:
            kind = "KEYWORD"
        assert kind is not None
        tokens.append(Token(kind, value, line, column))
    tokens.append(Token("EOF", "", line, position - line_start + 1))
    return tokens
