"""Compile parsed policy documents into executable :class:`ServicePolicy`.

The compiler resolves:

* unqualified role atoms to the policy's own service, qualified ones to
  foreign services;
* argument variables to :class:`~repro.core.terms.Var`, constants to ground
  terms;
* ``where`` atoms through a :class:`~repro.core.constraints.ConstraintRegistry`
  supplied by the deployment.

It also re-checks what the parser cannot: local role atoms must refer to
declared roles with the right arity (foreign arities are the foreign
service's business — OASIS has no global schema, so they are checked at
presentation time by unification).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from dataclasses import dataclass

from ..core.constraints import ConstraintRegistry, EnvironmentalConstraint
from ..core.exceptions import PolicyError
from ..core.policy import ServicePolicy
from ..core.rules import (
    ActivationRule,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    Condition,
    ConstraintCondition,
    PrerequisiteRole,
    SourceSpan,
)
from ..core.terms import Term, Var
from ..core.types import RoleName, RoleTemplate, ServiceId
from .ast import (
    AppointmentAtom,
    ArgVar,
    Argument,
    BodyAtom,
    ConstraintAtom,
    PolicyDocument,
    RoleAtom,
)
from .parser import parse_document

__all__ = ["compile_document", "parse_policy", "UnresolvedConstraint"]


@dataclass(frozen=True)
class UnresolvedConstraint(EnvironmentalConstraint):
    """Placeholder for a named constraint with no registered factory.

    Produced only when compiling with ``allow_unresolved=True`` — the mode
    used by analysis tooling (:mod:`repro.lang.analysis`) that inspects
    policy structure without executing it.  Evaluation fails closed.
    """

    name: str
    terms: Tuple[Term, ...]

    def evaluate(self, subst, context) -> bool:
        raise PolicyError(
            f"constraint {self.name!r} was compiled unresolved and cannot "
            f"be evaluated; register it in a ConstraintRegistry")

    def free_variables(self):
        from ..core.terms import variables_in

        return frozenset(v for term in self.terms
                         for v in variables_in(term))

    def __repr__(self) -> str:
        return f"UnresolvedConstraint({self.name})"


def _positioned(error: PolicyError,
                span: Optional[SourceSpan]) -> PolicyError:
    """Tag a compile error with the source position of the offending node
    (message unchanged; tooling reads ``error.line``/``error.column``)."""
    error.line = span.line if span is not None else 0
    error.column = span.column if span is not None else 0
    return error


def _term(argument: Argument) -> Term:
    if isinstance(argument, ArgVar):
        return Var(argument.name)
    return argument.value


def _terms(arguments: Iterable[Argument]) -> Tuple[Term, ...]:
    return tuple(_term(argument) for argument in arguments)


class _Compiler:
    def __init__(self, document: PolicyDocument,
                 registry: Optional[ConstraintRegistry],
                 allow_unresolved: bool = False) -> None:
        self.document = document
        self.registry = registry
        self.allow_unresolved = allow_unresolved
        self.service = ServiceId(document.domain, document.service)
        self.policy = ServicePolicy(self.service)

    def compile(self) -> ServicePolicy:
        for decl in self.document.roles:
            self.policy.define_role(decl.name, len(decl.parameters))
        for stmt in self.document.activations:
            self._check_local_head(stmt.head_name, len(stmt.head_arguments),
                                   stmt.span)
            rule = ActivationRule(
                RoleTemplate(RoleName(self.service, stmt.head_name),
                             _terms(stmt.head_arguments)),
                self._body(stmt.body), origin=stmt.span)
            self.policy.add_activation_rule(rule)
        for stmt in self.document.authorizations:
            self.policy.add_authorization_rule(AuthorizationRule(
                stmt.method, _terms(stmt.arguments), self._body(stmt.body),
                origin=stmt.span))
        for stmt in self.document.appointments:
            self.policy.add_appointment_rule(AppointmentRule(
                stmt.name, _terms(stmt.arguments), self._body(stmt.body),
                origin=stmt.span))
        return self.policy

    def _check_local_head(self, name: str, arity: int,
                          span: Optional[SourceSpan]) -> None:
        if not self.policy.defines_role(name):
            raise _positioned(PolicyError(
                f"activate targets undeclared role {name!r}; add a "
                f"'role {name}(...)' declaration"), span)
        declared = self.policy.role_arity(name)
        if declared != arity:
            raise _positioned(PolicyError(
                f"activate {name!r} has {arity} arguments, role declared "
                f"with arity {declared}"), span)

    def _body(self, atoms: Tuple[BodyAtom, ...]) -> Tuple[Condition, ...]:
        return tuple(self._condition(atom) for atom in atoms)

    def _condition(self, atom: BodyAtom) -> Condition:
        if isinstance(atom, RoleAtom):
            return self._role_condition(atom)
        if isinstance(atom, AppointmentAtom):
            return AppointmentCondition(
                issuer=ServiceId(atom.issuer_domain, atom.issuer_service),
                name=atom.name, parameters=_terms(atom.arguments),
                membership=atom.membership, origin=atom.span)
        assert isinstance(atom, ConstraintAtom)
        if self.registry is not None and atom.name in self.registry:
            constraint = self.registry.build(atom.name,
                                             *_terms(atom.arguments))
        elif self.allow_unresolved:
            constraint = UnresolvedConstraint(atom.name,
                                              _terms(atom.arguments))
        elif self.registry is None:
            raise _positioned(PolicyError(
                f"policy uses constraint {atom.name!r} but no constraint "
                f"registry was supplied"), atom.span)
        else:
            constraint = self.registry.build(atom.name,
                                             *_terms(atom.arguments))
        return ConstraintCondition(constraint, membership=atom.membership,
                                   origin=atom.span)

    def _role_condition(self, atom: RoleAtom) -> PrerequisiteRole:
        if atom.qualified:
            assert atom.domain is not None and atom.service is not None
            role_name = RoleName(ServiceId(atom.domain, atom.service),
                                 atom.name)
        else:
            if not self.policy.defines_role(atom.name):
                raise _positioned(PolicyError(
                    f"rule body uses undeclared local role {atom.name!r} "
                    f"(qualify it as domain/service:{atom.name} if it is "
                    f"foreign)"), atom.span)
            declared = self.policy.role_arity(atom.name)
            if declared != len(atom.arguments):
                raise _positioned(PolicyError(
                    f"role {atom.name!r} used with {len(atom.arguments)} "
                    f"arguments, declared with arity {declared}"), atom.span)
            role_name = RoleName(self.service, atom.name)
        return PrerequisiteRole(
            RoleTemplate(role_name, _terms(atom.arguments)),
            membership=atom.membership, origin=atom.span)


def compile_document(document: PolicyDocument,
                     registry: Optional[ConstraintRegistry] = None,
                     allow_unresolved: bool = False) -> ServicePolicy:
    """Compile a parsed document into a :class:`ServicePolicy`.

    With ``allow_unresolved=True``, ``where`` atoms whose names are not in
    the registry compile to inert :class:`UnresolvedConstraint` placeholders
    — for analysis tooling only; such policies must not be deployed.
    """
    return _Compiler(document, registry, allow_unresolved).compile()


def parse_policy(text: str,
                 registry: Optional[ConstraintRegistry] = None,
                 allow_unresolved: bool = False) -> ServicePolicy:
    """Parse and compile policy text in one step."""
    return compile_document(parse_document(text), registry,
                            allow_unresolved)
