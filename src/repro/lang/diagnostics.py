"""Diagnostics engine for policy static analysis.

The paper's policy-management thread ([1]) calls consistent deployment of
evolving cross-service policy "essential ... for any large-scale
deployment"; OASIS has no central role administration, so the deployment
pipeline is where consistency must be enforced.  This module gives the
analysis passes (:mod:`repro.lang.passes`) the machinery a CI gate needs:

* stable diagnostic codes (``OAS001``...) with default severities, so
  pipelines can select/ignore/baseline findings without string-matching
  messages;
* source spans (:class:`~repro.core.rules.SourceSpan`) threaded from the
  lexer through the compiler, so every finding points at the policy text
  a reviewer edits;
* inline suppression via ``# oasis: ignore[OASxxx]`` pragmas;
* pluggable reporters — human text with caret excerpts, JSON, and SARIF
  2.1.0 for code-scanning upload.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..core.rules import SourceSpan

__all__ = [
    "CodeInfo",
    "CODES",
    "CODES_BY_NAME",
    "Diagnostic",
    "RelatedLocation",
    "SEVERITY_ORDER",
    "collect_suppressions",
    "diagnostic_payload",
    "filter_diagnostics",
    "is_suppressed",
    "render_excerpt",
    "render_json",
    "render_sarif",
    "render_text",
]

SEVERITY_ORDER = {"error": 0, "warning": 1, "info": 2}


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry for one diagnostic code."""

    code: str        # "OAS001"
    name: str        # kebab-case slug, e.g. "range-restriction"
    severity: str    # default severity: "error" | "warning" | "info"
    summary: str     # one-line description for reporters / docs


_CODE_TABLE: Tuple[CodeInfo, ...] = (
    CodeInfo("OAS000", "parse-error", "error",
             "the policy file could not be parsed or compiled"),
    CodeInfo("OAS001", "range-restriction", "warning",
             "a head variable is not bound by any credential condition in "
             "the rule body"),
    CodeInfo("OAS002", "unknown-role", "error",
             "a prerequisite role is not defined by the service it names"),
    CodeInfo("OAS003", "unissuable-appointment", "error",
             "no appointment rule of the named issuer can issue the "
             "required certificate"),
    CodeInfo("OAS004", "unreachable-role", "error",
             "no combination of reachable roles and issuable appointments "
             "satisfies any activation rule for the role"),
    CodeInfo("OAS005", "prerequisite-cycle", "error",
             "mutually prerequisite roles can never be activated"),
    CodeInfo("OAS006", "passive-dependency", "warning",
             "a credential condition outside the membership rule survives "
             "revocation of that credential"),
    CodeInfo("OAS007", "revocation-gap", "warning",
             "a membership prerequisite itself holds a credential only "
             "passively, so revocation does not cascade through it"),
    CodeInfo("OAS008", "duplicate-rule", "warning",
             "a rule is identical to an earlier rule for the same target"),
    CodeInfo("OAS009", "shadowed-rule", "warning",
             "a rule's conditions are a strict superset of another rule "
             "for the same target, so it can never grant anything new"),
    CodeInfo("OAS010", "arity-mismatch", "error",
             "a cross-service reference uses a role or appointment with "
             "the wrong number of parameters"),
    CodeInfo("OAS011", "type-mismatch", "warning",
             "a role or appointment parameter is used with conflicting "
             "constant types across rules"),
    CodeInfo("OAS012", "privilege-less-role", "info",
             "the role gates no method, appointment or other role"),
    # OAS1xx: whole-universe verification (repro.lang.verify) — properties
    # of the cross-service privilege-flow fixpoint, not of single rules.
    CodeInfo("OAS100", "property-refuted", "error",
             "a verification property stated over the policy universe "
             "does not hold"),
    CodeInfo("OAS101", "privilege-escalation", "error",
             "a principal class reaches a privilege no direct rule grants "
             "it, via an appointment chain crossing services"),
    CodeInfo("OAS102", "revocation-unsound", "warning",
             "a credential edge on a derivation path to a privilege is "
             "not covered by a membership condition, so revocation does "
             "not provably collapse the path"),
    CodeInfo("OAS103", "delegation-depth", "warning",
             "a privilege requires more delegation (appointment) steps "
             "than the stated bound allows"),
    CodeInfo("OAS104", "revocation-survivor", "info",
             "a privilege remains reachable after the assumed revocation, "
             "through passive conditions on the revoked credential"),
)

CODES: Dict[str, CodeInfo] = {info.code: info for info in _CODE_TABLE}
CODES_BY_NAME: Dict[str, CodeInfo] = {info.name: info
                                      for info in _CODE_TABLE}


@dataclass(frozen=True)
class RelatedLocation:
    """A secondary source location attached to a finding — e.g. one rule
    edge of a witness derivation tree."""

    message: str
    file: Optional[str] = None
    span: Optional[SourceSpan] = None


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding, anchored to policy source."""

    code: str                               # "OASxxx"
    message: str
    subject: str = ""                       # role / rule / service concerned
    severity: str = ""                      # defaults to the code's severity
    file: Optional[str] = None
    span: Optional[SourceSpan] = None
    notes: str = ""                         # multi-line detail (witness tree)
    related: Tuple[RelatedLocation, ...] = ()

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if not self.severity:
            object.__setattr__(self, "severity", CODES[self.code].severity)
        elif self.severity not in SEVERITY_ORDER:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def name(self) -> str:
        """The code's kebab-case slug (the legacy ``Finding.code``)."""
        return CODES[self.code].name

    @property
    def location(self) -> str:
        parts = [self.file or "<policy>"]
        if self.span is not None:
            parts.append(f"{self.span.line}:{self.span.column}")
        return ":".join(parts)

    def __str__(self) -> str:
        subject = f" {self.subject}:" if self.subject else ""
        return (f"{self.location}: {self.severity}[{self.code}]"
                f"{subject} {self.message}")

    def sort_key(self) -> Tuple:
        span = self.span or SourceSpan(0, 0, 0, 0)
        return (SEVERITY_ORDER[self.severity], self.code, self.file or "",
                span.line, span.column, self.subject, self.message)


# -- inline suppression -------------------------------------------------------

_PRAGMA = re.compile(
    r"#\s*oasis:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s-]*)\])?")


def collect_suppressions(text: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> codes suppressed there.

    ``# oasis: ignore[OAS006]`` at the end of a line suppresses the listed
    codes for findings on that line; with no bracket it suppresses every
    code.  A pragma on a comment-only line applies to the *next* line
    (matching the usual linter idiom for statements too long to annotate
    in place).  The empty frozenset means "suppress everything".
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        listed = match.group("codes")
        if listed is None:
            codes: FrozenSet[str] = frozenset()
        else:
            codes = frozenset(code.strip().upper()
                              for code in listed.split(",") if code.strip())
        target = lineno + 1 if line.strip().startswith("#") else lineno
        suppressions[target] = suppressions.get(target, frozenset()) | codes
        if not codes:
            suppressions[target] = frozenset()
    return suppressions


def is_suppressed(diagnostic: Diagnostic,
                  suppressions: Mapping[int, FrozenSet[str]]) -> bool:
    if diagnostic.span is None:
        return False
    codes = suppressions.get(diagnostic.span.line)
    if codes is None:
        return False
    return not codes or diagnostic.code in codes


def filter_diagnostics(diagnostics: Iterable[Diagnostic],
                       sources: Mapping[str, str],
                       select: Optional[Iterable[str]] = None,
                       ignore: Optional[Iterable[str]] = None,
                       ) -> List[Diagnostic]:
    """Apply inline suppressions and ``--select``/``--ignore`` filters.

    ``sources`` maps file path -> policy text (for pragma scanning);
    ``select``/``ignore`` take codes (``OAS006``) or slugs
    (``passive-dependency``), case-insensitively.
    """
    selected = _normalise_codes(select)
    ignored = _normalise_codes(ignore) or frozenset()
    by_file: Dict[str, Dict[int, FrozenSet[str]]] = {
        path: collect_suppressions(text) for path, text in sources.items()}
    kept = []
    for diagnostic in diagnostics:
        if selected is not None and diagnostic.code not in selected:
            continue
        if diagnostic.code in ignored:
            continue
        suppressions = by_file.get(diagnostic.file or "", {})
        if is_suppressed(diagnostic, suppressions):
            continue
        kept.append(diagnostic)
    return sorted(kept, key=Diagnostic.sort_key)


def _normalise_codes(codes: Optional[Iterable[str]]
                     ) -> Optional[FrozenSet[str]]:
    if codes is None:
        return None
    result = set()
    for raw in codes:
        for item in str(raw).split(","):
            item = item.strip()
            if not item:
                continue
            if item.upper() in CODES:
                result.add(item.upper())
            elif item.lower() in CODES_BY_NAME:
                result.add(CODES_BY_NAME[item.lower()].code)
            else:
                raise ValueError(f"unknown diagnostic code {item!r}")
    return frozenset(result) if result else None


# -- reporters ---------------------------------------------------------------

def render_excerpt(text: str, line: int, column: int,
                   end_line: Optional[int] = None,
                   end_column: Optional[int] = None,
                   indent: str = "    ") -> str:
    """The offending source line with a caret (or underline) beneath it."""
    lines = text.splitlines()
    if not 1 <= line <= len(lines):
        return ""
    source_line = lines[line - 1].replace("\t", " ")
    column = max(1, min(column, len(source_line) + 1))
    width = 1
    if end_column is not None and (end_line is None or end_line == line):
        width = max(1, min(end_column, len(source_line) + 1) - column)
    return (f"{indent}{source_line}\n"
            f"{indent}{' ' * (column - 1)}{'^' * width}")


def render_text(diagnostics: Iterable[Diagnostic],
                sources: Optional[Mapping[str, str]] = None) -> str:
    """Human-readable report: one header line per finding, plus a caret
    excerpt when the finding has a span and its source is available."""
    sources = sources or {}
    blocks = []
    for diagnostic in diagnostics:
        block = str(diagnostic)
        text = sources.get(diagnostic.file or "")
        if text and diagnostic.span is not None:
            span = diagnostic.span
            excerpt = render_excerpt(text, span.line, span.column,
                                     span.end_line, span.end_column)
            if excerpt:
                block += "\n" + excerpt
        if diagnostic.notes:
            block += "\n" + "\n".join(
                f"    | {line}" for line in diagnostic.notes.splitlines())
        blocks.append(block)
    return "\n".join(blocks)


def diagnostic_payload(diagnostic: Diagnostic) -> Dict[str, object]:
    """The JSON-reporter entry for one diagnostic."""
    entry: Dict[str, object] = {
        "code": diagnostic.code,
        "name": diagnostic.name,
        "severity": diagnostic.severity,
        "subject": diagnostic.subject,
        "message": diagnostic.message,
        "file": diagnostic.file,
    }
    if diagnostic.span is not None:
        entry["line"] = diagnostic.span.line
        entry["column"] = diagnostic.span.column
        entry["end_line"] = diagnostic.span.end_line
        entry["end_column"] = diagnostic.span.end_column
    if diagnostic.notes:
        entry["notes"] = diagnostic.notes
    if diagnostic.related:
        entry["related"] = [{
            "message": rel.message,
            "file": rel.file,
            "line": rel.span.line if rel.span else None,
            "column": rel.span.column if rel.span else None,
        } for rel in diagnostic.related]
    return entry


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """Machine-readable JSON: ``{"version": 1, "diagnostics": [...]}``."""
    entries = [diagnostic_payload(d) for d in diagnostics]
    return json.dumps({"version": 1, "diagnostics": entries}, indent=2)


_SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                     "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _sarif_region(span: SourceSpan) -> Dict[str, int]:
    # SARIF 2.1.0 requires line/column properties >= 1; parse errors can
    # carry column 0 ("unknown"), which must be clamped, not emitted.
    start_line = max(1, span.line)
    start_column = max(1, span.column)
    return {
        "startLine": start_line,
        "startColumn": start_column,
        "endLine": max(start_line, span.end_line),
        "endColumn": max(1, span.end_column),
    }


def _sarif_location(file: Optional[str], span: Optional[SourceSpan]
                    ) -> Dict[str, object]:
    location: Dict[str, object] = {
        "artifactLocation": {"uri": file or "<policy>"}}
    if span is not None:
        location["region"] = _sarif_region(span)
    return location


def render_sarif(diagnostics: Iterable[Diagnostic],
                 tool_version: str = "1.0.0",
                 tool_name: str = "oasis-policy-lint") -> str:
    """A SARIF 2.1.0 log, suitable for GitHub code-scanning upload."""
    rule_order = [info.code for info in _CODE_TABLE]
    rules = [{
        "id": info.code,
        "name": _pascal(info.name),
        "shortDescription": {"text": info.summary},
        "defaultConfiguration": {"level": _SARIF_LEVELS[info.severity]},
    } for info in _CODE_TABLE]
    results = []
    for diagnostic in diagnostics:
        text = (f"{diagnostic.subject}: " if diagnostic.subject
                else "") + diagnostic.message
        if diagnostic.notes:
            text += "\n" + diagnostic.notes
        result: Dict[str, object] = {
            "ruleId": diagnostic.code,
            "ruleIndex": rule_order.index(diagnostic.code),
            "level": _SARIF_LEVELS[diagnostic.severity],
            "message": {"text": text},
        }
        if diagnostic.file is not None:
            result["locations"] = [{
                "physicalLocation": _sarif_location(diagnostic.file,
                                                    diagnostic.span)}]
        if diagnostic.related:
            result["relatedLocations"] = [{
                "physicalLocation": _sarif_location(rel.file, rel.span),
                "message": {"text": rel.message},
            } for rel in diagnostic.related]
        results.append(result)
    log = {
        "$schema": _SARIF_SCHEMA_URI,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "version": tool_version,
                "informationUri":
                    "https://example.org/oasis-repro/policy-analysis",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(log, indent=2)


def _pascal(slug: str) -> str:
    return "".join(part.capitalize() for part in slug.split("-"))
