"""Command-line policy tooling: ``python -m repro.lang.cli <command>``.

Commands:

* ``check <paths...>`` — parse, compile and validate every policy file,
  then run the cross-service lint of :mod:`repro.lang.analysis`.  Exit
  status 1 when any error-severity finding (or a parse failure) occurs.
* ``format <file>`` — print the canonical pretty-printed form (useful for
  normalising policies before review/diff).
* ``graph <paths...>`` — print the cross-service role dependency edges.
* ``reach <paths...>`` — print reachable and unreachable roles.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.exceptions import PolicyError
from .analysis import PolicyUniverse
from .loader import load_policies
from .parser import ParseError, parse_document
from .printer import format_document

__all__ = ["main"]


def _load(paths: List[str]) -> PolicyUniverse:
    _, universe = load_policies(paths, allow_unresolved=True)
    return universe


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        policies, universe = load_policies(args.paths,
                                           allow_unresolved=True)
    except (ParseError, PolicyError, ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    status = 0
    for service, policy in sorted(policies.items(), key=lambda kv: str(kv[0])):
        try:
            policy.validate()
            print(f"ok: {service} ({len(policy.role_names)} roles)")
        except PolicyError as error:
            print(f"error: {service}: {error}", file=sys.stderr)
            status = 1
    findings = universe.lint()
    for finding in findings:
        stream = sys.stderr if finding.severity == "error" else sys.stdout
        print(str(finding), file=stream)
        if finding.severity == "error":
            status = 1
    if not findings:
        print("lint: clean")
    return status


def _cmd_format(args: argparse.Namespace) -> int:
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            document = parse_document(handle.read())
    except (ParseError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    output = format_document(document)
    if args.write:
        with open(args.file, "w", encoding="utf-8") as handle:
            handle.write(output)
    else:
        sys.stdout.write(output)
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    universe = _load(args.paths)
    for prereq, dependent in universe.role_dependency_graph():
        print(f"{prereq} -> {dependent}")
    return 0


def _cmd_reach(args: argparse.Namespace) -> int:
    universe = _load(args.paths)
    reachable = universe.reachable_roles()
    for role in universe.all_roles():
        marker = "reachable  " if role in reachable else "UNREACHABLE"
        print(f"{marker}  {role}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lang.cli",
        description="OASIS policy tooling: check, format, graph, reach")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="validate and lint policy files")
    check.add_argument("paths", nargs="+")
    check.set_defaults(func=_cmd_check)

    fmt = sub.add_parser("format", help="canonical pretty-print")
    fmt.add_argument("file")
    fmt.add_argument("--write", action="store_true",
                     help="rewrite the file in place")
    fmt.set_defaults(func=_cmd_format)

    graph = sub.add_parser("graph", help="print role dependency edges")
    graph.add_argument("paths", nargs="+")
    graph.set_defaults(func=_cmd_graph)

    reach = sub.add_parser("reach", help="reachability report")
    reach.add_argument("paths", nargs="+")
    reach.set_defaults(func=_cmd_reach)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
