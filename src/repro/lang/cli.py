"""Command-line policy tooling: ``python -m repro.lang.cli <command>``.

Commands:

* ``lint <paths...>`` — run the full static-analysis framework
  (:mod:`repro.lang.passes`) and report diagnostics with stable
  ``OASxxx`` codes and source positions.  ``--format`` selects human
  text (caret excerpts), JSON, or SARIF 2.1.0 output; ``--select`` /
  ``--ignore`` filter by code; ``--strict`` makes warnings fail the
  build.  Exit status 1 on any error (or warning with ``--strict``).
* ``verify <paths...>`` — whole-universe symbolic verification
  (:mod:`repro.lang.verify`): compile every policy into one
  cross-service rule graph and check privilege-flow properties
  (``--property``, repeatable; defaults to ``no-escalation`` and
  ``revocation-sound``).  ``--assume-revoked REF`` re-checks the
  post-revocation universe; refuted properties are reported as OAS1xx
  diagnostics with witness derivation trees.

Exit status convention (lint/verify): 0 clean, 1 findings, 2 usage or
internal error.
* ``check <paths...>`` — parse, compile and validate every policy file,
  then lint.  Exit status 1 when any error-severity finding (or a parse
  failure) occurs; ``--strict`` extends that to warnings.
* ``format <file>`` — print the canonical pretty-printed form (useful for
  normalising policies before review/diff).
* ``graph <paths...>`` — print the cross-service role dependency edges.
* ``reach <paths...>`` — print reachable and unreachable roles.
* ``trace`` / ``metrics`` — observability demos (``repro.obs``): run a
  Fig. 5 revocation cascade under the tracing pipeline and print the
  causal trace tree / exported metric families.  Also reachable as
  ``python -m repro trace`` etc.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core.exceptions import PolicyError
from .analysis import PolicyUniverse
from .diagnostics import (
    Diagnostic,
    filter_diagnostics,
    render_excerpt,
    render_json,
    render_sarif,
    render_text,
)
from .loader import discover_policy_files, load_policies, load_unit
from .parser import ParseError, parse_document
from .passes import LintContext, run_passes
from .printer import format_document

__all__ = ["main"]


def _load(paths: List[str]) -> PolicyUniverse:
    _, universe = load_policies(paths, allow_unresolved=True)
    return universe


def _print_source_error(error: Exception) -> None:
    """Report a parse/compile failure with position and caret excerpt."""
    path = getattr(error, "path", None)
    line = getattr(error, "line", 0)
    column = getattr(error, "column", 0)
    message = getattr(error, "bare_message", None) or str(error)
    if path and line:
        print(f"{path}:{line}:{column}: error: {message}", file=sys.stderr)
    elif path:
        print(f"{path}: error: {message}", file=sys.stderr)
    else:
        print(f"error: {error}", file=sys.stderr)
        return
    if line:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                excerpt = render_excerpt(handle.read(), line, column)
        except OSError:
            excerpt = ""
        if excerpt:
            print(excerpt, file=sys.stderr)


def _cmd_check(args: argparse.Namespace) -> int:
    try:
        policies, universe = load_policies(args.paths,
                                           allow_unresolved=True)
    except (ParseError, PolicyError) as error:
        _print_source_error(error)
        return 1
    except (ValueError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    status = 0
    for service, policy in sorted(policies.items(), key=lambda kv: str(kv[0])):
        try:
            policy.validate()
            print(f"ok: {service} ({len(policy.role_names)} roles)")
        except PolicyError as error:
            print(f"error: {service}: {error}", file=sys.stderr)
            status = 1
    findings = universe.lint()
    for finding in findings:
        stream = sys.stderr if finding.severity == "error" else sys.stdout
        print(str(finding), file=stream)
        if finding.severity == "error":
            status = 1
        elif finding.severity == "warning" and args.strict:
            status = 1
    if not findings:
        print("lint: clean")
    return status


class _UsageError(Exception):
    """A CLI usage problem already reported to stderr (exit status 2)."""


def _load_lint_units(paths: List[str]):
    """Discover, parse and deduplicate policy files for lint/verify.

    Returns ``(files, units, diagnostics)`` where ``diagnostics`` holds
    the OAS000 findings for unparsable or duplicated files.  Raises
    :class:`_UsageError` (after printing) for empty path sets and I/O
    failures.
    """
    files: List[str] = []
    for path in paths:
        files.extend(discover_policy_files(path))
    if not files:
        print("error: no .oasis policy files found", file=sys.stderr)
        raise _UsageError

    units = []
    diagnostics: List[Diagnostic] = []
    seen_services = {}
    for path in files:
        try:
            unit = load_unit(path, allow_unresolved=True)
        except (ParseError, PolicyError) as error:
            diagnostics.append(_parse_diagnostic(path, error))
            continue
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            raise _UsageError from error
        if unit.service in seen_services:
            diagnostics.append(Diagnostic(
                "OAS000",
                f"service {unit.service} already defined by "
                f"{seen_services[unit.service]}",
                subject=str(unit.service), file=path))
            continue
        seen_services[unit.service] = path
        units.append(unit)
    return files, units, diagnostics


def _report(diagnostics: List[Diagnostic], context: LintContext,
            args: argparse.Namespace, clean_message: str,
            tool_name: str) -> int:
    """Filter, render and turn diagnostics into an exit status."""
    try:
        diagnostics = filter_diagnostics(diagnostics, context.sources,
                                         select=args.select,
                                         ignore=args.ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(diagnostics))
    elif args.format == "sarif":
        print(render_sarif(diagnostics, tool_name=tool_name))
    else:
        report = render_text(diagnostics, context.sources)
        if report:
            print(report)
        else:
            print(clean_message)

    worst = {d.severity for d in diagnostics}
    if "error" in worst:
        return 1
    if "warning" in worst and args.strict:
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    try:
        files, units, diagnostics = _load_lint_units(args.paths)
    except _UsageError:
        return 2
    context = LintContext.from_units(units)
    diagnostics.extend(run_passes(context))
    return _report(diagnostics, context, args,
                   f"lint: clean ({len(files)} file(s), "
                   f"{len(context.files)} service(s))",
                   tool_name="oasis-policy-lint")


def _cmd_verify(args: argparse.Namespace) -> int:
    from .verify import PropertyError, verify_universe

    try:
        files, units, diagnostics = _load_lint_units(args.paths)
    except _UsageError:
        return 2
    context = LintContext.from_units(units)
    try:
        report = verify_universe(
            context, args.property or (),
            assume_revoked=args.assume_revoked or (),
            max_delegation_depth=args.max_delegation_depth)
    except PropertyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    diagnostics.extend(report.diagnostics)
    clean = (f"verify: ok ({len(files)} file(s), "
             f"{len(report.graph.services)} service(s), "
             f"{len(report.properties)} propert"
             f"{'y' if len(report.properties) == 1 else 'ies'}, "
             f"{len(report.graph.atoms)} atoms, "
             f"{len(report.graph.edges)} rules, "
             f"{report.iterations} fixpoint iterations)")
    return _report(diagnostics, context, args, clean,
                   tool_name="oasis-policy-verify")


def _parse_diagnostic(path: str, error: Exception) -> Diagnostic:
    from ..core.rules import SourceSpan

    line = getattr(error, "line", 0)
    column = getattr(error, "column", 0)
    span = SourceSpan(line, column, line, column + 1) if line else None
    message = getattr(error, "bare_message", None) or str(error)
    return Diagnostic("OAS000", message, subject=path, file=path, span=span)


def _cmd_format(args: argparse.Namespace) -> int:
    try:
        with open(args.file, "r", encoding="utf-8") as handle:
            document = parse_document(handle.read())
    except ParseError as error:
        error.path = args.file
        _print_source_error(error)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    output = format_document(document)
    if args.write:
        with open(args.file, "w", encoding="utf-8") as handle:
            handle.write(output)
    else:
        sys.stdout.write(output)
    return 0


def _cmd_graph(args: argparse.Namespace) -> int:
    universe = _load(args.paths)
    for prereq, dependent in universe.role_dependency_graph():
        print(f"{prereq} -> {dependent}")
    return 0


def _cmd_reach(args: argparse.Namespace) -> int:
    universe = _load(args.paths)
    reachable = universe.reachable_roles()
    for role in universe.all_roles():
        marker = "reachable  " if role in reachable else "UNREACHABLE"
        print(f"{marker}  {role}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    # Lazy: repro.obs.cli builds runtime worlds; plain policy tooling
    # should not import the whole runtime stack.
    from ..obs.cli import cmd_trace
    return cmd_trace(args)


def _cmd_metrics(args: argparse.Namespace) -> int:
    from ..obs.cli import cmd_metrics
    return cmd_metrics(args)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lang.cli",
        description="OASIS policy tooling: lint, check, format, graph, "
                    "reach — plus observability demos (trace, metrics)")
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser(
        "lint", help="static analysis with OASxxx diagnostics")
    lint.add_argument("paths", nargs="+")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text", help="report format")
    lint.add_argument("--strict", action="store_true",
                      help="warnings also fail the build")
    lint.add_argument("--select", action="append", metavar="CODES",
                      help="only report these codes (comma-separated "
                           "OASxxx or slug names); repeatable")
    lint.add_argument("--ignore", action="append", metavar="CODES",
                      help="drop these codes; repeatable")
    lint.set_defaults(func=_cmd_lint)

    verify = sub.add_parser(
        "verify", help="whole-universe symbolic verification (OAS1xx)")
    verify.add_argument("paths", nargs="+")
    verify.add_argument("--property", action="append", metavar="PROP",
                        help="property to check: can-reach(CLASS, REF), "
                             "cannot-reach(CLASS, REF), no-escalation, "
                             "revocation-sound, delegation-depth<=K; "
                             "repeatable (default: no-escalation and "
                             "revocation-sound)")
    verify.add_argument("--assume-revoked", action="append", metavar="REF",
                        help="re-check reachability assuming this "
                             "credential (role/appointment reference) is "
                             "revoked; repeatable")
    verify.add_argument("--max-delegation-depth", type=int, metavar="K",
                        help="bound on appointment (delegation) steps to "
                             "any privilege")
    verify.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    verify.add_argument("--strict", action="store_true",
                        help="warnings also fail the build")
    verify.add_argument("--select", action="append", metavar="CODES",
                        help="only report these codes; repeatable")
    verify.add_argument("--ignore", action="append", metavar="CODES",
                        help="drop these codes; repeatable")
    verify.set_defaults(func=_cmd_verify)

    check = sub.add_parser("check", help="validate and lint policy files")
    check.add_argument("paths", nargs="+")
    check.add_argument("--strict", action="store_true",
                       help="warnings also fail the build")
    check.set_defaults(func=_cmd_check)

    fmt = sub.add_parser("format", help="canonical pretty-print")
    fmt.add_argument("file")
    fmt.add_argument("--write", action="store_true",
                     help="rewrite the file in place")
    fmt.set_defaults(func=_cmd_format)

    graph = sub.add_parser("graph", help="print role dependency edges")
    graph.add_argument("paths", nargs="+")
    graph.set_defaults(func=_cmd_graph)

    reach = sub.add_parser("reach", help="reachability report")
    reach.add_argument("paths", nargs="+")
    reach.set_defaults(func=_cmd_reach)

    trace = sub.add_parser(
        "trace", help="run a demo revocation cascade under the tracing "
                      "pipeline and print its causal trace tree")
    trace.add_argument("--depth", type=int, default=16,
                       help="cascade chain depth (default 16, as Fig. 5)")
    trace.add_argument("--format", choices=("text", "json"),
                       default="text", help="rendering")
    trace.add_argument("--naive-broker", action="store_true",
                       help="use the unindexed dispatch reference path")
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics", help="run demo scenarios and export the collected "
                        "metric families")
    metrics.add_argument("--depth", type=int, default=16,
                         help="cascade chain depth (default 16)")
    metrics.add_argument("--format", choices=("prometheus", "json"),
                         default="prometheus", help="export format")
    metrics.set_defaults(func=_cmd_metrics)

    # ``serve`` hosts services over TCP (repro.netd).  The subparser is
    # registered by the netd package; the import is local so the policy
    # tooling path stays importable without the runtime stack.
    from ..netd.cli import add_serve_parser
    add_serve_parser(sub)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as error:  # tool bug, not a finding: exit 2, not 1
        print(f"internal error: {type(error).__name__}: {error}",
              file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
