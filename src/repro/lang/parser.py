"""Recursive-descent parser for the OASIS policy language.

Grammar (EBNF)::

    document     := service_decl statement*
    service_decl := "service" IDENT "/" IDENT
    statement    := role_decl | activate | authorize | appoint
    role_decl    := "role" IDENT "(" [params] ")"
    activate     := "activate" atom_head "<-" body
    authorize    := "authorize" atom_head "<-" body
    appoint      := "appoint" atom_head "<-" body
    atom_head    := IDENT "(" [args] ")"
    body         := condition ("," condition)*
    condition    := (role_atom | appointment_atom | where_atom) ["*"]
    role_atom    := [IDENT "/" IDENT ":"] IDENT "(" [args] ")"
    appointment_atom := "appointment" IDENT "/" IDENT ":" IDENT "(" [args] ")"
    where_atom   := "where" IDENT "(" [args] ")"
    args         := arg ("," arg)*
    arg          := IDENT | NUMBER | STRING

An empty body is written as a rule with no ``<-`` part: ``activate
logged_in_user(uid)`` declares an unconditional (initial) rule whose
parameters are supplied at activation time.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.rules import SourceSpan
from .ast import (
    ActivateStmt,
    AppointStmt,
    AppointmentAtom,
    ArgConst,
    ArgVar,
    Argument,
    AuthorizeStmt,
    BodyAtom,
    ConstraintAtom,
    PolicyDocument,
    RoleAtom,
    RoleDecl,
)
from .lexer import LexError, Token, tokenize

__all__ = ["ParseError", "parse_document"]


class ParseError(ValueError):
    """Raised on a syntactically invalid policy document.

    Carries 1-based ``line``/``column`` (0 when unknown) so tooling can
    point at the offending source; ``bare_message`` omits the position
    prefix.  ``path`` is filled in by callers that know which file was
    being parsed (e.g. :mod:`repro.lang.loader`).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        prefix = ""
        if line:
            prefix = f"line {line}"
            if column:
                prefix += f", column {column}"
            prefix += ": "
        super().__init__(f"{prefix}{message}")
        self.bare_message = message
        self.line = line
        self.column = column
        self.path: Optional[str] = None


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._last = tokens[0] if tokens else None

    # -- token plumbing -----------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self._index += 1
        self._last = token
        return token

    def _expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.current
        if token.kind != kind or (value is not None and token.value != value):
            want = value or kind
            raise ParseError(f"expected {want}, found {token.value!r}",
                             token.line, token.column)
        return self._advance()

    def _at_keyword(self, word: str) -> bool:
        return self.current.kind == "KEYWORD" and self.current.value == word

    def _span_from(self, start: Token) -> SourceSpan:
        end = self._last if self._last is not None else start
        return SourceSpan(start.line, start.column,
                          end.line, end.column + len(end.value))

    # -- grammar ------------------------------------------------------------
    def parse(self) -> PolicyDocument:
        self._expect("KEYWORD", "service")
        domain = self._expect("IDENT").value
        self._expect("SLASH")
        service = self._expect("IDENT").value

        roles: List[RoleDecl] = []
        activations: List[ActivateStmt] = []
        authorizations: List[AuthorizeStmt] = []
        appointments: List[AppointStmt] = []

        while self.current.kind != "EOF":
            if self._at_keyword("role"):
                roles.append(self._parse_role_decl())
            elif self._at_keyword("activate"):
                activations.append(self._parse_activate())
            elif self._at_keyword("authorize"):
                authorizations.append(self._parse_authorize())
            elif self._at_keyword("appoint"):
                appointments.append(self._parse_appoint())
            else:
                token = self.current
                raise ParseError(
                    f"expected a statement keyword "
                    f"(role/activate/authorize/appoint), found "
                    f"{token.value!r}", token.line, token.column)
        return PolicyDocument(
            domain=domain, service=service, roles=tuple(roles),
            activations=tuple(activations),
            authorizations=tuple(authorizations),
            appointments=tuple(appointments))

    def _parse_role_decl(self) -> RoleDecl:
        start = self._expect("KEYWORD", "role")
        name_token = self._expect("IDENT")
        name = name_token.value
        self._expect("LPAREN")
        parameters: List[str] = []
        if self.current.kind != "RPAREN":
            parameters.append(self._expect("IDENT").value)
            while self.current.kind == "COMMA":
                self._advance()
                parameters.append(self._expect("IDENT").value)
        self._expect("RPAREN")
        if len(set(parameters)) != len(parameters):
            raise ParseError(f"role {name!r}: duplicate parameter names",
                             name_token.line, name_token.column)
        return RoleDecl(name=name, parameters=tuple(parameters),
                        span=self._span_from(start))

    def _parse_head(self) -> Tuple[str, Tuple[Argument, ...]]:
        name = self._expect("IDENT").value
        self._expect("LPAREN")
        arguments = self._parse_args()
        self._expect("RPAREN")
        return name, arguments

    def _parse_activate(self) -> ActivateStmt:
        start = self._expect("KEYWORD", "activate")
        name, arguments = self._parse_head()
        span = self._span_from(start)        # keyword through head ')'
        body = self._parse_optional_body()
        return ActivateStmt(head_name=name, head_arguments=arguments,
                            body=body, span=span)

    def _parse_authorize(self) -> AuthorizeStmt:
        start = self._expect("KEYWORD", "authorize")
        name, arguments = self._parse_head()
        span = self._span_from(start)
        body = self._parse_optional_body()
        return AuthorizeStmt(method=name, arguments=arguments, body=body,
                             span=span)

    def _parse_appoint(self) -> AppointStmt:
        start = self._expect("KEYWORD", "appoint")
        name, arguments = self._parse_head()
        span = self._span_from(start)
        body = self._parse_optional_body()
        return AppointStmt(name=name, arguments=arguments, body=body,
                           span=span)

    def _parse_optional_body(self) -> Tuple[BodyAtom, ...]:
        if self.current.kind != "ARROW":
            return ()
        self._advance()
        atoms = [self._parse_condition()]
        while self.current.kind == "COMMA":
            self._advance()
            atoms.append(self._parse_condition())
        return tuple(atoms)

    def _parse_condition(self) -> BodyAtom:
        from dataclasses import replace

        start = self.current
        if self._at_keyword("appointment"):
            atom = self._parse_appointment_atom()
        elif self._at_keyword("where"):
            atom = self._parse_where_atom()
        else:
            atom = self._parse_role_atom()
        if self.current.kind == "STAR":
            self._advance()
            atom = _with_membership(atom)
        return replace(atom, span=self._span_from(start))

    def _parse_appointment_atom(self) -> AppointmentAtom:
        self._expect("KEYWORD", "appointment")
        issuer_domain = self._expect("IDENT").value
        self._expect("SLASH")
        issuer_service = self._expect("IDENT").value
        self._expect("COLON")
        name = self._expect("IDENT").value
        self._expect("LPAREN")
        arguments = self._parse_args()
        self._expect("RPAREN")
        return AppointmentAtom(
            issuer_domain=issuer_domain, issuer_service=issuer_service,
            name=name, arguments=arguments)

    def _parse_where_atom(self) -> ConstraintAtom:
        self._expect("KEYWORD", "where")
        name = self._expect("IDENT").value
        self._expect("LPAREN")
        arguments = self._parse_args()
        self._expect("RPAREN")
        return ConstraintAtom(name=name, arguments=arguments)

    def _parse_role_atom(self) -> RoleAtom:
        first = self._expect("IDENT").value
        domain: Optional[str] = None
        service: Optional[str] = None
        name = first
        if self.current.kind == "SLASH":
            self._advance()
            service = self._expect("IDENT").value
            self._expect("COLON")
            name = self._expect("IDENT").value
            domain = first
        self._expect("LPAREN")
        arguments = self._parse_args()
        self._expect("RPAREN")
        return RoleAtom(name=name, arguments=arguments, domain=domain,
                        service=service)

    def _parse_args(self) -> Tuple[Argument, ...]:
        if self.current.kind == "RPAREN":
            return ()
        arguments = [self._parse_arg()]
        while self.current.kind == "COMMA":
            self._advance()
            arguments.append(self._parse_arg())
        return tuple(arguments)

    def _parse_arg(self) -> Argument:
        token = self.current
        if token.kind == "IDENT":
            self._advance()
            return ArgVar(token.value)
        if token.kind == "NUMBER":
            self._advance()
            if "." in token.value:
                return ArgConst(float(token.value))
            return ArgConst(int(token.value))
        if token.kind == "STRING":
            self._advance()
            raw = token.value[1:-1]
            return ArgConst(raw.replace('\\"', '"').replace("\\\\", "\\"))
        raise ParseError(
            f"expected an argument, found {token.value!r}",
            token.line, token.column)


def _with_membership(atom: BodyAtom) -> BodyAtom:
    from dataclasses import replace

    return replace(atom, membership=True)


def parse_document(text: str) -> PolicyDocument:
    """Parse policy text into a :class:`PolicyDocument`.

    Raises :class:`ParseError` (or :class:`~repro.lang.lexer.LexError`) on
    invalid input.
    """
    try:
        tokens = tokenize(text)
    except LexError as error:
        raise ParseError(error.bare_message, error.line,
                         error.column) from error
    return _Parser(tokens).parse()
