"""Ground model checking: exact reachability for a concrete principal.

The static analysis of :mod:`repro.lang.analysis` answers *schema-level*
questions ("could anyone ever reach role R?") by over-approximating.  This
module answers the *instance-level* questions the paper's examples turn
on — "given the credentials this principal actually holds, can they ever
read Joe Bloggs' record?" — exactly, by exhaustive exploration of the
ground state space the companion formal model ([17]) defines:

* the state is the set of ground roles the principal has activated;
* transitions are rule applications: a rule fires when its credential
  conditions unify with held RMCs/appointments and its environmental
  constraints hold in the supplied evaluation context;
* the state space is finite because parameters only flow from the finite
  endowment and the finite set of seeded initial activations.

Because constraints are evaluated against a *fixed* context, the verdict
is exact for that environment snapshot; pass ``ignore_constraints=True``
for the optimistic over-approximation instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from ..core.constraints import EvaluationContext
from ..core.credentials import (
    AppointmentCertificate,
    CredentialRef,
    RoleMembershipCertificate,
)
from ..core.engine import PresentedCredential, RuleEngine
from ..core.rules import ConstraintCondition
from ..core.terms import Term
from ..core.types import Role, RoleName, ServiceId
from .analysis import PolicyUniverse

__all__ = ["Endowment", "GroundReachability", "ReachabilityResult"]

_serial = [0]


def _fake_ref(service: ServiceId) -> CredentialRef:
    _serial[0] += 1
    return CredentialRef(service, 1_000_000 + _serial[0])


def _rmc_fact(role: Role) -> PresentedCredential:
    """A credential *fact* for the checker: unsigned, never validated."""
    certificate = RoleMembershipCertificate(
        issuer=role.service, role=role, ref=_fake_ref(role.service),
        issued_at=0.0)
    return PresentedCredential(certificate)


@dataclass(frozen=True)
class Endowment:
    """What the principal brings to the analysis.

    ``appointments`` — ground appointment facts ``(issuer, name, params)``
    the principal holds or could obtain;
    ``initial_activations`` — ground initial-role activations to seed the
    session (e.g. ``Role(login:logged_in_user, ("fred-smith",))``): the
    checker assumes these succeed (their own rules are still checked).
    """

    appointments: Tuple[Tuple[ServiceId, str, Tuple[Term, ...]], ...] = ()
    initial_activations: Tuple[Role, ...] = ()

    def credentials(self) -> List[PresentedCredential]:
        creds = []
        for issuer, name, params in self.appointments:
            certificate = AppointmentCertificate(
                issuer=issuer, name=name, parameters=tuple(params),
                ref=_fake_ref(issuer), issued_at=0.0)
            creds.append(PresentedCredential(certificate))
        return creds


@dataclass
class ReachabilityResult:
    """Everything the endowment can reach."""

    roles: Set[Role]
    iterations: int

    def holds(self, role: Role) -> bool:
        return role in self.roles

    def roles_named(self, role_name: RoleName) -> List[Role]:
        return sorted((role for role in self.roles
                       if role.role_name == role_name), key=str)


class GroundReachability:
    """Exact ground reachability over a policy universe."""

    def __init__(self, universe: PolicyUniverse,
                 context: Optional[EvaluationContext] = None,
                 ignore_constraints: bool = False) -> None:
        self.universe = universe
        self.context = context or EvaluationContext()
        self.ignore_constraints = ignore_constraints
        self._engine = RuleEngine(self.context)

    def _strip_constraints(self, rule):
        from dataclasses import replace

        kept = tuple(condition for condition in rule.conditions
                     if not isinstance(condition, ConstraintCondition))
        return replace(rule, conditions=kept)

    def explore(self, endowment: Endowment) -> ReachabilityResult:
        """Least fixpoint of rule application from the endowment."""
        held: Set[Role] = set()
        appointment_creds = endowment.credentials()

        # Seed: attempt each declared initial activation through its own
        # rules (so an impossible seed contributes nothing).
        seeds: Set[Role] = set()
        for role in endowment.initial_activations:
            service = role.role_name.service
            if service not in self.universe.services:
                continue
            policy = self.universe.policy(service)
            if not policy.defines_role(role.role_name.name):
                continue
            for rule in policy.activation_rules_for(role.role_name.name):
                candidate = rule if not self.ignore_constraints \
                    else self._strip_constraints(rule)
                matches = self._engine.enumerate_activations(
                    candidate, appointment_creds,
                    requested_parameters=list(role.parameters))
                if any(r == role for _, r in matches):
                    seeds.add(role)
                    break
        held |= seeds

        iterations = 0
        changed = True
        while changed:
            iterations += 1
            changed = False
            credentials = appointment_creds + [_rmc_fact(role)
                                               for role in held]
            for service in self.universe.services:
                policy = self.universe.policy(service)
                for name in policy.role_names:
                    for rule in policy.activation_rules_for(name):
                        candidate = rule if not self.ignore_constraints \
                            else self._strip_constraints(rule)
                        if candidate.is_initial and not rule.conditions:
                            # Unconditional initial roles need explicit
                            # seeding: their parameters are request-chosen.
                            continue
                        for _match, role in \
                                self._engine.enumerate_activations(
                                    candidate, credentials):
                            if role is not None and role not in held:
                                held.add(role)
                                changed = True
        return ReachabilityResult(roles=held, iterations=iterations)

    def can_reach(self, endowment: Endowment, target: Role) -> bool:
        """Can the endowment ever activate exactly ``target``?"""
        return self.explore(endowment).holds(target)
