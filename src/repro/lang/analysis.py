"""Whole-system policy analysis across services.

The paper's policy-management thread ([1]) calls consistent deployment of
evolving policy "essential ... for any large-scale deployment".  Since
OASIS has no central role administration, consistency questions are
*cross-service*: can anyone ever reach role R?  does revoking credential C
actually deactivate the roles that were granted because of it?  This
module answers them statically.

:class:`PolicyUniverse` collects the :class:`ServicePolicy` of every
service under analysis and provides:

* :meth:`role_dependency_graph` — the Fig. 1 graph, over all services;
* :meth:`reachable_roles` — the roles some principal could activate given
  a set of obtainable appointment certificates (optimistic: environmental
  constraints are assumed satisfiable — this is an over-approximation, so
  *unreachable* verdicts are sound);
* :meth:`find_cycles` — cross-service prerequisite cycles: roles that can
  never be activated because each waits for the other;
* :meth:`lint` — deployment-review findings, including the subtle one the
  active-security design makes important: a credential condition **not**
  flagged into the membership rule means the granted role *survives*
  revocation of that credential ("passive dependency"); that is sometimes
  intended, but usually a policy bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.policy import ServicePolicy
from ..core.rules import ActivationRule
from ..core.types import RoleName, ServiceId

__all__ = ["Finding", "PolicyUniverse", "AppointmentKey"]

#: Identifies an appointment kind: (issuer service, name, arity).
AppointmentKey = Tuple[ServiceId, str, int]


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    severity: str       # "error" | "warning" | "info"
    code: str           # stable machine-readable code
    subject: str        # the role / rule / service concerned
    message: str

    def __str__(self) -> str:
        return f"{self.severity}[{self.code}] {self.subject}: {self.message}"


class PolicyUniverse:
    """All service policies of a deployment, for cross-service analysis."""

    def __init__(self, policies: Iterable[ServicePolicy] = ()) -> None:
        self._policies: Dict[ServiceId, ServicePolicy] = {}
        for policy in policies:
            self.add(policy)

    def add(self, policy: ServicePolicy) -> None:
        if policy.service in self._policies:
            raise ValueError(f"policy for {policy.service} already added")
        self._policies[policy.service] = policy

    @property
    def services(self) -> List[ServiceId]:
        return sorted(self._policies)

    def policy(self, service: ServiceId) -> ServicePolicy:
        return self._policies[service]

    # -- structural views ------------------------------------------------------
    def all_roles(self) -> List[RoleName]:
        roles = []
        for service, policy in self._policies.items():
            for name in policy.role_names:
                roles.append(RoleName(service, name))
        return sorted(roles, key=str)

    def _activation_rules(self) -> Iterable[Tuple[RoleName, ActivationRule]]:
        for service, policy in self._policies.items():
            for name in policy.role_names:
                for rule in policy.activation_rules_for(name):
                    yield RoleName(service, name), rule

    def role_dependency_graph(self) -> List[Tuple[RoleName, RoleName]]:
        """Edges (prerequisite -> dependent) over every activation rule."""
        edges = set()
        for target, rule in self._activation_rules():
            for prereq in rule.prerequisite_roles():
                edges.add((prereq.template.role_name, target))
        return sorted(edges, key=lambda edge: (str(edge[0]), str(edge[1])))

    def appointments_defined(self) -> Set[AppointmentKey]:
        """Appointment kinds some service can actually issue."""
        keys: Set[AppointmentKey] = set()
        for service, policy in self._policies.items():
            for name in policy.appointment_names:
                for rule in policy.appointment_rules_for(name):
                    keys.add((service, name, len(rule.parameters)))
        return keys

    def appointments_required(self) -> Set[AppointmentKey]:
        """Appointment kinds referenced by some activation rule."""
        keys: Set[AppointmentKey] = set()
        for _, rule in self._activation_rules():
            for condition in rule.appointment_conditions():
                keys.add((condition.issuer, condition.name,
                          len(condition.parameters)))
        return keys

    # -- reachability ------------------------------------------------------------
    def reachable_roles(self,
                        appointments: Optional[Set[AppointmentKey]] = None,
                        assume_issuable: bool = True) -> Set[RoleName]:
        """Roles activatable by *some* principal, as a least fixpoint.

        ``appointments`` — appointment kinds the principal population can
        obtain; with ``assume_issuable=True`` every appointment kind that
        some analysed service can issue is added (the issuer roles must
        themselves be reachable for this to be exact; the approximation
        stays sound for unreachability because it only ever *adds*
        credentials).  Environmental constraints are assumed satisfiable.
        """
        available = set(appointments or set())
        if assume_issuable:
            available |= self.appointments_defined()

        reachable: Set[RoleName] = set()
        changed = True
        while changed:
            changed = False
            for target, rule in self._activation_rules():
                if target in reachable:
                    continue
                if self._rule_enabled(rule, reachable, available):
                    reachable.add(target)
                    changed = True
        return reachable

    @staticmethod
    def _rule_enabled(rule: ActivationRule, reachable: Set[RoleName],
                      available: Set[AppointmentKey]) -> bool:
        for prereq in rule.prerequisite_roles():
            if prereq.template.role_name not in reachable:
                return False
        for condition in rule.appointment_conditions():
            key = (condition.issuer, condition.name,
                   len(condition.parameters))
            if key not in available:
                return False
        return True

    def unreachable_roles(self,
                          appointments: Optional[Set[AppointmentKey]] = None,
                          ) -> List[RoleName]:
        reachable = self.reachable_roles(appointments)
        return [role for role in self.all_roles() if role not in reachable]

    # -- cycles --------------------------------------------------------------
    def find_cycles(self) -> List[List[RoleName]]:
        """Cross-service prerequisite cycles (Tarjan SCCs of size > 1,
        plus self-loops)."""
        graph: Dict[RoleName, Set[RoleName]] = {}
        for prereq, dependent in self.role_dependency_graph():
            graph.setdefault(prereq, set()).add(dependent)
            graph.setdefault(dependent, set())

        index_counter = [0]
        indices: Dict[RoleName, int] = {}
        lowlinks: Dict[RoleName, int] = {}
        on_stack: Set[RoleName] = set()
        stack: List[RoleName] = []
        cycles: List[List[RoleName]] = []

        def strongconnect(node: RoleName) -> None:
            indices[node] = lowlinks[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for successor in graph.get(node, ()):
                if successor not in indices:
                    strongconnect(successor)
                    lowlinks[node] = min(lowlinks[node], lowlinks[successor])
                elif successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if lowlinks[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1 or node in graph.get(node, ()):
                    cycles.append(sorted(component, key=str))

        for node in sorted(graph, key=str):
            if node not in indices:
                strongconnect(node)
        return cycles

    # -- lint --------------------------------------------------------------
    def diagnose(self) -> "List":
        """Deployment-review findings as framework
        :class:`~repro.lang.diagnostics.Diagnostic` objects.

        Runs every registered pass of :mod:`repro.lang.passes` over this
        universe.  Spans are present when the policies were compiled from
        source (e.g. via :mod:`repro.lang.loader`); programmatically built
        rules simply have no provenance.
        """
        from .passes import LintContext, run_passes

        return run_passes(LintContext(universe=self))

    def lint(self) -> List[Finding]:
        """Deployment-review findings across the whole universe.

        Compatibility facade over :meth:`diagnose`: each diagnostic is
        flattened to a legacy :class:`Finding` whose ``code`` is the
        diagnostic's slug name (``passive-dependency``, ...).  New code
        should prefer :meth:`diagnose`, which keeps ``OASxxx`` codes and
        source spans.
        """
        findings = [Finding(d.severity, d.name, d.subject, d.message)
                    for d in self.diagnose()]
        return sorted(findings,
                      key=lambda f: ({"error": 0, "warning": 1,
                                      "info": 2}[f.severity], f.code,
                                     f.subject))
