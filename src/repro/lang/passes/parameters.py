"""OAS011 — cross-service parameter type inference and mismatch detection.

OASIS role parameters are untyped terms; the schema of a parametrised
role like ``treating_doctor(doc, pat)`` lives only in convention.  This
pass infers a type per (role, parameter position) — and per appointment
parameter position — from every *constant* the universe's rules supply
at that position, and flags positions used with conflicting constant
types (a string in one service's rule, a number in another's).  Variables
contribute no evidence; a position never constrained by a constant stays
unknown and is not reported.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from ...core.rules import (
    AppointmentCondition,
    PrerequisiteRole,
)
from ...core.terms import Var
from ..diagnostics import Diagnostic

if TYPE_CHECKING:
    from . import LintContext

__all__ = ["run"]


def _type_name(value: object) -> Optional[str]:
    if isinstance(value, str):
        return "string"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, (int, float)):
        return "number"
    return None


def run(context: "LintContext") -> Iterator[Diagnostic]:
    # (kind, identity..., position) -> first-seen type and example
    observations: Dict[Tuple, Dict[str, Tuple[object, str]]] = {}
    diagnostics: List[Diagnostic] = []

    def observe(key: Tuple, what: str, parameters, subject: str,
                file: Optional[str], span) -> None:
        for position, term in enumerate(parameters):
            if isinstance(term, Var):
                continue
            type_name = _type_name(term)
            if type_name is None:
                continue
            seen = observations.setdefault(key + (position,), {})
            if type_name in seen:
                continue
            if seen:
                other_type, (other_value, other_subject) = \
                    next(iter(seen.items()))
                diagnostics.append(Diagnostic(
                    "OAS011",
                    f"parameter {position + 1} of {what} is used as "
                    f"{type_name} ({term!r}) here but as {other_type} "
                    f"({other_value!r}) by {other_subject}",
                    subject=subject, file=file, span=span))
            seen[type_name] = (term, subject)

    def observe_body(rule, subject: str, path: Optional[str]) -> None:
        for condition in rule.conditions:
            if isinstance(condition, PrerequisiteRole):
                role = condition.template.role_name
                observe(("role", role), str(role),
                        condition.template.parameters,
                        subject, path, condition.origin)
            elif isinstance(condition, AppointmentCondition):
                observe(("appointment", condition.issuer, condition.name),
                        f"appointment {condition.issuer}:{condition.name}",
                        condition.parameters,
                        subject, path, condition.origin)

    for service, target, rule in context.activation_rules():
        path = context.file_of(service)
        observe(("role", target), str(target), rule.target.parameters,
                str(target), path, rule.origin)
        observe_body(rule, str(target), path)
    for service, method, rule in context.authorization_rules():
        observe_body(rule, f"{service}:{method}()",
                     context.file_of(service))
    for service, name, rule in context.appointment_rules():
        path = context.file_of(service)
        subject = f"appointment {service}:{name}"
        observe(("appointment", service, name), subject, rule.parameters,
                subject, path, rule.origin)
        observe_body(rule, subject, path)

    return iter(diagnostics)
