"""OAS002/OAS003/OAS010 — dangling cross-service references.

OASIS has no global schema: a rule may name any ``domain/service:role``
or appointment kind, and nothing at compile time guarantees the foreign
service defines it.  When the named service *is* part of the analysed
universe, the reference can be checked exactly:

* OAS002 — the prerequisite role is not defined by that service;
* OAS003 — no appointment rule of the issuer can issue the certificate;
* OAS010 — the role/appointment exists but is used with the wrong arity
  (parameterised roles, Sect. 2's ``treating_doctor(doc, pat)``).

References to services outside the universe are left alone — their
arities are "the foreign service's business", checked at presentation
time by unification.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, Set, Tuple

from ...core.rules import AppointmentCondition, PrerequisiteRole
from ...core.types import RoleName, ServiceId
from ..diagnostics import Diagnostic

if TYPE_CHECKING:
    from . import LintContext

__all__ = ["run"]


def run(context: "LintContext") -> Iterator[Diagnostic]:
    universe = context.universe
    services = set(universe.services)
    arities: Dict[RoleName, int] = {}
    for service, policy in context.policies():
        for name in policy.role_names:
            arities[RoleName(service, name)] = policy.role_arity(name)
    issuable: Dict[Tuple[ServiceId, str], Set[int]] = {}
    for issuer, name, arity in universe.appointments_defined():
        issuable.setdefault((issuer, name), set()).add(arity)

    for service, subject, rule in context.all_rules():
        path = context.file_of(service)
        for condition in rule.conditions:
            if isinstance(condition, PrerequisiteRole):
                role = condition.template.role_name
                if role.service not in services:
                    continue
                used = condition.template.arity
                if role not in arities:
                    yield Diagnostic(
                        "OAS002",
                        f"prerequisite {role} is not defined by "
                        f"{role.service}",
                        subject=subject, file=path, span=condition.origin)
                elif arities[role] != used:
                    yield Diagnostic(
                        "OAS010",
                        f"prerequisite {role} used with {used} "
                        f"parameter(s), declared with arity "
                        f"{arities[role]}",
                        subject=subject, file=path, span=condition.origin)
            elif isinstance(condition, AppointmentCondition):
                if condition.issuer not in services:
                    continue
                key = (condition.issuer, condition.name)
                used = len(condition.parameters)
                if key not in issuable:
                    yield Diagnostic(
                        "OAS003",
                        f"no appointment rule issues "
                        f"{condition.issuer}:{condition.name}/{used}",
                        subject=subject, file=path, span=condition.origin)
                elif used not in issuable[key]:
                    declared = ", ".join(
                        str(a) for a in sorted(issuable[key]))
                    yield Diagnostic(
                        "OAS010",
                        f"appointment {condition.issuer}:{condition.name} "
                        f"used with {used} parameter(s), issued with "
                        f"arity {declared}",
                        subject=subject, file=path, span=condition.origin)
