"""OAS004/OAS005 — unreachable roles and prerequisite cycles.

Uses the optimistic fixpoint of
:meth:`~repro.lang.analysis.PolicyUniverse.reachable_roles` (constraints
assumed satisfiable, every issuable appointment assumed obtainable), so
an *unreachable* verdict is sound: no principal, ever, under any
environment, can activate the role.  Cycles are reported separately
because they have a distinct fix (break the cycle) from plain
unreachability (add an activation path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator

from ...core.rules import ActivationRule
from ...core.types import RoleName
from ..diagnostics import Diagnostic

if TYPE_CHECKING:
    from . import LintContext

__all__ = ["run"]


def run(context: "LintContext") -> Iterator[Diagnostic]:
    universe = context.universe
    anchor: Dict[RoleName, ActivationRule] = {}
    for _, target, rule in context.activation_rules():
        anchor.setdefault(target, rule)

    for role in universe.unreachable_roles():
        rule = anchor.get(role)
        yield Diagnostic(
            "OAS004",
            "no combination of reachable roles and issuable "
            "appointments satisfies any activation rule",
            subject=str(role), file=context.file_of(role.service),
            span=rule.origin if rule is not None else None)

    for cycle in universe.find_cycles():
        names = " -> ".join(str(role) for role in cycle)
        rule = anchor.get(cycle[0])
        yield Diagnostic(
            "OAS005",
            "mutually prerequisite roles can never be activated",
            subject=names, file=context.file_of(cycle[0].service),
            span=rule.origin if rule is not None else None)
