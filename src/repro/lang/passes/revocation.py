"""OAS006/OAS007 — the active-security revocation dataflow.

The paper's central mechanism is that role membership is *continuously*
conditioned on the membership rule: "the membership rule of a role
indicates which of the role activation conditions must remain true while
the role is active" (Abstract), and revocation cascades along the Fig. 1
dependency graph (Fig. 5).  Two things can silently break that cascade:

* OAS006 (*passive dependency*) — a credential condition left outside
  the membership rule: the role simply survives revocation of that
  credential.  Sometimes intended; usually a policy bug.
* OAS007 (*revocation gap*) — the transitive version, computed as a
  dataflow over membership edges: role ``R`` membership-depends on
  prerequisite ``S``, but some activation rule of ``S`` (or of a role
  further up the membership chain) holds a credential only passively.
  Revoking that credential deactivates nothing, so the cascade the
  author of ``R`` relied on never reaches ``R``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from ...core.rules import (
    AppointmentCondition,
    Condition,
    PrerequisiteRole,
)
from ...core.types import RoleName
from ..diagnostics import Diagnostic

if TYPE_CHECKING:
    from . import LintContext

__all__ = ["run"]


def _describe(condition: Condition) -> str:
    if isinstance(condition, PrerequisiteRole):
        return str(condition.template)
    assert isinstance(condition, AppointmentCondition)
    return f"appointment {condition.issuer}:{condition.name}"


def run(context: "LintContext") -> Iterator[Diagnostic]:
    # Per role: its passive credential conditions (description + the role
    # it names, when it names one), and the membership edges R -> S (S a
    # membership prerequisite of R).
    passive: Dict[RoleName, List[Tuple[str, Optional[RoleName]]]] = {}
    membership_edges: Dict[RoleName,
                           List[Tuple[RoleName, PrerequisiteRole]]] = {}

    for service, target, rule in context.activation_rules():
        path = context.file_of(service)
        for condition in rule.conditions:
            if not isinstance(condition, (PrerequisiteRole,
                                          AppointmentCondition)):
                continue
            if not condition.membership:
                what = _describe(condition)
                named = (condition.template.role_name
                         if isinstance(condition, PrerequisiteRole)
                         else None)
                passive.setdefault(target, []).append((what, named))
                yield Diagnostic(
                    "OAS006",
                    f"condition {what} is not in the membership rule: "
                    f"revoking that credential will NOT deactivate "
                    f"{target.name}",
                    subject=str(target), file=path, span=condition.origin)
            elif isinstance(condition, PrerequisiteRole):
                membership_edges.setdefault(target, []).append(
                    (condition.template.role_name, condition))

    # Dataflow: walk membership edges from each role; any ancestor with a
    # passive credential breaks the cascade for the roles below it.
    for start in sorted(membership_edges, key=str):
        visited: Set[RoleName] = {start}
        reported: Set[Tuple[RoleName, str]] = set()
        # (ancestor role, the membership condition of `start` that leads
        # towards it — where the finding is anchored)
        frontier: List[Tuple[RoleName, PrerequisiteRole]] = list(
            membership_edges[start])
        while frontier:
            ancestor, via = frontier.pop(0)
            if ancestor in visited:
                continue
            visited.add(ancestor)
            for what, named in passive.get(ancestor, ()):
                # A passive reference back to `start` itself is already
                # covered by OAS006 on the ancestor; a gap "to itself" is
                # meaningless.
                if named == start or (ancestor, what) in reported:
                    continue
                reported.add((ancestor, what))
                yield Diagnostic(
                    "OAS007",
                    f"membership of {start.name} depends on {ancestor}, "
                    f"but {ancestor.name} holds {what} only passively — "
                    f"revoking it will not cascade to {start.name}",
                    subject=str(start),
                    file=context.file_of(start.service),
                    span=via.origin)
            for upstream, _ in membership_edges.get(ancestor, ()):
                frontier.append((upstream, via))
