"""Static-analysis passes over a policy universe.

Each pass is a module exposing ``run(context) -> Iterator[Diagnostic]``.
Passes operate on *compiled* rules (so they also work for policies built
programmatically), but compiled rules carry the source spans the parser
threaded through (:class:`~repro.core.rules.SourceSpan`), so findings on
file-loaded policies point at policy text.

The pass list, in reporting order:

* :mod:`~repro.lang.passes.range_restriction` — OAS001, head variables a
  rule body never binds;
* :mod:`~repro.lang.passes.references` — OAS002/OAS003/OAS010, dangling
  cross-service role and appointment references and arity mismatches;
* :mod:`~repro.lang.passes.reachability` — OAS004/OAS005, roles no
  principal can ever activate and prerequisite cycles;
* :mod:`~repro.lang.passes.revocation` — OAS006/OAS007, the active-security
  dataflow: credentials whose revocation does *not* cascade (Fig. 1/Fig. 5);
* :mod:`~repro.lang.passes.dead_rules` — OAS008/OAS009, duplicate and
  shadowed rules;
* :mod:`~repro.lang.passes.parameters` — OAS011, cross-service parameter
  type inference and mismatch detection;
* :mod:`~repro.lang.passes.privileges` — OAS012, roles that gate nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ...core.policy import ServicePolicy
from ...core.rules import (
    ActivationRule,
    AppointmentRule,
    AuthorizationRule,
)
from ...core.types import RoleName, ServiceId
from ..analysis import PolicyUniverse
from ..diagnostics import Diagnostic

__all__ = ["LintContext", "ALL_PASSES", "run_passes"]


@dataclass
class LintContext:
    """Everything a pass may need: the universe plus source attribution.

    ``files`` maps each analysed service to the path of the policy file
    that defined it; ``sources`` maps paths to raw policy text.  Both are
    empty for programmatically-built universes — passes must tolerate
    missing files and ``None`` spans.
    """

    universe: PolicyUniverse
    files: Mapping[ServiceId, str] = field(default_factory=dict)
    sources: Mapping[str, str] = field(default_factory=dict)

    @classmethod
    def from_units(cls, units,
                   universe: Optional[PolicyUniverse] = None
                   ) -> "LintContext":
        """Build a context from loader :class:`~repro.lang.loader.PolicyUnit`
        records (the CLI path)."""
        if universe is None:
            universe = PolicyUniverse(unit.policy for unit in units)
        return cls(universe=universe,
                   files={unit.service: unit.path for unit in units},
                   sources={unit.path: unit.text for unit in units})

    def file_of(self, service: ServiceId) -> Optional[str]:
        return self.files.get(service)

    # -- rule iteration ------------------------------------------------------
    def policies(self) -> Iterator[Tuple[ServiceId, ServicePolicy]]:
        for service in self.universe.services:
            yield service, self.universe.policy(service)

    def activation_rules(self) -> Iterator[Tuple[ServiceId, RoleName,
                                                 ActivationRule]]:
        for service, policy in self.policies():
            for name in policy.role_names:
                for rule in policy.activation_rules_for(name):
                    yield service, RoleName(service, name), rule

    def authorization_rules(self) -> Iterator[Tuple[ServiceId, str,
                                                    AuthorizationRule]]:
        for service, policy in self.policies():
            for method in policy.guarded_methods:
                for rule in policy.authorization_rules_for(method):
                    yield service, method, rule

    def appointment_rules(self) -> Iterator[Tuple[ServiceId, str,
                                                  AppointmentRule]]:
        for service, policy in self.policies():
            for name in policy.appointment_names:
                for rule in policy.appointment_rules_for(name):
                    yield service, name, rule

    def all_rules(self) -> Iterator[Tuple[ServiceId, str, object]]:
        """Every rule with a human-readable subject string."""
        for service, target, rule in self.activation_rules():
            yield service, str(target), rule
        for service, method, rule in self.authorization_rules():
            yield service, f"{service}:{method}()", rule
        for service, name, rule in self.appointment_rules():
            yield service, f"appointment {service}:{name}", rule


def _load_passes():
    from . import (
        range_restriction,
        references,
        reachability,
        revocation,
        dead_rules,
        parameters,
        privileges,
    )

    return (
        range_restriction.run,
        references.run,
        reachability.run,
        revocation.run,
        dead_rules.run,
        parameters.run,
        privileges.run,
    )


ALL_PASSES = _load_passes()


def run_passes(context: LintContext,
               passes=ALL_PASSES) -> List[Diagnostic]:
    """Run the passes and return findings sorted by severity, code and
    position.  Suppression pragmas and select/ignore filters are applied
    by the caller (:func:`repro.lang.diagnostics.filter_diagnostics`)."""
    diagnostics: List[Diagnostic] = []
    for run in passes:
        diagnostics.extend(run(context))
    return sorted(diagnostics, key=Diagnostic.sort_key)
