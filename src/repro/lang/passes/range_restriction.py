"""OAS001 — range restriction: head variables a rule body never binds.

A Horn-clause activation rule grounds its head parameters by unifying
body conditions against presented credentials.  Environmental constraints
cannot *bind* variables (the engine evaluates them against an already
ground substitution), so a head variable appearing in no credential
condition stays unbound: the engine then demands it in the activation
request (:class:`~repro.core.exceptions.ActivationDenied` otherwise).
That is the documented idiom for *empty* bodies (initial roles), but in a
conditional rule it is almost always an authorship slip — hence a
warning, not an error.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ...core.rules import AppointmentCondition, PrerequisiteRole
from ..diagnostics import Diagnostic

if TYPE_CHECKING:
    from . import LintContext

__all__ = ["run"]


def run(context: "LintContext") -> Iterator[Diagnostic]:
    for service, target, rule in context.activation_rules():
        if not rule.conditions:
            continue        # initial-role idiom: parameters supplied at
            #                 activation time by design
        bound = set()
        for condition in rule.conditions:
            if isinstance(condition, (PrerequisiteRole,
                                      AppointmentCondition)):
                bound |= condition.variables()
        unbound = sorted(v.name for v in rule.head_variables() - bound)
        if unbound:
            names = ", ".join(unbound)
            yield Diagnostic(
                "OAS001",
                f"head variable(s) {names} are bound by no credential "
                f"condition in the body; every activation request must "
                f"supply them explicitly",
                subject=str(target), file=context.file_of(service),
                span=rule.origin)
