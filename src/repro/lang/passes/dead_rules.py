"""OAS008/OAS009 — duplicate and shadowed rules.

Policies evolve by accretion (the paper's management thread [1] expects
"evolving policy" deployed across many services); two failure modes of
that accretion are detectable statically:

* OAS008 (*duplicate rule*) — a rule identical to an earlier rule for
  the same target: pure noise, and a review hazard because editing one
  copy silently leaves the other in force.
* OAS009 (*shadowed rule*) — a rule whose conditions are a strict
  superset of another rule's for the same target.  Whenever the stricter
  rule fires, the laxer one fires too, so the stricter rule never grants
  anything new — usually the residue of a tightening that forgot to
  delete the old rule (which still applies, defeating the tightening).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Sequence

from ...core.rules import Condition
from ..diagnostics import Diagnostic

if TYPE_CHECKING:
    from . import LintContext

__all__ = ["run"]


def _contains_all(superset: Sequence[Condition],
                  subset: Sequence[Condition]) -> bool:
    """Multiset containment by condition equality (spans excluded)."""
    pool = list(superset)
    for condition in subset:
        try:
            pool.remove(condition)
        except ValueError:
            return False
    return True


def _grouped(context: "LintContext"):
    """Rules grouped per (service, head) with head-equality keys."""
    groups = {}
    for service, target, rule in context.activation_rules():
        key = (service, "activation", str(target), rule.target)
        groups.setdefault(key, (str(target), []))[1].append(rule)
    for service, method, rule in context.authorization_rules():
        key = (service, "authorization", method, rule.parameters)
        groups.setdefault(key, (f"{service}:{method}()", []))[1].append(rule)
    for service, name, rule in context.appointment_rules():
        key = (service, "appointment", name, rule.parameters)
        groups.setdefault(
            key, (f"appointment {service}:{name}", []))[1].append(rule)
    for (service, _, _, _), (subject, rules) in groups.items():
        yield service, subject, rules


def run(context: "LintContext") -> Iterator[Diagnostic]:
    for service, subject, rules in _grouped(context):
        path = context.file_of(service)
        shadowed: List[int] = []
        for j, rule in enumerate(rules):
            for i, earlier in enumerate(rules[:j]):
                same_size = len(rule.conditions) == len(earlier.conditions)
                if same_size and _contains_all(rule.conditions,
                                               earlier.conditions):
                    yield Diagnostic(
                        "OAS008",
                        f"rule is identical to an earlier rule for "
                        f"{subject}; delete one copy",
                        subject=subject, file=path, span=rule.origin)
                    break
            else:
                for i, other in enumerate(rules):
                    if i == j or i in shadowed:
                        continue
                    if len(rule.conditions) > len(other.conditions) \
                            and _contains_all(rule.conditions,
                                              other.conditions):
                        laxer = ", ".join(str(c) for c in other.conditions) \
                            or "true"
                        yield Diagnostic(
                            "OAS009",
                            f"conditions are a strict superset of another "
                            f"rule for {subject} (<- {laxer}); this rule "
                            f"can never grant anything that rule does not",
                            subject=subject, file=path, span=rule.origin)
                        shadowed.append(j)
                        break
