"""OAS012 — roles that gate nothing.

A role that appears in no authorization rule, appoints nothing and is
prerequisite to no other role confers no privilege: activating it costs
credential checks and an RMC issue for no effect.  Informational — such
roles are sometimes placeholders for policy still being rolled out — but
at the paper's "large-scale deployment" size they are dead weight worth
surfacing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Set

from ...core.rules import PrerequisiteRole
from ...core.types import RoleName
from ..diagnostics import Diagnostic

if TYPE_CHECKING:
    from . import LintContext

__all__ = ["run"]


def run(context: "LintContext") -> Iterator[Diagnostic]:
    universe = context.universe
    gating: Set[RoleName] = {
        prereq for prereq, _ in universe.role_dependency_graph()}
    for service, policy in context.policies():
        for method in policy.guarded_methods:
            for rule in policy.authorization_rules_for(method):
                for condition in rule.conditions:
                    if isinstance(condition, PrerequisiteRole):
                        gating.add(condition.template.role_name)
        for name in policy.appointment_names:
            for rule in policy.appointment_rules_for(name):
                for condition in rule.conditions:
                    if isinstance(condition, PrerequisiteRole):
                        gating.add(condition.template.role_name)

    anchors = {}
    for _, target, rule in context.activation_rules():
        anchors.setdefault(target, rule)
    for role in universe.all_roles():
        if role in gating:
            continue
        rule = anchors.get(role)
        yield Diagnostic(
            "OAS012",
            "role gates no method, appointment or other role",
            subject=str(role), file=context.file_of(role.service),
            span=rule.origin if rule is not None else None)
