"""Loading policy files from disk into a :class:`PolicyUniverse`.

Deployments keep one ``.oasis`` policy file per service; the loader
parses, compiles and collects them so the analysis tooling (and the CLI in
:mod:`repro.lang.cli`) can work on the whole system.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.constraints import ConstraintRegistry
from ..core.policy import ServicePolicy
from ..core.types import ServiceId
from .analysis import PolicyUniverse
from .compiler import compile_document
from .parser import parse_document

__all__ = ["POLICY_SUFFIX", "load_policy_file", "load_policies",
           "discover_policy_files"]

POLICY_SUFFIX = ".oasis"


def load_policy_file(path: str,
                     registry: Optional[ConstraintRegistry] = None,
                     allow_unresolved: bool = False) -> ServicePolicy:
    """Parse and compile one policy file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return compile_document(parse_document(text), registry,
                            allow_unresolved)


def discover_policy_files(root: str) -> List[str]:
    """All ``*.oasis`` files under ``root`` (a file path passes through)."""
    if os.path.isfile(root):
        return [root]
    found = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(POLICY_SUFFIX):
                found.append(os.path.join(dirpath, filename))
    return sorted(found)


def load_policies(paths: Iterable[str],
                  registry: Optional[ConstraintRegistry] = None,
                  allow_unresolved: bool = False,
                  ) -> Tuple[Dict[ServiceId, ServicePolicy], PolicyUniverse]:
    """Load many policy files; returns ``(policies, universe)``.

    ``paths`` may mix files and directories (directories are scanned for
    ``*.oasis``).  Two files defining the same service is an error.
    """
    policies: Dict[ServiceId, ServicePolicy] = {}
    files: List[str] = []
    for path in paths:
        files.extend(discover_policy_files(path))
    for path in files:
        policy = load_policy_file(path, registry, allow_unresolved)
        if policy.service in policies:
            raise ValueError(
                f"{path}: service {policy.service} already defined by "
                f"another file")
        policies[policy.service] = policy
    return policies, PolicyUniverse(policies.values())
