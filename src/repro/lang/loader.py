"""Loading policy files from disk into a :class:`PolicyUniverse`.

Deployments keep one ``.oasis`` policy file per service; the loader
parses, compiles and collects them so the analysis tooling (and the CLI in
:mod:`repro.lang.cli`) can work on the whole system.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.constraints import ConstraintRegistry
from ..core.exceptions import PolicyError
from ..core.policy import ServicePolicy
from ..core.types import ServiceId
from .analysis import PolicyUniverse
from .ast import PolicyDocument
from .compiler import compile_document
from .parser import ParseError, parse_document

__all__ = ["POLICY_SUFFIX", "PolicyUnit", "load_policy_file",
           "load_policies", "load_unit", "load_units",
           "discover_policy_files"]

POLICY_SUFFIX = ".oasis"


@dataclass(frozen=True)
class PolicyUnit:
    """One loaded policy file: its path, raw text, AST and compiled form.

    The lint framework needs all four: the text for caret excerpts and
    suppression pragmas, the AST/compiled rules for their source spans,
    and the path to report findings against.
    """

    path: str
    text: str
    document: PolicyDocument
    policy: ServicePolicy

    @property
    def service(self) -> ServiceId:
        return self.policy.service


def load_unit(path: str,
              registry: Optional[ConstraintRegistry] = None,
              allow_unresolved: bool = False) -> PolicyUnit:
    """Parse and compile one policy file, keeping its source attached.

    Parse/compile errors are re-raised with ``error.path`` set so callers
    can report which file failed.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        document = parse_document(text)
        policy = compile_document(document, registry, allow_unresolved)
    except (ParseError, PolicyError) as error:
        error.path = path
        raise
    return PolicyUnit(path=path, text=text, document=document,
                      policy=policy)


def load_policy_file(path: str,
                     registry: Optional[ConstraintRegistry] = None,
                     allow_unresolved: bool = False) -> ServicePolicy:
    """Parse and compile one policy file."""
    return load_unit(path, registry, allow_unresolved).policy


def discover_policy_files(root: str) -> List[str]:
    """All ``*.oasis`` files under ``root`` (a file path passes through)."""
    if os.path.isfile(root):
        return [root]
    found = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if filename.endswith(POLICY_SUFFIX):
                found.append(os.path.join(dirpath, filename))
    return sorted(found)


def load_units(paths: Iterable[str],
               registry: Optional[ConstraintRegistry] = None,
               allow_unresolved: bool = False) -> List[PolicyUnit]:
    """Load many policy files as :class:`PolicyUnit` records.

    ``paths`` may mix files and directories (directories are scanned for
    ``*.oasis``).  Two files defining the same service is an error.
    """
    files: List[str] = []
    for path in paths:
        files.extend(discover_policy_files(path))
    units: List[PolicyUnit] = []
    seen: Dict[ServiceId, str] = {}
    for path in files:
        unit = load_unit(path, registry, allow_unresolved)
        if unit.service in seen:
            raise ValueError(
                f"{path}: service {unit.service} already defined by "
                f"another file")
        seen[unit.service] = path
        units.append(unit)
    return units


def load_policies(paths: Iterable[str],
                  registry: Optional[ConstraintRegistry] = None,
                  allow_unresolved: bool = False,
                  ) -> Tuple[Dict[ServiceId, ServicePolicy], PolicyUniverse]:
    """Load many policy files; returns ``(policies, universe)``."""
    units = load_units(paths, registry, allow_unresolved)
    policies = {unit.service: unit.policy for unit in units}
    return policies, PolicyUniverse(policies.values())
