"""Minimal counterexample witnesses: concrete derivation trees.

Every refuted property is accompanied by the *smallest* derivation that
realizes the offending flow — the static analogue of handing the auditor
the exact chain of certificates a principal would present.  The tree is
reconstructed from the fixpoint's min-cost provenance: each derivable
atom remembers the cheapest rule edge that produced it, and because a
child's derivation cost is strictly below its parent's, the recursion is
well founded.

``find_path_through`` additionally lets a property *pin* a specific edge
(e.g. "the derivation must pass through this unguarded credential") and
returns pins forcing that edge into the tree; ``witness_for`` honours
them with a path-set guard so a pinned cycle cannot recurse forever.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .fixpoint import ASSUMED, EXTERNAL, PASSIVE, RULE, FlowResult
from .graph import Atom, RuleEdge

__all__ = ["Witness", "witness_for", "find_path_through", "render",
           "to_dict"]


@dataclass
class Witness:
    """One node of a derivation tree."""

    atom: Atom
    mode: str                      # "rule" | "assumed" | "external" | "passive"
    edge: Optional[RuleEdge] = None
    children: Tuple["Witness", ...] = ()
    membership: Tuple[bool, ...] = field(default=())

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


def witness_for(result: FlowResult, atom: Atom,
                pins: Optional[Dict[Atom, RuleEdge]] = None) -> Witness:
    """Reconstruct the minimal derivation of ``atom`` from ``result``.

    ``pins`` maps atoms to the edge their derivation must use; atoms on
    the current path fall back to their min-cost edge instead, so a pin
    that would close a cycle degrades gracefully rather than looping.
    """
    if not result.derivable(atom) and not (
            atom in result.revoked and atom in result.survivors):
        raise ValueError(f"{atom} is not derivable in this closure")
    return _build(result, atom, pins or {}, frozenset())


def _build(result: FlowResult, atom: Atom, pins: Dict[Atom, RuleEdge],
           path: frozenset) -> Witness:
    if atom in result.revoked:
        # Only reachable for passive conditions on pre-revocation holdings.
        return Witness(atom, PASSIVE)
    reason = result.reason[atom]
    if reason != RULE:
        return Witness(atom, ASSUMED if reason == ASSUMED else EXTERNAL)
    edge = pins.get(atom)
    if edge is None or atom in path or not result.edge_viable(edge):
        edge = result.best[atom]
    child_path = path | {atom}
    children = tuple(
        _build(result, condition.atom, pins, child_path)
        for condition in edge.conditions)
    return Witness(atom, RULE, edge, children,
                   tuple(c.membership for c in edge.conditions))


def find_path_through(result: FlowResult, root: Atom,
                      edge: RuleEdge) -> Optional[Dict[Atom, RuleEdge]]:
    """Pins forcing the derivation of ``root`` to pass through ``edge``.

    Breadth-first search from ``root`` over viable edges until one is
    found whose target chain reaches ``edge.target`` and can use
    ``edge``; returns ``None`` when no derivation of ``root`` needs it.
    """
    if not result.edge_viable(edge):
        return None
    if root == edge.target:
        return {root: edge}
    seen: Set[Atom] = {root}
    queue: deque = deque()
    queue.append((root, {}))
    while queue:
        atom, pins = queue.popleft()
        for candidate in result.graph.edges_by_target.get(atom, ()):
            if not result.edge_viable(candidate):
                continue
            for condition in candidate.conditions:
                child = condition.atom
                if not result.condition_holds(child, condition.membership):
                    continue
                next_pins = dict(pins)
                next_pins[atom] = candidate
                if child == edge.target:
                    next_pins[child] = edge
                    return next_pins
                if child not in seen:
                    seen.add(child)
                    queue.append((child, next_pins))
    return None


def services_of(witness: Witness) -> Set:
    services = {witness.atom.service}
    for child in witness.children:
        services |= services_of(child)
    return services


def uses_appointment_edge(witness: Witness) -> bool:
    if witness.edge is not None and witness.edge.kind == "appointment":
        return True
    return any(uses_appointment_edge(c) for c in witness.children)


def chain_depth(witness: Witness) -> int:
    """Number of appointment (delegation) edges on the deepest path."""
    own = 1 if (witness.edge is not None
                and witness.edge.kind == "appointment") else 0
    return own + max((chain_depth(c) for c in witness.children), default=0)


_MODE_NOTES = {
    ASSUMED: "assumed credential of the queried principal class",
    EXTERNAL: "issued outside the analysed universe (assumed obtainable)",
    PASSIVE: "revoked, but held before revocation (passive condition)",
}


def render(witness: Witness) -> str:
    """Human-readable derivation tree with SourceSpan provenance."""
    lines: List[str] = []
    _render(witness, lines, indent=0)
    return "\n".join(lines)


def _render(witness: Witness, lines: List[str], indent: int) -> None:
    pad = "  " * indent
    if witness.mode == RULE:
        edge = witness.edge
        assert edge is not None
        lines.append(f"{pad}{witness.atom}")
        note = (f" (+{edge.constraint_count} environmental constraint"
                f"{'s' if edge.constraint_count != 1 else ''} assumed"
                " satisfiable)" if edge.constraint_count else "")
        lines.append(f"{pad}  via {edge.kind} rule"
                     f" [{edge.location()}] {edge.rule_text}{note}")
        for child in witness.children:
            _render(child, lines, indent + 1)
    else:
        lines.append(f"{pad}{witness.atom} — {_MODE_NOTES[witness.mode]}")


def to_dict(witness: Witness) -> Dict:
    entry: Dict = {"atom": str(witness.atom), "mode": witness.mode}
    if witness.edge is not None:
        edge = witness.edge
        entry["rule"] = {
            "kind": edge.kind,
            "service": str(edge.service),
            "text": edge.rule_text,
            "file": edge.file,
            "line": edge.origin.line if edge.origin else None,
            "column": edge.origin.column if edge.origin else None,
        }
    if witness.children:
        entry["children"] = [to_dict(c) for c in witness.children]
    return entry
