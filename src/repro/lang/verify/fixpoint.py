"""Least-fixpoint privilege-flow analysis over the policy graph.

A Datalog-style bottom-up evaluation: starting from leaf assumptions
(the principal classes named in a property, plus credentials from
outside the universe), rule edges fire whenever all their credential
conditions are derivable, until no atom changes.  On top of bare
derivability the relaxation tracks, per atom:

* ``cost`` — the size of the cheapest derivation (number of tree nodes).
  Costs decrease monotonically and every rule edge adds at least 1, so
  the iteration terminates and the minimal-witness recursion in
  :mod:`repro.lang.verify.witness` is well founded (each child's cost is
  strictly below its parent's).
* ``depth`` — the minimum number of appointment edges on any derivation,
  i.e. how many delegation steps the principal class needs.  This is the
  quantity bounded by the ``delegation-depth<=K`` property.

Revocation is modelled statically: ``revoked`` atoms cannot be derived,
edges with a *membership* condition on a revoked atom are disabled (the
Fig. 5 cascade collapses them), while a *passive* condition on a revoked
atom survives only if the atom was derivable before revocation
(``survivors`` — the pre-revocation closure).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from .graph import Atom, PolicyGraph, RuleEdge

__all__ = ["FlowResult", "run_fixpoint"]

#: How an atom became derivable.
RULE = "rule"          # via a rule edge (see FlowResult.best)
ASSUMED = "assumed"    # named leaf assumption of the query
EXTERNAL = "external"  # issued by a service outside the universe
PASSIVE = "passive"    # revoked, but held before revocation (survivor)


@dataclass
class FlowResult:
    """Closure of one fixpoint run, with provenance for witnesses."""

    graph: PolicyGraph
    assumptions: FrozenSet[Atom]
    use_appointment_rules: bool
    revoked: FrozenSet[Atom]
    survivors: FrozenSet[Atom]
    cost: Dict[Atom, int] = field(default_factory=dict)
    reason: Dict[Atom, str] = field(default_factory=dict)
    best: Dict[Atom, RuleEdge] = field(default_factory=dict)
    depth: Dict[Atom, int] = field(default_factory=dict)
    iterations: int = 0

    def derivable(self, atom: Atom) -> bool:
        return atom in self.cost

    def condition_holds(self, atom: Atom, membership: bool) -> bool:
        """Whether an edge condition on ``atom`` is satisfied in this
        closure, honouring the static revocation model."""
        if atom in self.revoked:
            return not membership and atom in self.survivors
        return atom in self.cost

    def condition_cost(self, atom: Atom, membership: bool) -> int:
        if atom in self.revoked and not membership:
            return 1  # survivor leaf: the credential predates revocation
        return self.cost[atom]

    def edge_enabled(self, edge: RuleEdge) -> bool:
        if edge.target in self.revoked:
            return False
        if edge.kind == "appointment" and not self.use_appointment_rules:
            return False
        return True

    def edge_viable(self, edge: RuleEdge) -> bool:
        """Enabled and every credential condition satisfied."""
        return self.edge_enabled(edge) and all(
            self.condition_holds(c.atom, c.membership)
            for c in edge.conditions)


def run_fixpoint(
    graph: PolicyGraph,
    assumptions: FrozenSet[Atom] = frozenset(),
    *,
    use_appointment_rules: bool = True,
    revoked: FrozenSet[Atom] = frozenset(),
    survivors: Optional[Set[Atom]] = None,
) -> FlowResult:
    """Run the least-fixpoint analysis and return the closure.

    ``assumptions`` are the atoms the queried principal class is assumed
    to hold already.  ``use_appointment_rules=False`` removes every
    appointment rule from the graph — the *base* closure used by the
    escalation check (what is reachable without any delegation being
    exercised).  ``revoked``/``survivors`` implement ``--assume-revoked``
    as described in the module docstring.
    """
    result = FlowResult(
        graph=graph,
        assumptions=assumptions,
        use_appointment_rules=use_appointment_rules,
        revoked=revoked,
        survivors=frozenset(survivors or ()),
    )
    for atom in sorted(assumptions):
        if atom in revoked:
            continue
        result.cost[atom] = 1
        result.reason[atom] = ASSUMED
        result.depth[atom] = 0
    for atom in sorted(graph.external):
        if atom in revoked or atom in result.cost:
            continue
        result.cost[atom] = 1
        result.reason[atom] = EXTERNAL
        result.depth[atom] = 0

    changed = True
    while changed:
        changed = False
        result.iterations += 1
        for edge in graph.edges:
            if not result.edge_enabled(edge):
                continue
            cost = 1
            depth = 1 if edge.kind == "appointment" else 0
            satisfiable = True
            for condition in edge.conditions:
                if not result.condition_holds(condition.atom,
                                              condition.membership):
                    satisfiable = False
                    break
                cost += result.condition_cost(condition.atom,
                                              condition.membership)
                child_depth = result.depth.get(condition.atom, 0)
                depth = max(depth,
                            child_depth
                            + (1 if edge.kind == "appointment" else 0))
            if not satisfiable:
                continue
            target = edge.target
            known = result.cost.get(target)
            if known is None or cost < known or (
                    cost == known
                    and result.reason.get(target) == RULE
                    and edge.index < result.best[target].index):
                # Ties resolve to the lowest edge index (deterministic),
                # and never displace a leaf reason (cost-1 assumptions).
                if known is None or cost < known or known > 1:
                    result.cost[target] = cost
                    result.reason[target] = RULE
                    result.best[target] = edge
                    changed = True
            if target in result.cost:
                known_depth = result.depth.get(target)
                if known_depth is None or depth < known_depth:
                    result.depth[target] = depth
                    changed = True
    return result
