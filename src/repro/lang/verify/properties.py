"""Verification properties over the whole-universe fixpoint.

The property layer turns the closure computed by
:mod:`repro.lang.verify.fixpoint` into answers to the questions the
paper says must be decidable before deployment:

``can-reach(CLASS, TARGET)`` / ``cannot-reach(CLASS, TARGET)``
    Reachability of a role, appointment or privilege from an abstract
    principal class (``anyone``, or credentials joined with ``+``).
    Refutations are reported as **OAS100**.

``no-escalation``
    No privilege is reachable *only* through an appointment
    (delegation) chain crossing two or more services — i.e. no class
    reaches a privilege that no direct activation path grants it.
    Violations are **OAS101**.

``revocation-sound``
    Every credential edge on every derivation path to a privilege is
    covered by a membership condition, so the Fig. 5 runtime cascade
    provably collapses the path when any credential on it is revoked.
    Only *activation* edges count: authorization and appointment rules
    are point-in-time checks, re-evaluated at use.  Holes are **OAS102**.

``delegation-depth<=K``
    No privilege needs more than K appointment steps.  Violations are
    **OAS103**.

``--assume-revoked REF`` re-runs reachability in the post-revocation
universe and additionally reports privileges that *survive* the
revocation through passive conditions (**OAS104**).

Every refuted property carries a minimal witness derivation tree
(:mod:`repro.lang.verify.witness`) in the diagnostic's notes, and the
witness's rule edges as related locations.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..diagnostics import Diagnostic, RelatedLocation
from ..passes import LintContext
from .fixpoint import FlowResult, run_fixpoint
from .graph import Atom, PolicyGraph, RuleEdge, build_graph
from .witness import (
    Witness,
    chain_depth,
    find_path_through,
    render,
    services_of,
    uses_appointment_edge,
    witness_for,
)

__all__ = [
    "Property",
    "PropertyError",
    "VerificationReport",
    "parse_class",
    "parse_property",
    "parse_ref",
    "verify_universe",
]

DEFAULT_PROPERTIES = ("no-escalation", "revocation-sound")


class PropertyError(ValueError):
    """A property or credential reference could not be parsed/resolved."""


@dataclass(frozen=True)
class Property:
    """One parsed verification property."""

    kind: str                  # "can-reach" | "cannot-reach" |
    #                            "no-escalation" | "revocation-sound" |
    #                            "delegation-depth"
    source: str                # the property as written
    subjects: FrozenSet[Atom] = frozenset()   # principal class ("anyone"=∅)
    target: Optional[Atom] = None
    bound: Optional[int] = None


@dataclass
class VerificationReport:
    """Outcome of one whole-universe verification run."""

    graph: PolicyGraph
    closure: FlowResult
    properties: Tuple[str, ...]
    revoked: FrozenSet[Atom] = frozenset()
    diagnostics: List[Diagnostic] = field(default_factory=list)
    iterations: int = 0        # fixpoint iterations across all closures
    fixpoint_runs: int = 0

    @property
    def ok(self) -> bool:
        return not self.diagnostics


# -- reference / property parsing --------------------------------------------

def _split_ref(rest: str, original: str) -> Tuple[str, str, Optional[int]]:
    if ":" not in rest:
        raise PropertyError(
            f"malformed reference {original!r}: expected "
            "'domain/service:name'")
    service, name = rest.rsplit(":", 1)
    arity: Optional[int] = None
    if "/" in name:
        name, _, arity_text = name.rpartition("/")
        if not arity_text.isdigit():
            raise PropertyError(
                f"malformed arity in reference {original!r}")
        arity = int(arity_text)
    if not service or not name:
        raise PropertyError(f"malformed reference {original!r}")
    return service, name, arity


def _resolve(graph: PolicyGraph, kinds: Sequence[str], service: str,
             name: str, arity: Optional[int], original: str) -> Atom:
    for kind in kinds:
        matches = sorted(
            atom for atom in graph.atoms
            if atom.kind == kind and str(atom.service) == service
            and atom.name == name
            and (arity is None or atom.arity == arity))
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            choices = ", ".join(f"{a.name}/{a.arity}" for a in matches)
            raise PropertyError(
                f"ambiguous reference {original!r}: qualify the arity "
                f"({choices})")
    raise PropertyError(
        f"unknown {' or '.join(kinds)} reference {original!r} "
        "in this universe")


def parse_ref(text: str, graph: PolicyGraph) -> Atom:
    """Resolve a credential/privilege reference against the universe.

    Forms: ``role domain/service:name``,
    ``appointment domain/service:name[/arity]``,
    ``domain/service.method`` (privilege), and bare
    ``domain/service:name`` (resolved as role, then appointment).
    """
    original = text
    text = text.strip()
    if text.startswith("role "):
        service, name, arity = _split_ref(text[5:].strip(), original)
        return _resolve(graph, ("role",), service, name, arity, original)
    if text.startswith("appointment "):
        service, name, arity = _split_ref(text[12:].strip(), original)
        return _resolve(graph, ("appointment",), service, name, arity,
                        original)
    if ":" in text:
        service, name, arity = _split_ref(text, original)
        return _resolve(graph, ("role", "appointment"), service, name,
                        arity, original)
    if "." in text:
        service, _, method = text.rpartition(".")
        return _resolve(graph, ("privilege",), service, method, None,
                        original)
    raise PropertyError(f"malformed reference {original!r}")


def parse_class(text: str, graph: PolicyGraph) -> FrozenSet[Atom]:
    """Parse a principal-class spec: ``anyone`` or refs joined by ``+``."""
    text = text.strip()
    if text == "anyone":
        return frozenset()
    parts = [part.strip() for part in text.split("+")]
    if not all(parts):
        raise PropertyError(f"malformed principal class {text!r}")
    return frozenset(parse_ref(part, graph) for part in parts)


_REACH = re.compile(r"^(can-reach|cannot-reach)\s*\(\s*(.+)\s*,"
                    r"\s*([^,]+?)\s*\)$")
_DEPTH = re.compile(r"^delegation-depth\s*<=\s*(\d+)$")


def parse_property(text: str, graph: PolicyGraph) -> Property:
    """Parse one ``--property`` argument."""
    source = text.strip()
    if source == "no-escalation":
        return Property("no-escalation", source)
    if source == "revocation-sound":
        return Property("revocation-sound", source)
    match = _DEPTH.match(source)
    if match:
        return Property("delegation-depth", source,
                        bound=int(match.group(1)))
    match = _REACH.match(source)
    if match:
        subjects = parse_class(match.group(2), graph)
        target = parse_ref(match.group(3), graph)
        return Property(match.group(1), source, subjects=subjects,
                        target=target)
    raise PropertyError(
        f"unrecognised property {source!r}: expected can-reach(...), "
        "cannot-reach(...), no-escalation, revocation-sound or "
        "delegation-depth<=K")


def _describe_class(subjects: FrozenSet[Atom], graph: PolicyGraph) -> str:
    if not subjects:
        return "anyone"
    return " + ".join(graph.signature(atom) for atom in sorted(subjects))


# -- witness plumbing --------------------------------------------------------

def _related_locations(witness: Witness) -> Tuple[RelatedLocation, ...]:
    related: List[RelatedLocation] = []

    def walk(node: Witness) -> None:
        if node.edge is not None:
            related.append(RelatedLocation(
                message=f"{node.edge.kind} rule: {node.edge.rule_text}",
                file=node.edge.file, span=node.edge.origin))
        for child in node.children:
            walk(child)

    walk(witness)
    return tuple(related)


def _witnessed(code: str, message: str, subject: str,
               witness: Witness, edge: Optional[RuleEdge]) -> Diagnostic:
    return Diagnostic(
        code=code, message=message, subject=subject,
        file=edge.file if edge is not None else None,
        span=edge.origin if edge is not None else None,
        notes=render(witness), related=_related_locations(witness))


# -- property checks ---------------------------------------------------------

def _check_reach(prop: Property, graph: PolicyGraph, closure: FlowResult,
                 revoked: FrozenSet[Atom],
                 diagnostics: List[Diagnostic]) -> None:
    assert prop.target is not None
    reached = closure.derivable(prop.target)
    who = _describe_class(prop.subjects, graph)
    suffix = ""
    if revoked:
        refs = ", ".join(str(atom) for atom in sorted(revoked))
        suffix = f" (assuming revocation of {refs})"
    if prop.kind == "can-reach" and not reached:
        diagnostics.append(Diagnostic(
            code="OAS100", subject=prop.source,
            message=(f"refuted: {who} cannot reach "
                     f"{prop.target}{suffix}"),
            file=graph.files.get(prop.target.service)))
    elif prop.kind == "cannot-reach" and reached:
        witness = witness_for(closure, prop.target)
        edge = closure.best.get(prop.target)
        diagnostic = _witnessed(
            "OAS100",
            f"refuted: {who} reaches {prop.target}{suffix}",
            prop.source, witness, edge)
        if diagnostic.file is None:
            diagnostic = Diagnostic(
                code=diagnostic.code, message=diagnostic.message,
                subject=diagnostic.subject,
                file=graph.files.get(prop.target.service),
                notes=diagnostic.notes, related=diagnostic.related)
        diagnostics.append(diagnostic)


def _check_no_escalation(graph: PolicyGraph, full: FlowResult,
                         base: FlowResult,
                         diagnostics: List[Diagnostic]) -> None:
    for privilege in graph.privileges():
        if not full.derivable(privilege) or base.derivable(privilege):
            continue
        witness = witness_for(full, privilege)
        services = services_of(witness)
        if len(services) < 2 or not uses_appointment_edge(witness):
            continue
        names = ", ".join(sorted(str(s) for s in services))
        edge = full.best.get(privilege)
        diagnostics.append(_witnessed(
            "OAS101",
            (f"reachable only through an appointment chain crossing "
             f"{len(services)} services ({names}); no direct "
             "activation path grants it"),
            str(privilege), witness, edge))


def _support_edges(graph: PolicyGraph, full: FlowResult,
                   root: Atom) -> List[RuleEdge]:
    """Every rule edge on some viable derivation path below ``root``."""
    seen: Set[Atom] = {root}
    stack = [root]
    edges: List[RuleEdge] = []
    while stack:
        atom = stack.pop()
        for edge in graph.edges_by_target.get(atom, ()):
            if not full.edge_viable(edge):
                continue
            edges.append(edge)
            for condition in edge.conditions:
                if condition.atom not in seen:
                    seen.add(condition.atom)
                    stack.append(condition.atom)
    return edges


def _check_revocation_sound(graph: PolicyGraph, full: FlowResult,
                            diagnostics: List[Diagnostic]) -> None:
    holes: Dict[Tuple[int, int], Tuple[RuleEdge, int, List[Atom]]] = {}
    for privilege in graph.privileges():
        if not full.derivable(privilege):
            continue
        for edge in _support_edges(graph, full, privilege):
            if edge.kind != "activation":
                continue
            for position, condition in enumerate(edge.conditions):
                if condition.membership:
                    continue
                key = (edge.index, position)
                if key not in holes:
                    holes[key] = (edge, position, [])
                holes[key][2].append(privilege)
    for key in sorted(holes):
        edge, position, privileges = holes[key]
        condition = edge.conditions[position]
        first = min(privileges)
        pins = find_path_through(full, first, edge)
        notes = ""
        related: Tuple[RelatedLocation, ...] = ()
        if pins is not None:
            witness = witness_for(full, first, pins)
            notes = render(witness)
            related = _related_locations(witness)
        names = ", ".join(str(p) for p in sorted(set(privileges)))
        diagnostics.append(Diagnostic(
            code="OAS102", subject=str(edge.target),
            message=(f"credential condition '{condition.label}' on the "
                     f"activation rule for {edge.target} is outside the "
                     f"membership rule, so revoking {condition.atom} "
                     f"does not collapse the derivation of {names}"),
            file=edge.file, span=condition.origin or edge.origin,
            notes=notes, related=related))


def _check_delegation_depth(graph: PolicyGraph, full: FlowResult,
                            bound: int,
                            diagnostics: List[Diagnostic]) -> None:
    for privilege in graph.privileges():
        if not full.derivable(privilege):
            continue
        depth = full.depth.get(privilege, 0)
        if depth <= bound:
            continue
        witness = witness_for(full, privilege)
        edge = full.best.get(privilege)
        diagnostics.append(_witnessed(
            "OAS103",
            (f"requires {depth} delegation (appointment) steps; the "
             f"stated bound is {bound} (shortest witness uses "
             f"{chain_depth(witness)})"),
            str(privilege), witness, edge))


def _check_survivors(graph: PolicyGraph, surviving: FlowResult,
                     strict: FlowResult, revoked: FrozenSet[Atom],
                     diagnostics: List[Diagnostic]) -> None:
    refs = ", ".join(str(atom) for atom in sorted(revoked))
    for privilege in graph.privileges():
        if not surviving.derivable(privilege):
            continue
        if strict.derivable(privilege):
            continue  # reachable without leaning on pre-revocation state
        witness = witness_for(surviving, privilege)
        edge = surviving.best.get(privilege)
        diagnostics.append(_witnessed(
            "OAS104",
            (f"still reachable after revocation of {refs}: passive "
             "conditions keep credentials issued before the revocation "
             "usable"),
            str(privilege), witness, edge))


# -- the runner --------------------------------------------------------------

def verify_universe(
    context: LintContext,
    properties: Sequence[str] = (),
    *,
    assume_revoked: Sequence[str] = (),
    max_delegation_depth: Optional[int] = None,
) -> VerificationReport:
    """Compile the universe, run the fixpoint, check every property.

    With no explicit ``properties``, the default battery runs:
    ``no-escalation`` and ``revocation-sound`` (plus the depth check
    when ``max_delegation_depth`` is given, and the revocation-survivor
    check when ``assume_revoked`` is given).

    Raises :class:`PropertyError` for unparsable properties or
    references — a usage error, distinct from refuted properties.
    """
    graph = build_graph(context)
    full = run_fixpoint(graph)
    report = VerificationReport(
        graph=graph, closure=full, properties=(),
        iterations=full.iterations, fixpoint_runs=1)

    revoked = frozenset(parse_ref(ref, graph) for ref in assume_revoked)
    report.revoked = revoked

    parsed = [parse_property(text, graph) for text in properties]
    if not parsed:
        parsed = [Property(kind, kind) for kind in DEFAULT_PROPERTIES]
    if max_delegation_depth is not None and not any(
            prop.kind == "delegation-depth" for prop in parsed):
        parsed.append(Property(
            "delegation-depth",
            f"delegation-depth<={max_delegation_depth}",
            bound=max_delegation_depth))
    report.properties = tuple(prop.source for prop in parsed)

    def closure_for(subjects: FrozenSet[Atom]) -> FlowResult:
        pre = run_fixpoint(graph, subjects)
        report.iterations += pre.iterations
        report.fixpoint_runs += 1
        if not revoked:
            return pre
        post = run_fixpoint(graph, subjects, revoked=revoked,
                            survivors=set(pre.cost))
        report.iterations += post.iterations
        report.fixpoint_runs += 1
        return post

    base: Optional[FlowResult] = None
    for prop in parsed:
        if prop.kind in ("can-reach", "cannot-reach"):
            closure = full if not (prop.subjects or revoked) \
                else closure_for(prop.subjects)
            _check_reach(prop, graph, closure, revoked,
                         report.diagnostics)
        elif prop.kind == "no-escalation":
            if base is None:
                base = run_fixpoint(graph, use_appointment_rules=False)
                report.iterations += base.iterations
                report.fixpoint_runs += 1
            _check_no_escalation(graph, full, base, report.diagnostics)
        elif prop.kind == "revocation-sound":
            _check_revocation_sound(graph, full, report.diagnostics)
        elif prop.kind == "delegation-depth":
            assert prop.bound is not None
            _check_delegation_depth(graph, full, prop.bound,
                                    report.diagnostics)

    if revoked:
        surviving = run_fixpoint(graph, revoked=revoked,
                                 survivors=set(full.cost))
        strict = run_fixpoint(graph, revoked=revoked)
        report.iterations += surviving.iterations + strict.iterations
        report.fixpoint_runs += 2
        _check_survivors(graph, surviving, strict, revoked,
                         report.diagnostics)

    report.diagnostics.sort(key=Diagnostic.sort_key)
    return report
