"""The cross-service rule graph the whole-universe verifier runs over.

The verifier abstracts every parametrised rule of every analysed service
into propositional *atoms* over abstract principal classes: a role keeps
its (service, name) identity and its parameter-type signature but loses
its concrete parameters, and likewise for appointment kinds and guarded
methods.  Rules become hyper-edges from the atoms of their credential
conditions to the atom of their head.  On this graph a Datalog-style
least fixpoint (:mod:`repro.lang.verify.fixpoint`) decides which atoms
*some* principal class can ever reach — the decidable question the paper
promises ("can a principal in domain A ever reach privilege P in domain
B?"), asked before deployment.

The abstraction is a sound over-approximation for unreachability:
parameters are ignored (any unification is assumed to succeed) and
environmental constraints are assumed satisfiable, so everything the
runtime can grant is derivable here.  Atoms whose defining service lies
*outside* the analysed universe are recorded in
:attr:`PolicyGraph.external` and treated as obtainable — the foreign
service's policy is unknown, so assuming the credential exists keeps
unreachable verdicts trustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ...core.rules import (
    AppointmentCondition,
    ConstraintCondition,
    PrerequisiteRole,
    SourceSpan,
)
from ...core.terms import Var
from ...core.types import ServiceId
from ..passes import LintContext

__all__ = ["Atom", "EdgeCondition", "RuleEdge", "PolicyGraph",
           "build_graph"]

ROLE = "role"
APPOINTMENT = "appointment"
PRIVILEGE = "privilege"


@dataclass(frozen=True, order=True)
class Atom:
    """One node of the rule graph: a role, appointment kind or privilege
    abstracted from its parameters."""

    kind: str          # "role" | "appointment" | "privilege"
    service: ServiceId
    name: str          # role name, appointment name, or method name
    arity: int = 0     # parameter count (0 for privileges)

    @classmethod
    def role(cls, service: ServiceId, name: str, arity: int = 0) -> "Atom":
        return cls(ROLE, service, name, arity)

    @classmethod
    def appointment(cls, issuer: ServiceId, name: str,
                    arity: int = 0) -> "Atom":
        return cls(APPOINTMENT, issuer, name, arity)

    @classmethod
    def privilege(cls, service: ServiceId, method: str) -> "Atom":
        return cls(PRIVILEGE, service, method, 0)

    def __str__(self) -> str:
        if self.kind == PRIVILEGE:
            return f"privilege {self.service}.{self.name}"
        if self.kind == APPOINTMENT:
            return (f"appointment {self.service}:{self.name}"
                    f"/{self.arity}")
        return f"role {self.service}:{self.name}"


@dataclass(frozen=True, eq=False)
class EdgeCondition:
    """One credential condition of a rule edge.

    ``membership`` mirrors the condition's flag in the policy: a
    membership condition is part of the Fig. 5 revocation cascade, a
    passive one survives revocation of its credential.  ``condition``
    keeps the compiled rule condition so witnesses can be replayed
    against the runtime (:mod:`repro.lang.verify.replay`).
    """

    atom: Atom
    membership: bool
    label: str
    origin: Optional[SourceSpan]
    condition: object = field(repr=False, default=None)


@dataclass(frozen=True, eq=False)
class RuleEdge:
    """One rule of the universe, as a hyper-edge deriving ``target``."""

    index: int                 # stable ordinal, for deterministic output
    kind: str                  # "activation" | "authorization" | "appointment"
    service: ServiceId
    target: Atom
    subject: str               # human-readable rule subject
    rule_text: str
    conditions: Tuple[EdgeCondition, ...]
    constraint_count: int      # environmental constraints (assumed true)
    origin: Optional[SourceSpan]
    file: Optional[str]
    rule: object = field(repr=False, default=None)

    def location(self) -> str:
        parts = [self.file or "<policy>"]
        if self.origin is not None:
            parts.append(f"{self.origin.line}:{self.origin.column}")
        return ":".join(parts)


@dataclass
class PolicyGraph:
    """The compiled universe: atoms, rule edges, and provenance."""

    services: Tuple[ServiceId, ...]
    atoms: Set[Atom]
    edges: Tuple[RuleEdge, ...]
    edges_by_target: Dict[Atom, List[RuleEdge]]
    external: Set[Atom]
    signatures: Dict[Atom, Tuple[str, ...]]
    files: Mapping[ServiceId, str]

    def privileges(self) -> List[Atom]:
        return sorted(a for a in self.atoms if a.kind == PRIVILEGE)

    def roles(self) -> List[Atom]:
        return sorted(a for a in self.atoms if a.kind == ROLE)

    def appointments(self) -> List[Atom]:
        return sorted(a for a in self.atoms if a.kind == APPOINTMENT)

    def signature(self, atom: Atom) -> str:
        """The atom with its inferred parameter-type signature, e.g.
        ``treating_doctor(string, string)`` — the abstract principal-class
        view of a parametrised role."""
        if atom.kind == PRIVILEGE or atom.arity == 0:
            return str(atom)
        types = self.signatures.get(atom, ("?",) * atom.arity)
        return f"{atom}({', '.join(types)})"


def _type_name(value: object) -> Optional[str]:
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (int, float)):
        return "number"
    return None


class _Builder:
    def __init__(self, context: LintContext) -> None:
        self.context = context
        self.universe = context.universe
        self.in_universe = set(self.universe.services)
        self.atoms: Set[Atom] = set()
        self.edges: List[RuleEdge] = []
        self.role_arities: Dict[Tuple[ServiceId, str], int] = {}
        # (atom, position) -> observed constant types
        self.observed: Dict[Tuple[Atom, int], Set[str]] = {}
        for service in self.universe.services:
            policy = self.universe.policy(service)
            for name in policy.role_names:
                self.role_arities[(service, name)] = policy.role_arity(name)

    def build(self) -> PolicyGraph:
        for service, target, rule in self.context.activation_rules():
            atom = self._role_atom(target.service, target.name,
                                   rule.target.arity)
            self._add_edge("activation", service, atom, str(target), rule,
                           rule.target.parameters)
        for service, method, rule in self.context.authorization_rules():
            atom = Atom.privilege(service, method)
            self._add_edge("authorization", service, atom,
                           f"{service}:{method}()", rule, rule.parameters)
        for service, name, rule in self.context.appointment_rules():
            atom = Atom.appointment(service, name, len(rule.parameters))
            self._add_edge("appointment", service, atom,
                           f"appointment {service}:{name}", rule,
                           rule.parameters)

        external = {atom for atom in self.atoms
                    if atom.kind != PRIVILEGE
                    and atom.service not in self.in_universe}
        by_target: Dict[Atom, List[RuleEdge]] = {}
        for edge in self.edges:
            by_target.setdefault(edge.target, []).append(edge)
        signatures: Dict[Atom, Tuple[str, ...]] = {}
        for atom in self.atoms:
            if atom.arity == 0:
                continue
            types = []
            for position in range(atom.arity):
                seen = self.observed.get((atom, position), set())
                types.append(sorted(seen)[0] if len(seen) == 1 else "?")
            signatures[atom] = tuple(types)
        return PolicyGraph(
            services=tuple(self.universe.services),
            atoms=self.atoms,
            edges=tuple(self.edges),
            edges_by_target=by_target,
            external=external,
            signatures=signatures,
            files=dict(self.context.files),
        )

    def _role_atom(self, service: ServiceId, name: str,
                   reference_arity: int) -> Atom:
        """Role atoms are keyed by declared arity when the defining service
        is in the universe, so differently-writ references (the OAS010
        arity dodge) still meet at one node."""
        arity = self.role_arities.get((service, name), reference_arity)
        return Atom.role(service, name, arity)

    def _observe(self, atom: Atom, parameters: Tuple) -> None:
        for position, term in enumerate(parameters):
            if isinstance(term, Var):
                continue
            type_name = _type_name(term)
            if type_name is not None and position < atom.arity:
                self.observed.setdefault((atom, position),
                                         set()).add(type_name)

    def _add_edge(self, kind: str, service: ServiceId, target: Atom,
                  subject: str, rule, head_parameters: Tuple) -> None:
        self.atoms.add(target)
        self._observe(target, head_parameters)
        conditions: List[EdgeCondition] = []
        constraint_count = 0
        for condition in rule.conditions:
            if isinstance(condition, PrerequisiteRole):
                template = condition.template
                atom = self._role_atom(template.role_name.service,
                                       template.role_name.name,
                                       template.arity)
                self._observe(atom, template.parameters)
            elif isinstance(condition, AppointmentCondition):
                atom = Atom.appointment(condition.issuer, condition.name,
                                        len(condition.parameters))
                self._observe(atom, condition.parameters)
            else:
                if isinstance(condition, ConstraintCondition):
                    constraint_count += 1
                continue
            self.atoms.add(atom)
            conditions.append(EdgeCondition(
                atom=atom, membership=condition.membership,
                label=str(condition), origin=condition.origin,
                condition=condition))
        self.edges.append(RuleEdge(
            index=len(self.edges), kind=kind, service=service,
            target=target, subject=subject, rule_text=str(rule),
            conditions=tuple(conditions),
            constraint_count=constraint_count,
            origin=getattr(rule, "origin", None),
            file=self.context.file_of(service), rule=rule))


def build_graph(context: LintContext) -> PolicyGraph:
    """Compile the whole universe of ``context`` into one rule graph."""
    return _Builder(context).build()
