"""Replay a witness derivation tree against the live runtime engine.

The differential soundness tests (and anyone auditing a verifier
verdict) need to turn a *static* witness back into *dynamic* behaviour:
a single probe principal walks the derivation tree bottom-up, starting a
session at the leaf initial role, activating every role on the tree,
issuing every appointment certificate to itself, and finally invoking
the guarded method.  If the verifier is sound, a fully concrete witness
(no external/assumed leaves) must replay without a denial.

The replay inherits the verifier's single-class abstraction: every
unpinned rule variable is bound to the probe's principal id, so the
whole tree talks about one principal.  Where a parameter must be
something else (an expiry timestamp checked by an environmental
constraint, a patient id looked up in a database), the caller seeds it
per atom via ``seeds``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ...core.service import OasisService
from ...core.session import Principal, Session
from ...core.terms import Term, Var
from ...core.types import ServiceId
from .fixpoint import RULE
from .graph import APPOINTMENT, PRIVILEGE, ROLE, Atom
from .witness import Witness

__all__ = ["ReplayError", "replay_witness"]


class ReplayError(RuntimeError):
    """The witness cannot be realized against the given services."""


class _Replayer:
    def __init__(self, services: Mapping[ServiceId, OasisService],
                 seeds: Mapping[Atom, Sequence[Term]],
                 environment: Optional[Dict[str, Any]],
                 principal_id: str) -> None:
        self.services = services
        self.seeds = seeds
        self.environment = environment
        self.principal = Principal(principal_id)
        self.session: Optional[Session] = None
        self.certificates: List[Any] = []
        self.memo: Dict[Atom, Any] = {}

    def service(self, atom: Atom) -> OasisService:
        try:
            return self.services[atom.service]
        except KeyError:
            raise ReplayError(
                f"no live service for {atom.service} (needed to realize "
                f"{atom})") from None

    def parameters(self, witness: Witness) -> Tuple[Term, ...]:
        seeded = self.seeds.get(witness.atom)
        if seeded is not None:
            return tuple(seeded)
        head: Sequence[Term]
        edge = witness.edge
        if edge is not None and edge.kind == "activation":
            head = edge.rule.target.parameters  # type: ignore[attr-defined]
        elif edge is not None:
            head = edge.rule.parameters  # type: ignore[attr-defined]
        else:
            head = (Var("_"),) * witness.atom.arity
        return tuple(self.principal.id.value if isinstance(term, Var)
                     else term for term in head)

    def realize(self, witness: Witness) -> Any:
        atom = witness.atom
        if atom in self.memo:
            return self.memo[atom]
        if witness.mode != RULE:
            raise ReplayError(
                f"witness leaf {atom} is {witness.mode!r}: the derivation "
                "is not concrete within the live universe")
        for child in witness.children:
            self.realize(child)
        result = self._apply(witness)
        self.memo[atom] = result
        return result

    def _apply(self, witness: Witness) -> Any:
        atom = witness.atom
        service = self.service(atom)
        parameters = self.parameters(witness)
        if atom.kind == ROLE:
            if self.session is None:
                self.session = self.principal.start_session(
                    service, atom.name, parameters,
                    use_appointments=tuple(self.certificates),
                    environment=self.environment)
                return self.session.root_rmc
            return self.session.activate(
                service, atom.name, parameters,
                use_appointments=tuple(self.certificates),
                environment=self.environment)
        if self.session is None:
            raise ReplayError(
                f"cannot realize {atom} before any role is active: the "
                "witness has no initial role to bootstrap a session")
        if atom.kind == APPOINTMENT:
            certificate = self.session.issue_appointment(
                service, atom.name, parameters,
                holder=self.principal.id.value,
                environment=self.environment)
            self.principal.store_appointment(certificate)
            self.certificates.append(certificate)
            return certificate
        assert atom.kind == PRIVILEGE
        return self.session.invoke(
            service, atom.name, parameters,
            use_appointments=tuple(self.certificates),
            environment=self.environment)


def replay_witness(
    witness: Witness,
    services: Mapping[ServiceId, OasisService],
    *,
    seeds: Optional[Mapping[Atom, Sequence[Term]]] = None,
    environment: Optional[Dict[str, Any]] = None,
    principal_id: str = "probe",
) -> Any:
    """Realize ``witness`` bottom-up with one probe principal.

    Returns the realization of the root: the RMC for a role witness,
    the certificate for an appointment witness, or the method's return
    value for a privilege witness.  Raises :class:`ReplayError` when the
    witness is not concrete (external/assumed leaves) and propagates the
    runtime's denial exceptions untouched — a denial of a concrete
    witness is exactly the soundness violation the differential tests
    look for.
    """
    replayer = _Replayer(services, seeds or {}, environment, principal_id)
    return replayer.realize(witness)
