"""Whole-universe symbolic policy verification.

Compiles every service policy of a universe into one cross-service rule
graph (:mod:`.graph`), runs a Datalog-style least-fixpoint privilege-flow
analysis over abstract principal classes (:mod:`.fixpoint`), and checks
deployment-time properties — reachability, privilege escalation, static
revocation soundness, delegation-depth bounds — reporting refutations as
OAS1xx diagnostics with minimal witness derivation trees (:mod:`.witness`,
:mod:`.properties`).  Witnesses can be replayed against the live runtime
(:mod:`.replay`), which is how the differential soundness tests pin the
static analysis to the dynamic engine.
"""

from .fixpoint import FlowResult, run_fixpoint
from .graph import Atom, EdgeCondition, PolicyGraph, RuleEdge, build_graph
from .properties import (
    Property,
    PropertyError,
    VerificationReport,
    parse_class,
    parse_property,
    parse_ref,
    verify_universe,
)
from .replay import ReplayError, replay_witness
from .witness import (
    Witness,
    chain_depth,
    find_path_through,
    render,
    services_of,
    to_dict,
    uses_appointment_edge,
    witness_for,
)

__all__ = [
    "Atom",
    "EdgeCondition",
    "FlowResult",
    "PolicyGraph",
    "Property",
    "PropertyError",
    "ReplayError",
    "RuleEdge",
    "VerificationReport",
    "Witness",
    "build_graph",
    "chain_depth",
    "find_path_through",
    "parse_class",
    "parse_property",
    "parse_ref",
    "render",
    "replay_witness",
    "run_fixpoint",
    "services_of",
    "to_dict",
    "uses_appointment_edge",
    "verify_universe",
    "witness_for",
]
