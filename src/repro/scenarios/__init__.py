"""Reusable builders for the paper's scenarios.

Each builder assembles a complete, ready-to-drive cast on a
:class:`~repro.domains.Deployment`:

* :func:`build_hospital` / :func:`build_national_ehr` — the healthcare
  setting of Sect. 2/3 and Fig. 3;
* :func:`build_galleries` — reciprocal group membership (Sect. 5);
* :func:`build_clinic` — the anonymous genetic clinic (Sect. 5).

Examples and benchmarks start from these instead of re-declaring policy.
"""

from .healthcare import (
    GatewayHandle,
    HospitalScenario,
    NationalEhrScenario,
    build_hospital,
    build_national_ehr,
)
from .membership import (
    ClinicScenario,
    GalleryScenario,
    build_clinic,
    build_galleries,
)

__all__ = [
    "GatewayHandle",
    "HospitalScenario",
    "NationalEhrScenario",
    "ClinicScenario",
    "GalleryScenario",
    "build_hospital",
    "build_national_ehr",
    "build_clinic",
    "build_galleries",
]
