"""The paper's healthcare scenario, packaged as a reusable builder.

Builds, on a :class:`~repro.domains.Deployment`, the cast used throughout
the paper: a hospital domain (login, admin, records services with the
``treating_doctor(doc, pat)`` role) and optionally the national EHR domain
of Fig. 3 (registry + patient record management service).  Examples,
benchmarks and downstream experiments all start from here instead of
re-assembling policies by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.credentials import AppointmentCertificate, RoleMembershipCertificate
from ..core.rules import (
    ActivationRule,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    ConstraintCondition,
    PrerequisiteRole,
)
from ..core.constraints import DatabaseLookupConstraint
from ..core.policy import ServicePolicy
from ..core.service import OasisService, Presentation
from ..core.session import Principal, Session
from ..core.terms import Var
from ..core.types import RoleTemplate
from ..db import Database
from ..domains.domain import Deployment, Domain

__all__ = ["HospitalScenario", "NationalEhrScenario",
           "build_hospital", "build_national_ehr"]


@dataclass
class HospitalScenario:
    """A hospital domain with login/admin/records services."""

    deployment: Deployment
    domain: Domain
    db: Database
    login: OasisService
    admin: OasisService
    records: OasisService
    ehr_store: Dict[str, List[str]] = field(default_factory=dict)

    def register_patient(self, doctor_id: str, patient_id: str) -> None:
        self.db.insert("registered", doctor=doctor_id, patient=patient_id)

    def exclude_doctor(self, patient_id: str, doctor_id: str) -> None:
        """The Patients' Charter exception: an individual exclusion."""
        self.db.insert("excluded", patient=patient_id, doctor=doctor_id)

    def allocate(self, doctor_id: str, patient_id: str,
                 admin_id: str = "duty-admin",
                 expires_at: Optional[float] = None
                 ) -> AppointmentCertificate:
        """An administrator allocates a patient to a doctor (issues the
        ``allocated`` appointment certificate)."""
        administrator = Principal(admin_id)
        session = administrator.start_session(self.login, "logged_in_user",
                                              [admin_id])
        session.activate(self.admin, "administrator", [admin_id])
        return session.issue_appointment(
            self.admin, "allocated", [doctor_id, patient_id],
            holder=doctor_id, expires_at=expires_at)

    def admit_doctor(self, doctor_id: str, patient_id: str) -> Principal:
        """Register + allocate in one step; returns the doctor principal
        with the allocation certificate in its wallet."""
        self.register_patient(doctor_id, patient_id)
        doctor = Principal(doctor_id)
        doctor.store_appointment(self.allocate(doctor_id, patient_id))
        return doctor

    def treating_session(self, doctor: Principal) -> Session:
        """Log the doctor in and activate ``treating_doctor``."""
        session = doctor.start_session(self.login, "logged_in_user",
                                       [doctor.id.value])
        session.activate(self.records, "treating_doctor",
                         use_appointments=doctor.appointments("allocated"))
        return session


def build_hospital(deployment: Deployment,
                   domain_name: str = "hospital") -> HospitalScenario:
    """Assemble the hospital domain on ``deployment``."""
    domain = deployment.create_domain(domain_name)
    db = domain.create_database("main")
    db.create_table("registered", ["doctor", "patient"])
    db.create_table("excluded", ["patient", "doctor"])

    login_policy = ServicePolicy(domain.service_id("login"))
    logged_in = login_policy.define_role("logged_in_user", 1)
    login_policy.add_activation_rule(
        ActivationRule(RoleTemplate(logged_in, (Var("u"),))))
    login = domain.add_service(login_policy)

    admin_policy = ServicePolicy(domain.service_id("admin"))
    administrator = admin_policy.define_role("administrator", 1)
    admin_policy.add_activation_rule(ActivationRule(
        RoleTemplate(administrator, (Var("u"),)),
        (PrerequisiteRole(RoleTemplate(logged_in, (Var("u"),)),
                          membership=True),)))
    admin_policy.add_appointment_rule(AppointmentRule(
        "allocated", (Var("d"), Var("p")),
        (PrerequisiteRole(RoleTemplate(administrator, (Var("a"),))),)))
    admin = domain.add_service(admin_policy)

    records_policy = ServicePolicy(domain.service_id("records"))
    treating = records_policy.define_role("treating_doctor", 2)
    records_policy.add_activation_rule(ActivationRule(
        RoleTemplate(treating, (Var("d"), Var("p"))),
        (PrerequisiteRole(RoleTemplate(logged_in, (Var("d"),)),
                          membership=True),
         AppointmentCondition(admin.id, "allocated", (Var("d"), Var("p")),
                              membership=True),
         ConstraintCondition(DatabaseLookupConstraint.exists(
             "main", "registered", doctor=Var("d"), patient=Var("p")),
             membership=True))))
    records_policy.add_authorization_rule(AuthorizationRule(
        "read_record", (Var("p"),),
        (PrerequisiteRole(RoleTemplate(treating, (Var("d"), Var("p")))),
         ConstraintCondition(DatabaseLookupConstraint.not_exists(
             "main", "excluded", patient=Var("p"), doctor=Var("d"))))))
    records = domain.add_service(records_policy, databases={"main": db})

    scenario = HospitalScenario(deployment=deployment, domain=domain,
                                db=db, login=login, admin=admin,
                                records=records)
    records.register_method(
        "read_record",
        lambda pat: list(scenario.ehr_store.get(pat, [])))
    return scenario


@dataclass
class NationalEhrScenario:
    """The national EHR domain of Fig. 3, linked to one or more hospitals."""

    deployment: Deployment
    domain: Domain
    registry: OasisService
    patient_records: OasisService
    ehr_store: Dict[str, List[str]]
    gateways: Dict[str, "GatewayHandle"] = field(default_factory=dict)

    def accredit(self, hospital: HospitalScenario,
                 hospital_id: Optional[str] = None) -> "GatewayHandle":
        """Accredit a hospital; returns its live gateway handle."""
        hospital_id = hospital_id or hospital.domain.name
        registrar_session = Principal(f"registrar-{hospital_id}") \
            .start_session(self.registry, "registrar")
        accreditation = registrar_session.issue_appointment(
            self.registry, "accredited_hospital", [hospital_id],
            holder=f"gateway-{hospital_id}")
        gateway_principal = Principal(f"gateway-{hospital_id}")
        gateway_principal.store_appointment(accreditation)
        gateway_session = gateway_principal.start_session(
            self.patient_records, "hospital",
            use_appointments=[accreditation])
        handle = GatewayHandle(self, gateway_principal, gateway_session)
        self.gateways[hospital_id] = handle
        return handle


@dataclass
class GatewayHandle:
    """A hospital's EHR gateway: forwards doctors' requests nationally."""

    national: NationalEhrScenario
    principal: Principal
    session: Session

    def request_ehr(self, treating_rmc: RoleMembershipCertificate,
                    doctor_id: str, patient_id: str) -> List[str]:
        return self.national.patient_records.invoke(
            self.principal.id, "request_EHR", [patient_id],
            credentials=self._credentials(treating_rmc, doctor_id))

    def append_to_ehr(self, treating_rmc: RoleMembershipCertificate,
                      doctor_id: str, patient_id: str,
                      entry: str) -> str:
        return self.national.patient_records.invoke(
            self.principal.id, "append_to_EHR", [patient_id, entry],
            credentials=self._credentials(treating_rmc, doctor_id))

    def _credentials(self, treating_rmc: RoleMembershipCertificate,
                     doctor_id: str) -> List[Presentation]:
        return [Presentation(self.session.root_rmc),
                Presentation(treating_rmc, on_behalf_of=doctor_id)]


def build_national_ehr(deployment: Deployment,
                       hospitals: List[HospitalScenario],
                       domain_name: str = "national-ehr",
                       ) -> NationalEhrScenario:
    """Assemble the national EHR domain and accredit ``hospitals``."""
    domain = deployment.create_domain(domain_name)

    registry_policy = ServicePolicy(domain.service_id("registry"))
    registrar = registry_policy.define_role("registrar", 0)
    registry_policy.add_activation_rule(
        ActivationRule(RoleTemplate(registrar)))
    registry_policy.add_appointment_rule(AppointmentRule(
        "accredited_hospital", (Var("h"),),
        (PrerequisiteRole(RoleTemplate(registrar)),)))
    registry = domain.add_service(registry_policy)

    national_policy = ServicePolicy(domain.service_id("patient-records"))
    hospital_role = national_policy.define_role("hospital", 1)
    national_policy.add_activation_rule(ActivationRule(
        RoleTemplate(hospital_role, (Var("h"),)),
        (AppointmentCondition(registry.id, "accredited_hospital",
                              (Var("h"),), membership=True),)))
    for hospital in hospitals:
        treating_foreign = RoleTemplate(
            hospital.records.policy.define_role("treating_doctor", 2),
            (Var("d"), Var("p")))
        national_policy.add_authorization_rule(AuthorizationRule(
            "request_EHR", (Var("p"),),
            (PrerequisiteRole(RoleTemplate(hospital_role, (Var("h"),))),
             PrerequisiteRole(treating_foreign))))
        national_policy.add_authorization_rule(AuthorizationRule(
            "append_to_EHR", (Var("p"), Var("entry")),
            (PrerequisiteRole(RoleTemplate(hospital_role, (Var("h"),))),
             PrerequisiteRole(treating_foreign))))
    patient_records = domain.add_service(national_policy)

    ehr_store: Dict[str, List[str]] = {}
    patient_records.register_method(
        "request_EHR", lambda p: list(ehr_store.get(p, [])))
    patient_records.register_method(
        "append_to_EHR",
        lambda p, entry: ehr_store.setdefault(p, []).append(entry)
        or "done")

    scenario = NationalEhrScenario(
        deployment=deployment, domain=domain, registry=registry,
        patient_records=patient_records, ehr_store=ehr_store)
    for hospital in hospitals:
        scenario.accredit(hospital)
    return scenario
