"""The Sect. 5 membership scenarios: reciprocal galleries and the
anonymous clinic, packaged as reusable builders."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.constraints import BeforeDeadlineConstraint
from ..core.credentials import AppointmentCertificate
from ..core.rules import (
    ActivationRule,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    ConstraintCondition,
    PrerequisiteRole,
)
from ..core.policy import ServicePolicy
from ..core.service import OasisService
from ..core.session import Principal
from ..core.terms import Var
from ..core.types import RoleTemplate
from ..domains.domain import Deployment, Domain

__all__ = ["GalleryScenario", "ClinicScenario",
           "build_galleries", "build_clinic"]


@dataclass
class GalleryScenario:
    """The Tate galleries: one membership service, many galleries."""

    deployment: Deployment
    domain: Domain
    membership: OasisService
    galleries: Dict[str, OasisService] = field(default_factory=dict)

    def issue_card(self, expiry: float) -> AppointmentCertificate:
        """An anonymous membership card: organisation + period, no
        identity ("the identity of the principal is not needed if proof of
        membership is securely provable")."""
        desk_session = Principal("membership-desk").start_session(
            self.membership, "membership_desk")
        return desk_session.issue_appointment(
            self.membership, "friend_of_the_tate", [expiry])

    def cancel_card(self, card: AppointmentCertificate) -> bool:
        return self.membership.revoke(card.ref, "membership cancelled")


def build_galleries(deployment: Deployment,
                    gallery_names: Optional[List[str]] = None,
                    domain_name: str = "tate") -> GalleryScenario:
    """Assemble the membership service plus one service per gallery."""
    gallery_names = gallery_names or ["london", "st-ives", "liverpool"]
    domain = deployment.create_domain(domain_name)

    membership_policy = ServicePolicy(domain.service_id("membership"))
    desk = membership_policy.define_role("membership_desk", 0)
    membership_policy.add_activation_rule(ActivationRule(RoleTemplate(desk)))
    membership_policy.add_appointment_rule(AppointmentRule(
        "friend_of_the_tate", (Var("expiry"),),
        (PrerequisiteRole(RoleTemplate(desk)),)))
    membership = domain.add_service(membership_policy)

    scenario = GalleryScenario(deployment=deployment, domain=domain,
                               membership=membership)
    for name in gallery_names:
        policy = ServicePolicy(domain.service_id(name))
        friend = policy.define_role("friend", 0)
        policy.add_activation_rule(ActivationRule(
            RoleTemplate(friend),
            (AppointmentCondition(membership.id, "friend_of_the_tate",
                                  (Var("e"),), membership=True),
             ConstraintCondition(BeforeDeadlineConstraint(Var("e"))))))
        policy.add_authorization_rule(AuthorizationRule(
            "newsletter", (), (PrerequisiteRole(RoleTemplate(friend)),)))
        gallery = domain.add_service(policy)
        gallery.register_method("newsletter",
                                lambda n=name: f"{n} newsletter")
        scenario.galleries[name] = gallery
    return scenario


@dataclass
class ClinicScenario:
    """The anonymous genetic clinic with its insurer (Sect. 5)."""

    deployment: Deployment
    insurer: OasisService
    clinic: OasisService
    tests_performed: List[str] = field(default_factory=list)

    def enrol_member(self, expiry: float) -> AppointmentCertificate:
        """The insurer issues an anonymous membership card."""
        desk = Principal("enrolment-desk").start_session(self.insurer,
                                                         "enrolment_desk")
        return desk.issue_appointment(self.insurer, "insured", [expiry])


def build_clinic(deployment: Deployment,
                 insurer_domain: str = "insurer",
                 clinic_domain: str = "clinic") -> ClinicScenario:
    insurer_dom = deployment.create_domain(insurer_domain)
    clinic_dom = deployment.create_domain(clinic_domain)

    insurer_policy = ServicePolicy(insurer_dom.service_id("membership"))
    desk = insurer_policy.define_role("enrolment_desk", 0)
    insurer_policy.add_activation_rule(ActivationRule(RoleTemplate(desk)))
    insurer_policy.add_appointment_rule(AppointmentRule(
        "insured", (Var("expiry"),),
        (PrerequisiteRole(RoleTemplate(desk)),)))
    insurer = insurer_dom.add_service(insurer_policy)

    clinic_policy = ServicePolicy(clinic_dom.service_id("genetics"))
    patient = clinic_policy.define_role("paid_up_patient", 0)
    clinic_policy.add_activation_rule(ActivationRule(
        RoleTemplate(patient),
        (AppointmentCondition(insurer.id, "insured", (Var("e"),),
                              membership=True),
         ConstraintCondition(BeforeDeadlineConstraint(Var("e"))))))
    clinic_policy.add_authorization_rule(AuthorizationRule(
        "take_genetic_test", (),
        (PrerequisiteRole(RoleTemplate(patient)),)))
    clinic = clinic_dom.add_service(clinic_policy)

    scenario = ClinicScenario(deployment=deployment, insurer=insurer,
                              clinic=clinic)
    clinic.register_method(
        "take_genetic_test",
        lambda: scenario.tests_performed.append("test")
        or "results sealed for patient")
    return scenario
