"""Flat RBAC baselines: RBAC0 and hierarchical RBAC1 (Sandhu et al. 1996).

These are the "other RBAC schemes" of the paper's related work [15]: roles
are *global, unparametrised* names; users are assigned to roles, and
permissions to roles.  RBAC1 adds a role hierarchy with permission
inheritance.

The contrast the benchmarks draw (Sect. 2 of the paper): pure RBAC
"associates privileges only with roles, whereas applications often require
more fine-grained access control".  To express "doctors may access the
records of patients registered with them" without parametrised roles, an
RBAC0 deployment needs one role *per doctor-patient relationship* (or one
permission per record per doctor), and exceptions ("Fred Smith may not
access my record") force even finer splitting.  The admin-cost meters make
that blow-up measurable.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

__all__ = ["Rbac0System", "Rbac1System"]

Permission = Tuple[str, str]  # (operation, object)


class Rbac0System:
    """RBAC0: users, roles, permissions, sessions — no hierarchy."""

    def __init__(self) -> None:
        self._user_roles: Dict[str, Set[str]] = {}
        self._role_permissions: Dict[str, Set[Permission]] = {}
        self._sessions: Dict[str, Set[str]] = {}
        self.admin_operations = 0

    # -- administration ----------------------------------------------------
    def add_role(self, role: str) -> None:
        if role in self._role_permissions:
            raise ValueError(f"role {role!r} already exists")
        self._role_permissions[role] = set()
        self.admin_operations += 1

    def has_role(self, role: str) -> bool:
        return role in self._role_permissions

    def assign_user(self, user: str, role: str) -> None:
        self._require_role(role)
        roles = self._user_roles.setdefault(user, set())
        if role not in roles:
            roles.add(role)
            self.admin_operations += 1

    def deassign_user(self, user: str, role: str) -> bool:
        roles = self._user_roles.get(user, set())
        if role in roles:
            roles.remove(role)
            self.admin_operations += 1
            # RBAC96: deassignment invalidates the role in live sessions.
            for active in self._sessions.values():
                active.discard(role)
            return True
        return False

    def grant_permission(self, role: str, operation: str, obj: str) -> None:
        self._require_role(role)
        permissions = self._role_permissions[role]
        permission = (operation, obj)
        if permission not in permissions:
            permissions.add(permission)
            self.admin_operations += 1

    def revoke_permission(self, role: str, operation: str, obj: str) -> bool:
        permissions = self._role_permissions.get(role, set())
        permission = (operation, obj)
        if permission in permissions:
            permissions.remove(permission)
            self.admin_operations += 1
            return True
        return False

    def remove_user(self, user: str) -> int:
        """Offboard a user; returns assignments removed."""
        roles = self._user_roles.pop(user, set())
        self.admin_operations += len(roles)
        self._sessions.pop(user, None)
        return len(roles)

    # -- sessions and checking ----------------------------------------------
    def start_session(self, user: str, roles: Set[str]) -> None:
        assigned = self._user_roles.get(user, set())
        illegal = roles - assigned
        if illegal:
            raise PermissionError(
                f"user {user!r} not assigned roles {sorted(illegal)}")
        self._sessions[user] = set(roles)

    def check(self, user: str, operation: str, obj: str) -> bool:
        active = self._sessions.get(user, set())
        permission = (operation, obj)
        return any(permission in self._role_permissions.get(role, set())
                   for role in self._effective_roles(active))

    def _effective_roles(self, active: Set[str]) -> Set[str]:
        return active

    def _require_role(self, role: str) -> None:
        if role not in self._role_permissions:
            raise KeyError(f"no role {role!r}")

    @property
    def role_count(self) -> int:
        return len(self._role_permissions)

    @property
    def permission_assignment_count(self) -> int:
        return sum(len(p) for p in self._role_permissions.values())


class Rbac1System(Rbac0System):
    """RBAC1: RBAC0 plus a role hierarchy with permission inheritance.

    ``add_inheritance(senior, junior)`` lets the senior role exercise the
    junior's permissions.  The hierarchy must stay acyclic.
    """

    def __init__(self) -> None:
        super().__init__()
        self._juniors: Dict[str, Set[str]] = {}

    def add_inheritance(self, senior: str, junior: str) -> None:
        self._require_role(senior)
        self._require_role(junior)
        if senior == junior or senior in self._closure(junior):
            raise ValueError(
                f"inheritance {senior} -> {junior} would create a cycle")
        self._juniors.setdefault(senior, set()).add(junior)
        self.admin_operations += 1

    def _closure(self, role: str) -> Set[str]:
        seen: Set[str] = set()
        frontier = [role]
        while frontier:
            current = frontier.pop()
            for junior in self._juniors.get(current, set()):
                if junior not in seen:
                    seen.add(junior)
                    frontier.append(junior)
        return seen

    def _effective_roles(self, active: Set[str]) -> Set[str]:
        effective = set(active)
        for role in active:
            effective |= self._closure(role)
        return effective
