"""Access-control-list baseline.

Sect. 1: "RBAC ... provides a means of expressing access control which is
scalable to large numbers of principals.  The detailed management of large
numbers of access control lists, as people change their employment or
function, is avoided."  This module is the strawman being avoided: a
classic per-object ACL store with explicit (principal, permission) entries.

The point of the baseline is *administrative cost*: every policy-relevant
change (a doctor hired, a patient reassigned) translates into per-object
entry updates, counted in :attr:`AclSystem.admin_operations` and compared
against OASIS in ``benchmarks/bench_baselines.py``.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

__all__ = ["AclSystem"]


class AclSystem:
    """Per-object access control lists with an admin-cost meter."""

    def __init__(self) -> None:
        self._acls: Dict[str, Set[Tuple[str, str]]] = {}
        self.admin_operations = 0

    def create_object(self, obj: str) -> None:
        if obj in self._acls:
            raise ValueError(f"object {obj!r} already exists")
        self._acls[obj] = set()
        self.admin_operations += 1

    def grant(self, principal: str, obj: str, permission: str) -> None:
        """Add an ACL entry; one administrative operation."""
        if obj not in self._acls:
            raise KeyError(f"no object {obj!r}")
        entry = (principal, permission)
        if entry not in self._acls[obj]:
            self._acls[obj].add(entry)
            self.admin_operations += 1

    def revoke(self, principal: str, obj: str, permission: str) -> bool:
        """Remove an ACL entry; one administrative operation."""
        entries = self._acls.get(obj, set())
        entry = (principal, permission)
        if entry in entries:
            entries.remove(entry)
            self.admin_operations += 1
            return True
        return False

    def revoke_principal_everywhere(self, principal: str) -> int:
        """Remove a departing principal from every object's ACL.

        This is the management burden the paper cites: the cost is linear
        in the number of objects the principal could access.
        """
        removed = 0
        for entries in self._acls.values():
            stale = [entry for entry in entries if entry[0] == principal]
            for entry in stale:
                entries.remove(entry)
                removed += 1
        self.admin_operations += removed
        return removed

    def check(self, principal: str, obj: str, permission: str) -> bool:
        return (principal, permission) in self._acls.get(obj, set())

    @property
    def entry_count(self) -> int:
        return sum(len(entries) for entries in self._acls.values())

    @property
    def object_count(self) -> int:
        return len(self._acls)
