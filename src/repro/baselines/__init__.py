"""Baseline access-control schemes OASIS is compared against.

* :class:`AclSystem` — per-object access control lists;
* :class:`Rbac0System` / :class:`Rbac1System` — flat and hierarchical RBAC
  (Sandhu et al., the paper's ref [15]);
* :class:`DelegationSystem` — RBDM0-style user-to-user delegation (refs
  [3, 4]), the mechanism OASIS replaces with appointment;
* :class:`PollingValidator` — periodic-polling revocation, the design the
  event-based architecture avoids.
"""

from .acl import AclSystem
from .rbac import Rbac0System, Rbac1System
from .delegation import DelegationError, DelegationSystem
from .polling import PollingValidator

__all__ = [
    "AclSystem",
    "Rbac0System",
    "Rbac1System",
    "DelegationError",
    "DelegationSystem",
    "PollingValidator",
]
