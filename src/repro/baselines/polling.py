"""Polling-based revocation baseline for FIG5/ABL1.

The paper's active architecture notifies services of credential revocation
over event channels "without any requirement for periodic polling"
(Sect. 4).  This baseline is the alternative being avoided: a validator
that re-checks cached validations by callback every ``interval`` simulated
seconds.  Between polls a revoked credential is still honoured — the
*staleness window* — and every poll costs callbacks whether anything
changed or not.

``benchmarks/bench_fig5_active_revocation.py`` drives both designs over the
same revocation workload and reports staleness and message cost.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.credentials import CredentialRef
from ..core.service import OasisService
from ..net import Scheduler

__all__ = ["PollingValidator"]


class PollingValidator:
    """Caches validity of credentials, refreshed only by periodic polling."""

    def __init__(self, scheduler: Scheduler, interval: float,
                 lookup: Callable[[CredentialRef], OasisService]) -> None:
        if interval <= 0:
            raise ValueError("polling interval must be positive")
        self.interval = interval
        self._scheduler = scheduler
        self._lookup = lookup
        self._valid: Dict[CredentialRef, bool] = {}
        self.polls = 0
        self.callbacks_made = 0
        self._cancel: Optional[Callable[[], None]] = None

    def start(self) -> None:
        if self._cancel is not None:
            return
        self._cancel = self._scheduler.schedule_periodic(
            self.interval, self.poll_now)

    def stop(self) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None

    def watch(self, ref: CredentialRef) -> None:
        """Track a credential; validity is refreshed on the next poll."""
        self._valid[ref] = self._check(ref)

    def is_valid(self, ref: CredentialRef) -> bool:
        """Answer from the cache — stale until the next poll."""
        return self._valid.get(ref, False)

    def poll_now(self) -> None:
        """One polling sweep: callback per watched credential."""
        self.polls += 1
        for ref in list(self._valid):
            self._valid[ref] = self._check(ref)

    def _check(self, ref: CredentialRef) -> bool:
        self.callbacks_made += 1
        issuer = self._lookup(ref)
        return issuer.is_active(ref)
