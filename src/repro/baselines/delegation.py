"""Role-based delegation baseline (Barka & Sandhu's RBDM0 shape, refs [3,4]).

The paper rejects privilege delegation in favour of appointment: "there is
no reason why the holder of the appointer role should be entitled to the
privileges conferred by the certificates".  This baseline implements what
OASIS rejects, so the difference is testable:

* in RBDM0-style delegation, a delegator must be a *member of the role
  being delegated* — the hospital administrator cannot give out the
  ``doctor`` role without being a doctor;
* delegation chains are bounded by a depth limit and revocation cascades
  down the chain.

``can_appoint_without_membership`` always returns False here and True for
OASIS appointment — the behavioural distinction
``tests/baselines/test_delegation.py`` and the BASE benchmark pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

__all__ = ["DelegationSystem", "DelegationError"]


class DelegationError(PermissionError):
    """An illegal delegation (non-member delegator, depth exceeded...)."""


@dataclass
class _Delegation:
    role: str
    delegator: str
    delegatee: str
    depth: int


class DelegationSystem:
    """User-to-user delegation of role membership with cascade revocation."""

    def __init__(self, max_depth: int = 2) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.max_depth = max_depth
        self._original_members: Dict[str, Set[str]] = {}
        self._delegations: List[_Delegation] = []
        self.admin_operations = 0

    # -- membership administration -------------------------------------------
    def add_role(self, role: str) -> None:
        if role in self._original_members:
            raise ValueError(f"role {role!r} already exists")
        self._original_members[role] = set()
        self.admin_operations += 1

    def assign(self, user: str, role: str) -> None:
        """Make ``user`` an original member of ``role``."""
        self._require_role(role)
        members = self._original_members[role]
        if user not in members:
            members.add(user)
            self.admin_operations += 1

    def is_member(self, user: str, role: str) -> bool:
        """Membership through original assignment or a live delegation."""
        self._require_role(role)
        if user in self._original_members[role]:
            return True
        return any(d.role == role and d.delegatee == user
                   for d in self._delegations)

    # -- delegation ------------------------------------------------------------
    def can_appoint_without_membership(self) -> bool:
        """The structural difference from OASIS appointment: always False.

        A delegator must hold the role it hands on.  OASIS appointment has
        no such coupling — the appointer's role merely carries the right to
        issue the certificate.
        """
        return False

    def delegate(self, delegator: str, delegatee: str, role: str) -> None:
        """Delegate role membership; delegator must be a member."""
        self._require_role(role)
        if not self.is_member(delegator, role):
            raise DelegationError(
                f"{delegator!r} is not a member of {role!r} and so cannot "
                f"delegate it (contrast: OASIS appointment)")
        depth = self._depth_of(delegator, role) + 1
        if depth > self.max_depth:
            raise DelegationError(
                f"delegation depth {depth} exceeds limit {self.max_depth}")
        if self.is_member(delegatee, role):
            raise DelegationError(
                f"{delegatee!r} is already a member of {role!r}")
        self._delegations.append(
            _Delegation(role, delegator, delegatee, depth))
        self.admin_operations += 1

    def _depth_of(self, user: str, role: str) -> int:
        if user in self._original_members.get(role, set()):
            return 0
        for delegation in self._delegations:
            if delegation.role == role and delegation.delegatee == user:
                return delegation.depth
        raise DelegationError(f"{user!r} is not a member of {role!r}")

    def revoke_delegation(self, delegator: str, delegatee: str,
                          role: str) -> bool:
        """Revoke one delegation; cascades to sub-delegations."""
        found = [d for d in self._delegations
                 if (d.role, d.delegator, d.delegatee)
                 == (role, delegator, delegatee)]
        if not found:
            return False
        self._remove_cascading(found[0])
        return True

    def _remove_cascading(self, delegation: _Delegation) -> None:
        self._delegations.remove(delegation)
        self.admin_operations += 1
        children = [d for d in self._delegations
                    if d.role == delegation.role
                    and d.delegator == delegation.delegatee]
        for child in children:
            self._remove_cascading(child)

    def deassign(self, user: str, role: str) -> None:
        """Remove an original member; their delegations cascade away."""
        self._require_role(role)
        members = self._original_members[role]
        if user in members:
            members.remove(user)
            self.admin_operations += 1
            children = [d for d in self._delegations
                        if d.role == role and d.delegator == user]
            for child in children:
                self._remove_cascading(child)

    def delegation_count(self, role: Optional[str] = None) -> int:
        if role is None:
            return len(self._delegations)
        return sum(1 for d in self._delegations if d.role == role)

    def _require_role(self, role: str) -> None:
        if role not in self._original_members:
            raise KeyError(f"no role {role!r}")
