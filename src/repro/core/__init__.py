"""The OASIS access control model and architecture — the paper's contribution.

Public API tour:

* identities and roles — :mod:`repro.core.types`;
* Horn-clause rules with membership flags — :mod:`repro.core.rules`;
* environmental constraints — :mod:`repro.core.constraints`;
* per-service policy — :mod:`repro.core.policy`;
* certificates (RMC / appointment) and credential records —
  :mod:`repro.core.credentials`;
* the secured service with callback validation, caching and the Fig. 5
  revocation cascade — :mod:`repro.core.service`;
* client-side sessions and principals — :mod:`repro.core.session`;
* audit certificates and the web of trust — :mod:`repro.core.audit`.
"""

from .terms import (
    EMPTY_SUBSTITUTION,
    Substitution,
    Term,
    Var,
    fresh_var,
    is_ground,
    unify,
    unify_sequences,
    variables_in,
)
from .types import (
    PrincipalId,
    Privilege,
    Role,
    RoleName,
    RoleTemplate,
    ServiceId,
)
from .exceptions import (
    ActivationDenied,
    AppointmentDenied,
    CredentialError,
    CredentialExpired,
    CredentialInvalid,
    CredentialRevoked,
    InvocationDenied,
    OasisError,
    PolicyError,
    SessionError,
    SignatureInvalid,
    UnknownMethod,
    UnknownRole,
)
from .constraints import (
    BeforeDeadlineConstraint,
    ComparisonConstraint,
    ConstraintRegistry,
    DatabaseLookupConstraint,
    EnvironmentEquals,
    EnvironmentalConstraint,
    EvaluationContext,
    NotBeforeConstraint,
    PredicateConstraint,
    TimeWindowConstraint,
)
from .rules import (
    ActivationRule,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    Condition,
    ConstraintCondition,
    PrerequisiteRole,
    SourceSpan,
)
from .policy import ServicePolicy
from .credentials import (
    AppointmentCertificate,
    CredentialRecord,
    CredentialRef,
    CredentialRefAllocator,
    CredentialStatus,
    RoleMembershipCertificate,
)
from .engine import (
    CredentialIndex,
    MatchedCondition,
    PresentedCredential,
    RuleEngine,
    RuleMatch,
)
from .service import (
    ActivationRequest,
    OasisService,
    Presentation,
    ServiceRegistry,
    ServiceStats,
    VALIDATE_ENDPOINT,
)
from .state import (
    RecoveredState,
    ServiceState,
    ServiceStateCodec,
)
from .session import Principal, Session
from .access_log import AccessLog, AccessRecord
from .access_log import AccessKind
from .wire import (
    WireError,
    decode_certificate,
    decode_term,
    encode_certificate,
    encode_term,
)
from .audit import (
    AuditCertificate,
    InteractionHistory,
    Outcome,
    TrustDecision,
    TrustEvaluator,
    TrustPolicy,
)

__all__ = [
    # terms
    "EMPTY_SUBSTITUTION", "Substitution", "Term", "Var", "fresh_var",
    "is_ground", "unify", "unify_sequences", "variables_in",
    # types
    "PrincipalId", "Privilege", "Role", "RoleName", "RoleTemplate",
    "ServiceId",
    # exceptions
    "ActivationDenied", "AppointmentDenied", "CredentialError",
    "CredentialExpired", "CredentialInvalid", "CredentialRevoked",
    "InvocationDenied", "OasisError", "PolicyError", "SessionError",
    "SignatureInvalid", "UnknownMethod", "UnknownRole",
    # constraints
    "BeforeDeadlineConstraint", "ComparisonConstraint", "ConstraintRegistry",
    "DatabaseLookupConstraint", "EnvironmentEquals",
    "EnvironmentalConstraint", "EvaluationContext", "NotBeforeConstraint",
    "PredicateConstraint", "TimeWindowConstraint",
    # rules
    "ActivationRule", "AppointmentCondition", "AppointmentRule",
    "AuthorizationRule", "Condition", "ConstraintCondition",
    "PrerequisiteRole", "SourceSpan",
    # policy
    "ServicePolicy",
    # credentials
    "AppointmentCertificate", "CredentialRecord", "CredentialRef",
    "CredentialRefAllocator", "CredentialStatus",
    "RoleMembershipCertificate",
    # engine
    "CredentialIndex", "MatchedCondition", "PresentedCredential",
    "RuleEngine", "RuleMatch",
    # service
    "ActivationRequest", "OasisService", "Presentation",
    "ServiceRegistry", "ServiceStats",
    "VALIDATE_ENDPOINT",
    # state core
    "RecoveredState", "ServiceState", "ServiceStateCodec",
    # session
    "Principal", "Session",
    # access log
    "AccessKind", "AccessLog", "AccessRecord",
    # wire format
    "WireError", "decode_certificate", "decode_term",
    "encode_certificate", "encode_term",
    # audit
    "AuditCertificate", "InteractionHistory", "Outcome", "TrustDecision",
    "TrustEvaluator", "TrustPolicy",
]
