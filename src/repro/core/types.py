"""Core identity and role types of the OASIS model.

Roles in OASIS are *service-specific* and *parametrised* (Sect. 2).  A
:class:`RoleTemplate` is a role as named in a service's policy — a name plus
formal parameter names; a :class:`Role` is a ground instance held by a
principal, e.g. ``treating_doctor(doctor_id="d1", patient_id="p7")``.

Principals are identified by an opaque :class:`PrincipalId`; services by a
:class:`ServiceId` which is qualified by the domain that hosts the service.
Nothing in the core model assumes a global name space — two services may each
define a role called ``doctor`` and they are distinct roles, as the paper
requires ("there is no notion of globally centralised administration of role
naming").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from .terms import DATACLASS_SLOTS, Term, Var, intern_pool, is_ground

__all__ = [
    "PrincipalId",
    "ServiceId",
    "RoleName",
    "RoleTemplate",
    "Role",
    "Privilege",
]


@dataclass(frozen=True, order=True, **DATACLASS_SLOTS)
class PrincipalId:
    """Opaque identifier of a principal (a user or computational entity).

    Slotted but *not* interned: the principal population is unbounded (a
    million-principal world holds a million of these), so a canonicalizing
    pool would pin them all for the life of the process.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise ValueError("principal id must be non-empty")

    def __str__(self) -> str:
        return self.value


#: Canonicalizing pools for the two bounded-population identity types.
#: See :class:`repro.core.terms.InternPool` for why these never invalidate.
_SERVICE_POOL = intern_pool("service_id")
_ROLE_NAME_POOL = intern_pool("role_name")


@dataclass(frozen=True, order=True, **DATACLASS_SLOTS)
class ServiceId:
    """Identifier of a service, qualified by its administrative domain.

    Instances are *interned*: ``ServiceId(d, n)`` returns the one canonical
    instance for ``(d, n)``, so the million certificates of a scale world
    share S service-id objects rather than each carrying its own.  Pickling
    and deep-copying route through :meth:`__reduce__` and therefore re-enter
    the pool — a round-tripped id is identical (``is``) to the canonical
    one, which the multiprocessing sharding work depends on.
    """

    domain: str
    name: str
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __new__(cls, domain: str = "", name: str = "") -> "ServiceId":
        if cls is not ServiceId:  # subclasses manage their own identity
            return object.__new__(cls)
        if not domain or not name:
            raise ValueError("service id needs both domain and name")
        pool = _SERVICE_POOL
        cached = pool._pool.get((domain, name))
        if cached is not None:
            pool.hits += 1
            return cached
        pool.misses += 1
        instance = object.__new__(cls)
        pool._pool[(domain, name)] = instance
        return instance

    def __post_init__(self) -> None:
        if not self.domain or not self.name:
            raise ValueError("service id needs both domain and name")
        # Cached: service ids key credential-index buckets, registries and
        # caches on every request, and the fields are immutable.
        object.__setattr__(self, "_hash", hash((self.domain, self.name)))

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through the constructor (not raw state) so unpickled /
        # deep-copied ids intern back to the canonical instance.
        return (ServiceId, (self.domain, self.name))

    def __str__(self) -> str:
        return f"{self.domain}/{self.name}"


@dataclass(frozen=True, order=True, **DATACLASS_SLOTS)
class RoleName:
    """A role name as defined by one specific service.

    Role names are only meaningful relative to the defining service: the pair
    ``(service, name)`` is the identity.  Interned like :class:`ServiceId`
    (role-name population is bounded by policy size, not by principals).
    """

    service: ServiceId
    name: str
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __new__(cls, service: ServiceId = None,  # type: ignore[assignment]
                name: str = "") -> "RoleName":
        if cls is not RoleName:
            return object.__new__(cls)
        if not name:
            raise ValueError("role name must be non-empty")
        pool = _ROLE_NAME_POOL
        cached = pool._pool.get((service, name))
        if cached is not None:
            pool.hits += 1
            return cached
        pool.misses += 1
        instance = object.__new__(cls)
        pool._pool[(service, name)] = instance
        return instance

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("role name must be non-empty")
        # Cached for the same reason as ServiceId (nested dataclass hashing
        # is otherwise recomputed on every index lookup).
        object.__setattr__(self, "_hash", hash((self.service, self.name)))

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (RoleName, (self.service, self.name))

    def __str__(self) -> str:
        return f"{self.service}:{self.name}"


@dataclass(frozen=True, **DATACLASS_SLOTS)
class RoleTemplate:
    """A parametrised role as written in policy: name + formal parameters.

    ``parameters`` holds :class:`~repro.core.terms.Term` values; in policy
    they are usually variables (``Var("doc")``) but constants are allowed to
    pin a parameter, e.g. ``hospital("addenbrookes")``.
    """

    role_name: RoleName
    parameters: Tuple[Term, ...] = field(default=())

    @property
    def arity(self) -> int:
        return len(self.parameters)

    def instantiate(self, *values: Term) -> "Role":
        """Build a ground :class:`Role` from positional parameter values."""
        if len(values) != len(self.parameters):
            raise ValueError(
                f"{self.role_name} expects {len(self.parameters)} parameters, "
                f"got {len(values)}")
        role = Role(self.role_name, tuple(values))
        return role

    def __str__(self) -> str:
        if not self.parameters:
            return str(self.role_name)
        params = ", ".join(repr(p) for p in self.parameters)
        return f"{self.role_name}({params})"


@dataclass(frozen=True, **DATACLASS_SLOTS)
class Role:
    """A ground (fully instantiated) role held by some principal.

    Instances are immutable and hashable so they can key credential records
    and appear in session dependency trees.  One instance is resident per
    live membership certificate, so the class is slotted — unlike service
    and role-name identifiers it is *not* interned (its parameters embed
    per-principal values, an unbounded population).
    """

    role_name: RoleName
    parameters: Tuple[Term, ...] = field(default=())

    def __post_init__(self) -> None:
        for param in self.parameters:
            if isinstance(param, Var) or not is_ground(param):
                raise ValueError(
                    f"role instance {self.role_name} has non-ground "
                    f"parameter {param!r}")

    @property
    def arity(self) -> int:
        return len(self.parameters)

    @property
    def service(self) -> ServiceId:
        return self.role_name.service

    def matches_template(self, template: RoleTemplate) -> bool:
        """True when this instance has the template's name and arity."""
        return (self.role_name == template.role_name
                and self.arity == template.arity)

    def __str__(self) -> str:
        if not self.parameters:
            return str(self.role_name)
        params = ", ".join(repr(p) for p in self.parameters)
        return f"{self.role_name}({params})"


@dataclass(frozen=True, order=True, **DATACLASS_SLOTS)
class Privilege:
    """A named privilege — the right to invoke a method at a service.

    In OASIS "roles convey privileges; specifically, the privilege of method
    invocation (including object access) at services" (Sect. 2).  A privilege
    is therefore a method name at a service; object-level restrictions are
    expressed through rule parameters and environmental constraints rather
    than through the privilege itself.
    """

    service: ServiceId
    method: str

    def __post_init__(self) -> None:
        if not self.method:
            raise ValueError("privilege method must be non-empty")

    def __str__(self) -> str:
        return f"{self.service}.{self.method}"
