"""The service state core: issuer-side security state over a record store.

This module is the seam the multi-layer refactor carved out of
``OasisService``: every piece of state a service must not lose — the
credential records of Fig. 4, the reverse-dependency index the Fig. 5
cascade traverses, the validation-cache keys backing ECR proxies, and the
session liveness derivable from records — lives in a
:class:`ServiceState` and mutates through it, as operations against the
keyed-record storage interface of :mod:`repro.db.kv`.

Three buckets hold everything:

* ``records`` — ``CRR qualified string -> CredentialRecord`` (encoded via
  :class:`ServiceStateCodec` on serialising backends).  Revoked records
  are *kept*, so a restarted issuer answers callback validation for a dead
  credential with ``CredentialRevoked`` (reason preserved) rather than a
  generic "unknown credential".
* ``validation`` — one entry per cached foreign credential: the
  ``(requester, holder)`` pairs whose callback validation succeeded, so a
  restart can rebuild the cache *and* its ECR subscriptions.
* ``meta`` — the service secret (certificates must keep verifying across a
  restart) and small recovery bookkeeping.

The transient caches (signature-verification cache, membership-constraint
watches) are deliberately **not** persisted: both are pure re-computation
(a MAC check; a rule-match re-evaluation at next activation) and holding
them durable would buy nothing but serialisation cost.

Crash-consistency protocol (see docs/persistence.md): a revocation
cascade's events are journalled to the store's append log with one durable
``{"op": "cascade", "events": [...]}`` entry *before* any flipped record
is mirrored to the store and before the broker publishes anything (the
mirror can auto-flush the write-behind buffer, so journal-first is what
keeps every durable REVOKED record covered by a replayable log entry),
and a ``{"op": "cascade-done"}`` marker lands after the batch drains.
:meth:`ServiceState.load` replays the log tail — applying every journalled
revocation to the rebuilt records — and surfaces cascades that never
reached their done marker so the service can re-emit them
(``OasisService.replay_pending``).  Credential-record writes themselves
are write-behind: an activation that never reached a flush is lost on a
crash, which is safe because certificate checking fails closed (no record
=> invalid), and serial watermark reservation (``serial-reserve`` log
entries) guarantees the resumed allocator never re-issues a lost CRR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..crypto.hmac_sig import ServiceSecret
from ..db.kv import RecordStore, StoreCodec
from ..events import Event
from .credentials import CredentialRecord, CredentialRef, CredentialStatus
from .rules import ConstraintCondition
from .terms import Substitution
from .types import PrincipalId, ServiceId

__all__ = [
    "RECORDS",
    "VALIDATION",
    "META",
    "ServiceStateCodec",
    "ServiceState",
    "RecoveredState",
    "ref_payload",
    "ref_from_payload",
]

#: Bucket names of the keyed-record store.
RECORDS = "records"
VALIDATION = "validation"
META = "meta"

#: Reverse-dependency buckets stay plain lists up to this many dependents,
#: then promote to an ordered dict (O(1) unlink for high-fanout parents).
EDGE_LIST_MAX = 8

#: CRR serials are reserved from the durable log in blocks of this size;
#: one durable append buys this many memory-speed allocations.
SERIAL_RESERVE = 1024


def ref_payload(ref: CredentialRef) -> Dict[str, Any]:
    """A JSON-able encoding of a CRR (no string parsing on decode)."""
    return {"domain": ref.service.domain, "service": ref.service.name,
            "serial": ref.serial}


def ref_from_payload(payload: Dict[str, Any]) -> CredentialRef:
    return CredentialRef(
        ServiceId(payload["domain"], payload["service"]), payload["serial"])


class ServiceStateCodec(StoreCodec):
    """Encodes service-state bucket values for serialising backends.

    Only the ``records`` bucket holds rich objects; ``validation`` and
    ``meta`` values are already JSON-able dicts and pass through.
    """

    def encode(self, bucket: str, value: Any) -> Any:
        if bucket != RECORDS:
            return value
        record: CredentialRecord = value
        return {
            "ref": ref_payload(record.ref),
            "kind": record.kind,
            "principal": (record.principal.value
                          if record.principal is not None else None),
            "issued_at": record.issued_at,
            "status": record.status,
            "revoked_reason": record.revoked_reason,
            "revoked_at": record.revoked_at,
            "dependencies": [ref_payload(dep)
                             for dep in record.membership_dependencies],
            "session_id": record.session_id,
        }

    def decode(self, bucket: str, payload: Any) -> Any:
        if bucket != RECORDS:
            return payload
        principal = payload.get("principal")
        return CredentialRecord(
            ref=ref_from_payload(payload["ref"]),
            kind=payload["kind"],
            principal=PrincipalId(principal) if principal else None,
            issued_at=payload["issued_at"],
            status=payload.get("status", CredentialStatus.ACTIVE),
            revoked_reason=payload.get("revoked_reason"),
            revoked_at=payload.get("revoked_at"),
            membership_dependencies=tuple(
                ref_from_payload(dep)
                for dep in payload.get("dependencies", ())),
            session_id=payload.get("session_id"))


@dataclass
class _MembershipWatch:
    """Per-credential record of membership constraints to re-check."""

    ref: CredentialRef
    constraints: Tuple[ConstraintCondition, ...]
    substitution: Substitution
    environment: Dict[str, Any]
    watched_tables: Set[Tuple[str, str]] = field(default_factory=set)


@dataclass
class RecoveredState:
    """What :meth:`ServiceState.load` rebuilt and found in the log tail."""

    #: Highest CRR serial that must never be re-allocated.
    max_serial: int
    #: Foreign refs whose validation-cache entries were restored (the
    #: service re-creates one ECR subscription pair per ref).
    validation_refs: List[CredentialRef]
    #: Journalled revocations applied during replay, in log order — each
    #: is ``(record-or-None, event)`` for exactly the events of cascades
    #: that never reached their done marker (their in-memory audit entries
    #: died with the process; the service re-audits them).
    interrupted_revocations: List[Tuple[Optional[CredentialRecord], Event]]
    #: Cascades awaiting re-emission: ``(log seq, [Event, ...])``.
    pending_cascades: List[Tuple[int, List[Event]]]


class ServiceState:
    """Mutable security state of one service, mirrored to a record store.

    The dicts here are the service's *live* working set — the hot paths
    read them directly (the service aliases them at construction, so a
    storeless service is bit-identical to the pre-refactor layout).  Every
    *mutation* flows through a method below, which keeps the attached
    store in sync: reference-cheap ``put``s for the in-memory backend,
    write-behind buffering for SQLite.  ``store=None`` (the default
    backend) short-circuits every mirror behind one ``is None`` test.
    """

    __slots__ = ("records", "dependents", "validation_cache", "sig_cache",
                 "watches", "store", "service_name")

    def __init__(self, service: ServiceId,
                 store: Optional[RecordStore] = None) -> None:
        self.service_name = str(service)
        self.store = store
        self.records: Dict[CredentialRef, CredentialRecord] = {}
        self.dependents: Dict[str, Union[List[CredentialRef],
                                         Dict[CredentialRef, None]]] = {}
        self.validation_cache: Dict[
            CredentialRef, Dict[Tuple[str, Optional[str]], bool]] = {}
        self.sig_cache: Dict[str, Set[Tuple]] = {}
        self.watches: Dict[CredentialRef, _MembershipWatch] = {}

    # ------------------------------------------------------------------
    # Credential records
    # ------------------------------------------------------------------
    def install(self, record: CredentialRecord, link: bool = True) -> None:
        """Install a freshly-issued credential record.

        ``link`` registers the Fig. 5 reverse-dependency edges (the
        unbatched reference cascade path manages broker subscriptions
        instead and passes ``link=False``).
        """
        ref = record.ref
        self.records[ref] = record
        if link:
            for dependency in record.membership_dependencies:
                self.link_dependent(dependency.qualified, ref)
        store = self.store
        if store is not None:
            store.put(RECORDS, ref.qualified, record)

    def install_many(self, records: Sequence[CredentialRecord]) -> None:
        """Mirror a bulk-installed batch in one store round trip.

        The caller's bulk loop has already placed the records in
        :attr:`records` and linked their edges (hot loop, hoisted locals);
        this only owes the store its batch put.
        """
        store = self.store
        if store is not None:
            store.put_many(RECORDS, [(record.ref.qualified, record)
                                     for record in records])

    def mark_revoked(self, record: CredentialRecord) -> None:
        """Mirror an already-flipped record's terminal state."""
        store = self.store
        if store is not None:
            store.put(RECORDS, record.ref.qualified, record)

    # ------------------------------------------------------------------
    # Reverse-dependency index (Fig. 5 edges)
    # ------------------------------------------------------------------
    def link_dependent(self, key: str, ref: CredentialRef) -> None:
        """Add a reverse-index edge ``dependency key -> dependent ref``.

        Buckets are adaptive: a plain insertion-ordered list up to
        ``EDGE_LIST_MAX`` dependents, promoted to an ordered dict beyond
        that so high-fanout unlink stays O(1).  Both shapes iterate in
        insertion order, so cascade order is identical either way.
        """
        bucket = self.dependents.get(key)
        if bucket is None:
            self.dependents[key] = [ref]
        elif type(bucket) is list:
            if len(bucket) < EDGE_LIST_MAX:
                bucket.append(ref)
            else:
                promoted = dict.fromkeys(bucket)
                promoted[ref] = None
                self.dependents[key] = promoted
        else:
            bucket[ref] = None

    def unlink_dependencies(self, record: CredentialRecord) -> None:
        """Remove ``record`` from the reverse-index buckets of all its
        membership dependencies (teardown is O(dependencies))."""
        ref = record.ref
        for dependency in record.membership_dependencies:
            key = dependency.qualified
            bucket = self.dependents.get(key)
            if bucket is None:
                continue
            if type(bucket) is list:
                try:
                    bucket.remove(ref)
                except ValueError:
                    pass
            else:
                bucket.pop(ref, None)
            if not bucket:
                del self.dependents[key]

    # ------------------------------------------------------------------
    # Validation cache (ECR-backed)
    # ------------------------------------------------------------------
    def cache_validation(self, ref: CredentialRef,
                         cache_key: Tuple[str, Optional[str]]) -> None:
        entries = self.validation_cache.setdefault(ref, {})
        entries[cache_key] = True
        store = self.store
        if store is not None:
            store.put(VALIDATION, ref.qualified, {
                "ref": ref_payload(ref),
                "entries": [[requester, holder]
                            for requester, holder in entries]})

    def drop_validation(self, ref: CredentialRef
                        ) -> Optional[Dict[Tuple[str, Optional[str]], bool]]:
        stale = self.validation_cache.pop(ref, None)
        store = self.store
        if store is not None and stale is not None:
            store.delete(VALIDATION, ref.qualified)
        return stale

    # ------------------------------------------------------------------
    # Session liveness (derived from records — storage-backed for free)
    # ------------------------------------------------------------------
    def live_sessions(self) -> Set[str]:
        """Session ids with at least one active credential."""
        return {record.session_id for record in self.records.values()
                if record.session_id is not None and record.active}

    def session_credentials(self, session_id: str) -> List[CredentialRecord]:
        """Active credential records issued within ``session_id``."""
        return [record for record in self.records.values()
                if record.session_id == session_id and record.active]

    # ------------------------------------------------------------------
    # Crash-consistent cascade journal
    # ------------------------------------------------------------------
    def log_cascade(self, events: Sequence[Event]) -> Optional[int]:
        """Durably journal a cascade's events; returns the log seq.

        MUST be called before the events are published AND before any of
        the flipped records is mirrored via :meth:`mark_revoked`: the
        commit is the point at which the revocation is guaranteed to
        survive a crash, and a record flip that reached disk (via an
        auto-flush) ahead of it would be durable yet unreplayable.
        """
        store = self.store
        if store is None:
            return None
        return store.log_append(
            {"op": "cascade", "service": self.service_name,
             "events": [event.to_payload() for event in events]},
            durable=True)

    def log_cascade_done(self, seq: Optional[int]) -> None:
        """Mark a journalled cascade fully published (prunable)."""
        store = self.store
        if store is not None and seq is not None:
            store.log_append({"op": "cascade-done", "cascade_seq": seq},
                             durable=True)

    def reserve_serials(self, upto: int) -> None:
        """Durably reserve CRR serials up to ``upto`` (inclusive)."""
        store = self.store
        if store is not None:
            store.log_append({"op": "serial-reserve", "value": upto},
                             durable=True)

    # ------------------------------------------------------------------
    # Secret persistence
    # ------------------------------------------------------------------
    def save_secret(self, secret: ServiceSecret) -> None:
        store = self.store
        if store is not None:
            store.put(META, "secret", {"key_hex": secret.key.hex(),
                                       "generation": secret.generation})
            # The secret is foundational — without it no certificate
            # verifies after a restart — so it skips the write-behind
            # window and lands durably right away.
            store.flush()

    def load_secret(self) -> Optional[ServiceSecret]:
        store = self.store
        if store is None:
            return None
        payload = store.get(META, "secret")
        if payload is None:
            return None
        return ServiceSecret(key=bytes.fromhex(payload["key_hex"]),
                             generation=payload["generation"])

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def load(self, clock_now: float) -> RecoveredState:
        """Rebuild live state from the store and replay the log tail.

        Called on an *empty* state by ``OasisService.resume``.  After it
        returns: records (revoked ones included) and the reverse index are
        rebuilt, every journalled revocation has been applied, and the
        returned :class:`RecoveredState` lists what the service layer owes
        — audit entries for interrupted cascades, ECR re-subscription, and
        re-emission of unpublished events.
        """
        store = self.store
        if store is None:
            raise ValueError("cannot resume without a record store")
        records = self.records
        by_qualified: Dict[str, CredentialRecord] = {}
        max_serial = 0
        for key, record in store.scan(RECORDS):
            records[record.ref] = record
            by_qualified[record.ref.qualified] = record
            if record.ref.serial > max_serial:
                max_serial = record.ref.serial
        # Edges exist only for live credentials (revocation unlinks).
        for record in records.values():
            if record.active:
                for dependency in record.membership_dependencies:
                    self.link_dependent(dependency.qualified, record.ref)
        validation_refs: List[CredentialRef] = []
        for key, payload in store.scan(VALIDATION):
            ref = ref_from_payload(payload["ref"])
            self.validation_cache[ref] = {
                (requester, holder): True
                for requester, holder in payload.get("entries", ())}
            validation_refs.append(ref)
        # Log-tail replay, in append order.  Cascades with a done marker
        # were fully published before the crash: repair record state
        # silently.  Cascades without one are the interrupted tail: apply
        # AND surface for re-audit + re-emission.
        entries = store.log_entries()
        done: Set[int] = set()
        for seq, entry in entries:
            if entry.get("op") == "cascade-done":
                done.add(entry["cascade_seq"])
        interrupted: List[Tuple[Optional[CredentialRecord], Event]] = []
        pending: List[Tuple[int, List[Event]]] = []
        for seq, entry in entries:
            op = entry.get("op")
            if op == "serial-reserve":
                if entry["value"] > max_serial:
                    max_serial = entry["value"]
                continue
            if op != "cascade":
                continue
            events = [Event.from_payload(payload)
                      for payload in entry.get("events", ())]
            is_pending = seq not in done
            for event in events:
                qualified = event.get("credential_ref")
                record = by_qualified.get(qualified)
                if record is not None and record.revoke(
                        event.get("reason", "revoked (replayed)"),
                        event.timestamp or clock_now):
                    self.unlink_dependencies(record)
                    self.mark_revoked(record)
                if is_pending:
                    interrupted.append((record, event))
            if is_pending:
                pending.append((seq, events))
        return RecoveredState(max_serial=max_serial,
                              validation_refs=validation_refs,
                              interrupted_revocations=interrupted,
                              pending_cascades=pending)
