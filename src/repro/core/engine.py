"""Rule evaluation: matching presented credentials against Horn clauses.

The engine answers one question: *given a rule and a set of already
validated credentials, is there a way to satisfy the rule's body, and under
what parameter binding?*  It is deliberately independent of certificate
cryptography and networking — the service layer validates certificates
(signatures, callbacks, expiry) first and hands the engine plain
credential *facts*.

Evaluation is backtracking search.  Credential conditions are choice
points: each presented credential with the right name and arity is a
candidate, and unification against the condition's parameter terms prunes
candidates and binds rule variables.  Environmental constraints are
evaluated once their variables are bound; the engine evaluates all
credential conditions before any constraint, so a rule author never has to
think about condition order (the logic is conjunctive, so this reordering
is sound).

The result of a successful evaluation is a :class:`RuleMatch`, which records
the binding plus *which credential satisfied which condition*.  The service
layer reads the membership-flagged rows out of the match to wire up the
revocation dependencies of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from .constraints import EvaluationContext
from .credentials import AppointmentCertificate, CredentialRef, RoleMembershipCertificate
from .exceptions import ActivationDenied, PolicyError
from .rules import (
    ActivationRule,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    Condition,
    ConstraintCondition,
    PrerequisiteRole,
)
from .terms import EMPTY_SUBSTITUTION, Substitution, Term, is_ground, unify_sequences
from .types import Role

__all__ = ["PresentedCredential", "RuleMatch", "MatchedCondition", "RuleEngine"]

Certificate = Union[RoleMembershipCertificate, AppointmentCertificate]


@dataclass(frozen=True)
class PresentedCredential:
    """A validated credential fact, as seen by the engine.

    Exactly one of the two certificate shapes, already past signature and
    callback validation.  ``ref`` is the credential's CRR — the handle the
    membership monitor subscribes on.
    """

    certificate: Certificate

    @property
    def ref(self) -> CredentialRef:
        return self.certificate.ref

    @property
    def is_rmc(self) -> bool:
        return isinstance(self.certificate, RoleMembershipCertificate)

    @property
    def is_appointment(self) -> bool:
        return isinstance(self.certificate, AppointmentCertificate)

    def matches_prerequisite(self, condition: PrerequisiteRole) -> bool:
        if not self.is_rmc:
            return False
        role = self.certificate.role
        return (role.role_name == condition.template.role_name
                and role.arity == condition.template.arity)

    def matches_appointment(self, condition: AppointmentCondition) -> bool:
        if not self.is_appointment:
            return False
        cert = self.certificate
        return (cert.issuer == condition.issuer
                and cert.name == condition.name
                and len(cert.parameters) == len(condition.parameters))

    def parameters(self) -> Tuple[Term, ...]:
        if self.is_rmc:
            return self.certificate.role.parameters
        return self.certificate.parameters


@dataclass(frozen=True)
class MatchedCondition:
    """One satisfied rule condition and the credential that satisfied it
    (None for constraints)."""

    condition: Condition
    credential: Optional[PresentedCredential]

    @property
    def in_membership_rule(self) -> bool:
        return self.condition.membership


@dataclass(frozen=True)
class RuleMatch:
    """A successful rule evaluation."""

    substitution: Substitution
    matched: Tuple[MatchedCondition, ...]

    def membership_credential_refs(self) -> Tuple[CredentialRef, ...]:
        """CRRs of credentials satisfying membership-flagged conditions —
        the revocation dependencies of the new credential."""
        refs = []
        for row in self.matched:
            if row.in_membership_rule and row.credential is not None:
                refs.append(row.credential.ref)
        return tuple(refs)

    def membership_constraints(self) -> Tuple[ConstraintCondition, ...]:
        """Membership-flagged constraints, for periodic / DB-triggered
        re-evaluation under this match's substitution."""
        return tuple(row.condition for row in self.matched
                     if row.in_membership_rule
                     and isinstance(row.condition, ConstraintCondition))

    def credentials_used(self) -> Tuple[PresentedCredential, ...]:
        return tuple(row.credential for row in self.matched
                     if row.credential is not None)


class RuleEngine:
    """Evaluates activation, authorization and appointment rules."""

    def __init__(self, context: EvaluationContext) -> None:
        self.context = context

    # -- public entry points -------------------------------------------------
    def match_activation(self, rule: ActivationRule,
                         requested_parameters: Optional[Sequence[Term]],
                         credentials: Sequence[PresentedCredential],
                         context: Optional[EvaluationContext] = None,
                         ) -> Optional[Tuple[RuleMatch, Role]]:
        """Try to satisfy an activation rule.

        ``requested_parameters`` (when given) must have the rule's arity;
        ground values pin the corresponding role parameters, while None
        entries leave them to be bound by credentials.  Returns the match
        and the ground target role, or None when the rule cannot be
        satisfied.  Raises :class:`ActivationDenied` if the body is
        satisfiable but leaves a role parameter unbound — the caller must
        then supply it explicitly.
        """
        context = context or self.context
        unbound_error: Optional[ActivationDenied] = None
        for match, role in self.enumerate_activations(
                rule, credentials, context, requested_parameters):
            if role is None:
                unbound_error = ActivationDenied(
                    f"rule for {rule.target.role_name} satisfied but leaves "
                    f"parameters unbound; supply them in the activation "
                    f"request")
                continue
            return match, role
        if unbound_error is not None:
            raise unbound_error
        return None

    def enumerate_activations(self, rule: ActivationRule,
                              credentials: Sequence[PresentedCredential],
                              context: Optional[EvaluationContext] = None,
                              requested_parameters:
                              Optional[Sequence[Term]] = None,
                              ) -> Iterator[Tuple[RuleMatch,
                                                  Optional[Role]]]:
        """Yield every satisfying match of an activation rule.

        Each item is ``(match, role)``; ``role`` is None when the body is
        satisfiable but leaves head parameters unbound.  Used by the model
        checker (:mod:`repro.lang.model_check`) to enumerate all ground
        roles a credential endowment can reach, and by
        :meth:`match_activation` which takes the first ground solution.
        """
        context = context or self.context
        subst = self._bind_head(rule.target.parameters,
                                requested_parameters)
        if subst is None:
            return
        for match in self._solve(rule.conditions, subst, credentials,
                                 context):
            parameters = match.substitution.apply(
                tuple(rule.target.parameters))
            if is_ground(parameters):
                yield match, Role(rule.target.role_name, parameters)
            else:
                yield match, None

    def match_authorization(self, rule: AuthorizationRule,
                            arguments: Sequence[Term],
                            credentials: Sequence[PresentedCredential],
                            context: Optional[EvaluationContext] = None,
                            ) -> Optional[RuleMatch]:
        """Try to satisfy an authorization rule for a ground argument list."""
        context = context or self.context
        if len(arguments) != len(rule.parameters):
            return None
        for argument in arguments:
            if not is_ground(argument):
                raise PolicyError(
                    f"invocation argument {argument!r} is not ground")
        subst = unify_sequences(rule.parameters, arguments)
        if subst is None:
            return None
        for match in self._solve(rule.conditions, subst, credentials, context):
            return match
        return None

    def match_appointment(self, rule: AppointmentRule,
                          requested_parameters: Sequence[Term],
                          credentials: Sequence[PresentedCredential],
                          context: Optional[EvaluationContext] = None,
                          ) -> Optional[RuleMatch]:
        """Try to satisfy an appointment-issuing rule.

        Appointment parameters are supplied by the appointer (they describe
        the appointee and the appointment's scope), so all must be ground
        after unification with the request.
        """
        context = context or self.context
        if len(requested_parameters) != len(rule.parameters):
            return None
        subst = unify_sequences(rule.parameters, requested_parameters)
        if subst is None:
            return None
        for match in self._solve(rule.conditions, subst, credentials, context):
            parameters = match.substitution.apply(tuple(rule.parameters))
            if not is_ground(parameters):
                raise PolicyError(
                    f"appointment {rule.name} parameters {parameters!r} not "
                    f"fully specified by request and credentials")
            return match
        return None

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _bind_head(head: Tuple[Term, ...],
                   requested: Optional[Sequence[Term]]
                   ) -> Optional[Substitution]:
        if requested is None:
            return EMPTY_SUBSTITUTION
        if len(requested) != len(head):
            return None
        subst: Optional[Substitution] = EMPTY_SUBSTITUTION
        for head_term, requested_term in zip(head, requested):
            if requested_term is None:
                continue  # parameter left for credentials to bind
            if not is_ground(requested_term):
                raise PolicyError(
                    f"requested parameter {requested_term!r} is not ground")
            from .terms import unify

            subst = unify(head_term, requested_term, subst)
            if subst is None:
                return None
        return subst

    def _solve(self, conditions: Sequence[Condition], subst: Substitution,
               credentials: Sequence[PresentedCredential],
               context: EvaluationContext) -> Iterator[RuleMatch]:
        # Credential conditions first so constraint variables are bound;
        # sound because the body is a conjunction.
        credential_conditions = [c for c in conditions
                                 if not isinstance(c, ConstraintCondition)]
        constraint_conditions = [c for c in conditions
                                 if isinstance(c, ConstraintCondition)]
        ordered = credential_conditions + constraint_conditions
        yield from self._solve_ordered(ordered, subst, credentials, context, [])

    def _solve_ordered(self, conditions: List[Condition], subst: Substitution,
                       credentials: Sequence[PresentedCredential],
                       context: EvaluationContext,
                       matched: List[MatchedCondition]) -> Iterator[RuleMatch]:
        if not conditions:
            yield RuleMatch(substitution=subst, matched=tuple(matched))
            return
        condition, rest = conditions[0], conditions[1:]

        if isinstance(condition, ConstraintCondition):
            if condition.constraint.evaluate(subst, context):
                matched.append(MatchedCondition(condition, None))
                yield from self._solve_ordered(rest, subst, credentials,
                                               context, matched)
                matched.pop()
            return

        for credential in credentials:
            if isinstance(condition, PrerequisiteRole):
                if not credential.matches_prerequisite(condition):
                    continue
                pattern = condition.template.parameters
            else:
                assert isinstance(condition, AppointmentCondition)
                if not credential.matches_appointment(condition):
                    continue
                pattern = condition.parameters
            extended = unify_sequences(pattern, credential.parameters(), subst)
            if extended is None:
                continue
            matched.append(MatchedCondition(condition, credential))
            yield from self._solve_ordered(rest, extended, credentials,
                                           context, matched)
            matched.pop()
