"""Rule evaluation: matching presented credentials against Horn clauses.

The engine answers one question: *given a rule and a set of already
validated credentials, is there a way to satisfy the rule's body, and under
what parameter binding?*  It is deliberately independent of certificate
cryptography and networking — the service layer validates certificates
(signatures, callbacks, expiry) first and hands the engine plain
credential *facts*.

Evaluation is backtracking search.  Credential conditions are choice
points: each presented credential with the right name and arity is a
candidate, and unification against the condition's parameter terms prunes
candidates and binds rule variables.  Environmental constraints are
evaluated once their variables are bound; the engine evaluates all
credential conditions before any constraint, so a rule author never has to
think about condition order (the logic is conjunctive, so this reordering
is sound).

The result of a successful evaluation is a :class:`RuleMatch`, which records
the binding plus *which credential satisfied which condition*.  The service
layer reads the membership-flagged rows out of the match to wire up the
revocation dependencies of Fig. 5.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..obs import runtime as _obs_runtime
from .constraints import EvaluationContext
from .credentials import AppointmentCertificate, CredentialRef, RoleMembershipCertificate
from .exceptions import ActivationDenied, PolicyError
from .rules import (
    ActivationRule,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    Condition,
    ConstraintCondition,
    PrerequisiteRole,
)
from .terms import (
    EMPTY_SUBSTITUTION,
    Substitution,
    Term,
    is_ground,
    unify,
    unify_sequences,
    variables_in,
)
from .types import Role

__all__ = ["PresentedCredential", "RuleMatch", "MatchedCondition",
           "ConditionFailure", "CredentialIndex", "RuleEngine"]

#: Buckets for the unification-step histogram (steps per activation match).
STEP_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


@dataclass(frozen=True)
class ConditionFailure:
    """Why a rule body could not be satisfied (see ``explain_*``).

    ``kind`` is one of the failure kinds documented in
    :mod:`repro.obs.explain`; ``condition`` is the deepest condition (in
    canonical order) at which the search frontier died, None for
    rule-level failures (``head-mismatch``, ``unbound-parameters``).
    """

    kind: str
    condition: Optional[Condition]
    detail: str

Certificate = Union[RoleMembershipCertificate, AppointmentCertificate]


@dataclass(frozen=True)
class PresentedCredential:
    """A validated credential fact, as seen by the engine.

    Exactly one of the two certificate shapes, already past signature and
    callback validation.  ``ref`` is the credential's CRR — the handle the
    membership monitor subscribes on.
    """

    certificate: Certificate

    @property
    def ref(self) -> CredentialRef:
        return self.certificate.ref

    @property
    def is_rmc(self) -> bool:
        return isinstance(self.certificate, RoleMembershipCertificate)

    @property
    def is_appointment(self) -> bool:
        return isinstance(self.certificate, AppointmentCertificate)

    @cached_property
    def index_key(self) -> Tuple:
        """Bucket key mirroring the condition-side keys in
        :mod:`repro.core.rules`: equal keys ⇔ the kind/name/arity checks of
        :meth:`matches_prerequisite` / :meth:`matches_appointment` pass."""
        certificate = self.certificate
        if isinstance(certificate, RoleMembershipCertificate):
            role = certificate.role
            return ("rmc", role.role_name, len(role.parameters))
        return ("appointment", certificate.issuer, certificate.name,
                len(certificate.parameters))

    @cached_property
    def parameter_values(self) -> Tuple[Term, ...]:
        if isinstance(self.certificate, RoleMembershipCertificate):
            return self.certificate.role.parameters
        return self.certificate.parameters

    def matches_prerequisite(self, condition: PrerequisiteRole) -> bool:
        if not self.is_rmc:
            return False
        role = self.certificate.role
        return (role.role_name == condition.template.role_name
                and role.arity == condition.template.arity)

    def matches_appointment(self, condition: AppointmentCondition) -> bool:
        if not self.is_appointment:
            return False
        cert = self.certificate
        return (cert.issuer == condition.issuer
                and cert.name == condition.name
                and len(cert.parameters) == len(condition.parameters))

    def parameters(self) -> Tuple[Term, ...]:
        return self.parameter_values


@dataclass(frozen=True)
class MatchedCondition:
    """One satisfied rule condition and the credential that satisfied it
    (None for constraints)."""

    condition: Condition
    credential: Optional[PresentedCredential]

    @property
    def in_membership_rule(self) -> bool:
        return self.condition.membership


@dataclass(frozen=True)
class RuleMatch:
    """A successful rule evaluation."""

    substitution: Substitution
    matched: Tuple[MatchedCondition, ...]

    def membership_credential_refs(self) -> Tuple[CredentialRef, ...]:
        """CRRs of credentials satisfying membership-flagged conditions —
        the revocation dependencies of the new credential."""
        refs = []
        for row in self.matched:
            if row.in_membership_rule and row.credential is not None:
                refs.append(row.credential.ref)
        return tuple(refs)

    def membership_constraints(self) -> Tuple[ConstraintCondition, ...]:
        """Membership-flagged constraints, for periodic / DB-triggered
        re-evaluation under this match's substitution."""
        return tuple(row.condition for row in self.matched
                     if row.in_membership_rule
                     and isinstance(row.condition, ConstraintCondition))

    def credentials_used(self) -> Tuple[PresentedCredential, ...]:
        return tuple(row.credential for row in self.matched
                     if row.credential is not None)


class CredentialIndex:
    """Presented credentials bucketed by ``(kind, name, arity)``.

    Built once per presented-credential set (one pass) and shared across
    every rule tried for a request, it replaces the per-condition linear
    scan over all credentials with a single dict lookup.  Bucket keys mirror
    the condition-side :attr:`index_key` properties, so the candidates of a
    condition are exactly the credentials passing its kind/name/arity
    checks — unification against the condition pattern remains the only
    per-candidate work.
    """

    __slots__ = ("credentials", "_buckets")

    _EMPTY: Tuple[PresentedCredential, ...] = ()

    def __init__(self, credentials: Sequence[PresentedCredential]) -> None:
        self.credentials = tuple(credentials)
        buckets: Dict[Tuple, List[PresentedCredential]] = {}
        for credential in self.credentials:
            key = credential.index_key
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [credential]
            else:
                bucket.append(credential)
        self._buckets = buckets

    def candidates(self, condition: Condition
                   ) -> Sequence[PresentedCredential]:
        """Credentials that can possibly satisfy ``condition``."""
        return self._buckets.get(condition.index_key, self._EMPTY)

    def __len__(self) -> int:
        return len(self.credentials)


class RuleEngine:
    """Evaluates activation, authorization and appointment rules.

    The default solver routes candidate selection through a
    :class:`CredentialIndex` and orders credential conditions most
    selective first (fewest candidates) to prune backtracking early;
    ``optimized=False`` retains the seed's naive scan-and-slice solver as a
    reference path for differential testing and benchmarking.  Both paths
    produce the same solutions with identically ordered matched rows.
    """

    def __init__(self, context: EvaluationContext, *,
                 optimized: bool = True) -> None:
        self.context = context
        self.optimized = optimized
        # Last (credentials, index) pair for callers that pass the same
        # endowment repeatedly without a prebuilt index.  Only tuples are
        # memoized: the strong reference keeps the identity check valid and
        # a tuple's contents cannot change under us.
        self._index_memo: Optional[Tuple[Sequence[PresentedCredential],
                                         CredentialIndex]] = None
        # Observability snapshot (see repro.obs.runtime): None keeps every
        # hot path on a single attribute-load-plus-branch guard.  When a
        # pipeline is installed, activation matches count unification
        # steps (the indexed solver only; the naive path stays the
        # untouched seed reference) into this histogram.
        self._obs = _obs_runtime.pipeline()
        self._step_counter: Optional[List[int]] = None
        if self._obs is not None:
            self._steps_histogram = self._obs.metrics.histogram(
                "oasis_unification_steps", STEP_BUCKETS,
                help_text="unification attempts + constraint evaluations "
                          "per activation match (optimized solver)")

    # -- public entry points -------------------------------------------------
    def match_activation(self, rule: ActivationRule,
                         requested_parameters: Optional[Sequence[Term]],
                         credentials: Sequence[PresentedCredential],
                         context: Optional[EvaluationContext] = None,
                         index: Optional[CredentialIndex] = None,
                         ) -> Optional[Tuple[RuleMatch, Role]]:
        """Try to satisfy an activation rule.

        ``requested_parameters`` (when given) must have the rule's arity;
        ground values pin the corresponding role parameters, while None
        entries leave them to be bound by credentials.  Returns the match
        and the ground target role, or None when the rule cannot be
        satisfied.  Raises :class:`ActivationDenied` if the body is
        satisfiable but leaves a role parameter unbound — the caller must
        then supply it explicitly.
        """
        if self._obs is not None:
            return self._match_activation_observed(
                rule, requested_parameters, credentials, context, index)
        context = context or self.context
        unbound_error: Optional[ActivationDenied] = None
        for match, role in self.enumerate_activations(
                rule, credentials, context, requested_parameters, index):
            if role is None:
                unbound_error = ActivationDenied(
                    f"rule for {rule.target.role_name} satisfied but leaves "
                    f"parameters unbound; supply them in the activation "
                    f"request")
                continue
            return match, role
        if unbound_error is not None:
            raise unbound_error
        return None

    def _match_activation_observed(
            self, rule: ActivationRule,
            requested_parameters: Optional[Sequence[Term]],
            credentials: Sequence[PresentedCredential],
            context: Optional[EvaluationContext],
            index: Optional[CredentialIndex],
            ) -> Optional[Tuple[RuleMatch, Role]]:
        """:meth:`match_activation` with unification-step accounting.

        Identical semantics; the step counter is armed for the duration so
        the indexed solver's counting closure is selected (see
        :meth:`_solve_indexed`), and the count lands in the
        ``oasis_unification_steps`` histogram.
        """
        context = context or self.context
        steps = [0]
        self._step_counter = steps
        try:
            unbound_error: Optional[ActivationDenied] = None
            for match, role in self.enumerate_activations(
                    rule, credentials, context, requested_parameters, index):
                if role is None:
                    unbound_error = ActivationDenied(
                        f"rule for {rule.target.role_name} satisfied but "
                        f"leaves parameters unbound; supply them in the "
                        f"activation request")
                    continue
                return match, role
            if unbound_error is not None:
                raise unbound_error
            return None
        finally:
            self._step_counter = None
            if self.optimized:
                self._steps_histogram.observe(steps[0])

    def enumerate_activations(self, rule: ActivationRule,
                              credentials: Sequence[PresentedCredential],
                              context: Optional[EvaluationContext] = None,
                              requested_parameters:
                              Optional[Sequence[Term]] = None,
                              index: Optional[CredentialIndex] = None,
                              ) -> Iterator[Tuple[RuleMatch,
                                                  Optional[Role]]]:
        """Yield every satisfying match of an activation rule.

        Each item is ``(match, role)``; ``role`` is None when the body is
        satisfiable but leaves head parameters unbound.  Used by the model
        checker (:mod:`repro.lang.model_check`) to enumerate all ground
        roles a credential endowment can reach, and by
        :meth:`match_activation` which takes the first ground solution.
        """
        context = context or self.context
        subst = self._bind_head(rule.target.parameters,
                                requested_parameters)
        if subst is None:
            return
        for match in self._solve(rule, subst, credentials, context, index):
            parameters = match.substitution.apply(rule.target.parameters)
            if is_ground(parameters):
                yield match, Role(rule.target.role_name, parameters)
            else:
                yield match, None

    def match_authorization(self, rule: AuthorizationRule,
                            arguments: Sequence[Term],
                            credentials: Sequence[PresentedCredential],
                            context: Optional[EvaluationContext] = None,
                            index: Optional[CredentialIndex] = None,
                            ) -> Optional[RuleMatch]:
        """Try to satisfy an authorization rule for a ground argument list."""
        context = context or self.context
        if len(arguments) != len(rule.parameters):
            return None
        for argument in arguments:
            if not is_ground(argument):
                raise PolicyError(
                    f"invocation argument {argument!r} is not ground")
        subst = unify_sequences(rule.parameters, arguments)
        if subst is None:
            return None
        for match in self._solve(rule, subst, credentials, context, index):
            return match
        return None

    def match_appointment(self, rule: AppointmentRule,
                          requested_parameters: Sequence[Term],
                          credentials: Sequence[PresentedCredential],
                          context: Optional[EvaluationContext] = None,
                          index: Optional[CredentialIndex] = None,
                          ) -> Optional[RuleMatch]:
        """Try to satisfy an appointment-issuing rule.

        Appointment parameters are supplied by the appointer (they describe
        the appointee and the appointment's scope), so all must be ground
        after unification with the request.
        """
        context = context or self.context
        if len(requested_parameters) != len(rule.parameters):
            return None
        subst = unify_sequences(rule.parameters, requested_parameters)
        if subst is None:
            return None
        for match in self._solve(rule, subst, credentials, context, index):
            parameters = match.substitution.apply(rule.parameters)
            if not is_ground(parameters):
                raise PolicyError(
                    f"appointment {rule.name} parameters {parameters!r} not "
                    f"fully specified by request and credentials")
            return match
        return None

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _bind_head(head: Tuple[Term, ...],
                   requested: Optional[Sequence[Term]]
                   ) -> Optional[Substitution]:
        if requested is None:
            return EMPTY_SUBSTITUTION
        if len(requested) != len(head):
            return None
        subst: Optional[Substitution] = EMPTY_SUBSTITUTION
        for head_term, requested_term in zip(head, requested):
            if requested_term is None:
                continue  # parameter left for credentials to bind
            if not is_ground(requested_term):
                raise PolicyError(
                    f"requested parameter {requested_term!r} is not ground")
            subst = unify(head_term, requested_term, subst)
            if subst is None:
                return None
        return subst

    def _solve(self, rule: Union[ActivationRule, AuthorizationRule,
                                 AppointmentRule],
               subst: Substitution,
               credentials: Sequence[PresentedCredential],
               context: EvaluationContext,
               index: Optional[CredentialIndex] = None
               ) -> Iterator[RuleMatch]:
        # Credential conditions before constraints so constraint variables
        # are bound; sound because the body is a conjunction.  The split is
        # cached on the (immutable) rule.
        credential_conditions, constraint_conditions = rule.condition_partition
        if not self.optimized:
            return self._solve_naive(
                credential_conditions + constraint_conditions, subst,
                credentials, context, [])
        if index is None:
            memo = self._index_memo
            if memo is not None and memo[0] is credentials:
                index = memo[1]
            else:
                index = CredentialIndex(credentials)
                if type(credentials) is tuple:
                    self._index_memo = (credentials, index)
        # Matched rows are emitted in this canonical order (credential
        # conditions in rule order, then constraints) regardless of the
        # solve order below, so both solver paths produce identical matches.
        canonical = credential_conditions + constraint_conditions
        if len(credential_conditions) > 1:
            # Most selective condition first: fewest candidate credentials.
            # Stable sort keeps rule order among equally selective ones.
            ordered = (*sorted(credential_conditions,
                               key=lambda c: len(index.candidates(c))),
                       *constraint_conditions)
        else:
            ordered = canonical
        return self._solve_indexed(ordered, canonical, subst, index, context)

    def _solve_indexed(self, ordered: Sequence[Condition],
                       canonical: Sequence[Condition], subst: Substitution,
                       index: CredentialIndex, context: EvaluationContext
                       ) -> Iterator[RuleMatch]:
        total = len(ordered)
        if ordered is canonical:
            slots_for: Sequence[int] = range(total)
        else:
            # Map each condition occurrence in solve order to its slot in
            # the canonical output order (id-based; duplicates pair up
            # positionally).
            slot_queues: Dict[int, deque] = defaultdict(deque)
            for position, condition in enumerate(canonical):
                slot_queues[id(condition)].append(position)
            slots_for = [slot_queues[id(c)].popleft() for c in ordered]
        slots: List[Optional[MatchedCondition]] = [None] * total

        # Two variants of the inner search, selected ONCE per call: the
        # pristine closure when no step counter is armed (the common,
        # benchmark-guarded case — zero per-step instrumentation cost) and
        # a counting twin when an observed match is in flight.  A per-step
        # ``if counter`` inside one shared closure would cost several
        # percent on the ~9µs FIG1 engine op; selecting the closure up
        # front costs one attribute load for the whole solve.
        counter = self._step_counter
        if counter is None:
            def solve(at: int, subst: Substitution) -> Iterator[RuleMatch]:
                if at == total:
                    yield RuleMatch(substitution=subst, matched=tuple(slots))
                    return
                condition = ordered[at]
                slot = slots_for[at]
                if isinstance(condition, ConstraintCondition):
                    if condition.constraint.evaluate(subst, context):
                        slots[slot] = MatchedCondition(condition, None)
                        yield from solve(at + 1, subst)
                    return
                pattern = condition.pattern
                for credential in index.candidates(condition):
                    extended = unify_sequences(
                        pattern, credential.parameter_values, subst)
                    if extended is None:
                        continue
                    slots[slot] = MatchedCondition(condition, credential)
                    yield from solve(at + 1, extended)
        else:
            def solve(at: int, subst: Substitution) -> Iterator[RuleMatch]:
                if at == total:
                    yield RuleMatch(substitution=subst, matched=tuple(slots))
                    return
                condition = ordered[at]
                slot = slots_for[at]
                if isinstance(condition, ConstraintCondition):
                    counter[0] += 1
                    if condition.constraint.evaluate(subst, context):
                        slots[slot] = MatchedCondition(condition, None)
                        yield from solve(at + 1, subst)
                    return
                pattern = condition.pattern
                for credential in index.candidates(condition):
                    counter[0] += 1
                    extended = unify_sequences(
                        pattern, credential.parameter_values, subst)
                    if extended is None:
                        continue
                    slots[slot] = MatchedCondition(condition, credential)
                    yield from solve(at + 1, extended)

        return solve(0, subst)

    def _solve_naive(self, conditions: Sequence[Condition],
                     subst: Substitution,
                     credentials: Sequence[PresentedCredential],
                     context: EvaluationContext,
                     matched: List[MatchedCondition]) -> Iterator[RuleMatch]:
        """The seed engine's solver, retained verbatim as the reference path
        for differential tests and the benchmark harness's baseline: linear
        scan over all credentials per condition, list slicing per step."""
        if not conditions:
            yield RuleMatch(substitution=subst, matched=tuple(matched))
            return
        condition, rest = conditions[0], conditions[1:]

        if isinstance(condition, ConstraintCondition):
            if condition.constraint.evaluate(subst, context):
                matched.append(MatchedCondition(condition, None))
                yield from self._solve_naive(rest, subst, credentials,
                                             context, matched)
                matched.pop()
            return

        for credential in credentials:
            if isinstance(condition, PrerequisiteRole):
                if not credential.matches_prerequisite(condition):
                    continue
                pattern = condition.template.parameters
            else:
                assert isinstance(condition, AppointmentCondition)
                if not credential.matches_appointment(condition):
                    continue
                pattern = condition.parameters
            extended = unify_sequences(pattern, credential.parameters(), subst)
            if extended is None:
                continue
            matched.append(MatchedCondition(condition, credential))
            yield from self._solve_naive(rest, extended, credentials,
                                         context, matched)
            matched.pop()

    # -- explanation (repro.obs decision explainers) -------------------------
    #
    # The explain_* methods answer "why did this rule NOT match?" with the
    # deepest failing condition in CANONICAL order (credential conditions
    # in rule order, then constraints).  They run their own dedicated
    # probe, independent of ``self.optimized`` and of the solve-order
    # heuristics, so both engine configurations explain identically by
    # construction — the property the differential tests assert.  They
    # only run on denial paths, so their cost is irrelevant to the hot
    # path.

    @staticmethod
    def _bindings_detail(condition: Condition, subst: Substitution) -> str:
        names = sorted(condition.variables(), key=lambda v: v.name)
        if not names:
            return "no variables"
        pairs = ", ".join(f"{v.name}={subst.apply(v)!r}" for v in names)
        return f"bindings: {{{pairs}}}"

    def _probe(self, conditions: Sequence[Condition], head: Tuple[Term, ...],
               subst: Substitution,
               credentials: Sequence[PresentedCredential],
               context: EvaluationContext,
               require_ground_head: bool,
               ) -> Tuple[Optional[Substitution],
                          Optional[ConditionFailure]]:
        """Canonical-order satisfiability probe tracking the deepest
        failure frontier.  Returns ``(solution, None)`` on success or
        ``(None, failure)`` where ``failure`` is the deepest point the
        search died — the most specific explanation of the denial.  With
        ``require_ground_head``, solutions leaving ``head`` non-ground are
        rejected at maximal depth (mirroring :meth:`match_activation`'s
        preference for unbound-parameter errors over plain no-match)."""
        total = len(conditions)
        best: List[Optional[ConditionFailure]] = [None]
        best_at = [-1]

        def note(at: int, kind: str, condition: Optional[Condition],
                 detail: str) -> None:
            if at > best_at[0]:
                best_at[0] = at
                best[0] = ConditionFailure(kind, condition, detail)

        def walk(at: int, subst: Substitution) -> Optional[Substitution]:
            if at == total:
                if require_ground_head:
                    parameters = subst.apply(head)
                    if not is_ground(parameters):
                        unbound = sorted({v.name for p in parameters
                                          for v in variables_in(p)})
                        note(total, "unbound-parameters", None,
                             f"body satisfiable but role parameters "
                             f"{{{', '.join(unbound)}}} remain unbound; "
                             f"supply them in the request")
                        return None
                return subst
            condition = conditions[at]
            if isinstance(condition, ConstraintCondition):
                if condition.constraint.evaluate(subst, context):
                    return walk(at + 1, subst)
                note(at, "constraint", condition,
                     f"constraint evaluated false; "
                     f"{self._bindings_detail(condition, subst)}")
                return None
            key = condition.index_key
            candidates = [credential for credential in credentials
                          if credential.index_key == key]
            if not candidates:
                note(at, "no-candidates", condition,
                     "no presented credential has the required "
                     "kind/name/arity — credential missing")
                return None
            unified_any = False
            for credential in candidates:
                extended = unify_sequences(
                    condition.pattern, credential.parameter_values, subst)
                if extended is None:
                    continue
                unified_any = True
                solution = walk(at + 1, extended)
                if solution is not None:
                    return solution
            if not unified_any:
                note(at, "unification", condition,
                     f"{len(candidates)} credential(s) of the right kind "
                     f"presented, but none unify; "
                     f"{self._bindings_detail(condition, subst)}")
            return None

        solution = walk(0, subst)
        if solution is not None:
            return solution, None
        return None, best[0]

    def explain_activation(self, rule: ActivationRule,
                           requested_parameters: Optional[Sequence[Term]],
                           credentials: Sequence[PresentedCredential],
                           context: Optional[EvaluationContext] = None,
                           ) -> Optional[ConditionFailure]:
        """Why :meth:`match_activation` failed for ``rule`` — or None if it
        would in fact succeed (the rule is not the reason for a denial)."""
        context = context or self.context
        subst = self._bind_head(rule.target.parameters, requested_parameters)
        if subst is None:
            return ConditionFailure(
                "head-mismatch", None,
                f"requested parameters {tuple(requested_parameters or ())!r}"
                f" do not unify with rule head {rule.target}")
        credential_conditions, constraint_conditions = rule.condition_partition
        _, failure = self._probe(
            credential_conditions + constraint_conditions,
            rule.target.parameters, subst, tuple(credentials), context,
            require_ground_head=True)
        return failure

    def explain_authorization(self, rule: AuthorizationRule,
                              arguments: Sequence[Term],
                              credentials: Sequence[PresentedCredential],
                              context: Optional[EvaluationContext] = None,
                              ) -> Optional[ConditionFailure]:
        """Why :meth:`match_authorization` failed, or None if it would
        succeed."""
        context = context or self.context
        if len(arguments) != len(rule.parameters):
            return ConditionFailure(
                "head-mismatch", None,
                f"method takes {len(rule.parameters)} argument(s), "
                f"{len(arguments)} given")
        subst = unify_sequences(rule.parameters, arguments)
        if subst is None:
            return ConditionFailure(
                "head-mismatch", None,
                f"arguments {tuple(arguments)!r} do not unify with rule "
                f"parameters {rule.parameters!r}")
        credential_conditions, constraint_conditions = rule.condition_partition
        _, failure = self._probe(
            credential_conditions + constraint_conditions, rule.parameters,
            subst, tuple(credentials), context, require_ground_head=False)
        return failure

    def explain_appointment(self, rule: AppointmentRule,
                            requested_parameters: Sequence[Term],
                            credentials: Sequence[PresentedCredential],
                            context: Optional[EvaluationContext] = None,
                            ) -> Optional[ConditionFailure]:
        """Why :meth:`match_appointment` failed, or None if it would
        succeed."""
        context = context or self.context
        if len(requested_parameters) != len(rule.parameters):
            return ConditionFailure(
                "head-mismatch", None,
                f"appointment takes {len(rule.parameters)} parameter(s), "
                f"{len(requested_parameters)} given")
        subst = unify_sequences(rule.parameters, requested_parameters)
        if subst is None:
            return ConditionFailure(
                "head-mismatch", None,
                f"parameters {tuple(requested_parameters)!r} do not unify "
                f"with rule parameters {rule.parameters!r}")
        credential_conditions, constraint_conditions = rule.condition_partition
        _, failure = self._probe(
            credential_conditions + constraint_conditions, rule.parameters,
            subst, tuple(credentials), context, require_ground_head=False)
        return failure
