"""OASIS sessions: trees of active roles rooted at an initial role.

"An OASIS session typically starts from the activation of an initial role,
such as authenticated, logged in user ... Active roles therefore form trees
of role dependencies rooted on initial roles.  If a single initial role is
deactivated, for example the user logs out, all the active roles dependent
on it collapse and that session terminates." (Sect. 4)

The *mechanism* of collapse is distributed — each service revokes a
credential when a membership dependency dies (see
:class:`~repro.core.service.OasisService`).  This module provides the
*client-side* view: a :class:`Session` collects the RMCs a principal has
accumulated, presents them automatically on further activations and
invocations, and exposes the dependency tree for inspection.  A
:class:`Principal` bundles the identity, session key pair and wallet of
appointment certificates a user carries between sessions.
"""

from __future__ import annotations

import itertools
import secrets
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..crypto.keys import KeyPair, generate_keypair
from ..events import CREDENTIAL_REVOKED, Event, Subscription
from ..obs import runtime as _obs_runtime
from .credentials import AppointmentCertificate, CredentialRef, RoleMembershipCertificate
from .exceptions import SessionError
from .service import OasisService, Presentation
from .terms import Term
from .types import PrincipalId, Role

__all__ = ["Principal", "Session"]

#: Callback invoked as ``handler(rmc, reason)`` when a held role dies.
DeactivationHandler = Any

_SESSION_COUNTER = itertools.count(1)


class Principal:
    """A user or computational entity: identity, key pair, wallet.

    The wallet holds long-lived appointment certificates ("academic and
    professional qualification or membership of an organisation"); these
    survive across sessions, unlike RMCs.  Slotted: a scale world holds one
    of these per principal — a million-strong population.
    """

    __slots__ = ("id", "keypair", "_wallet")

    def __init__(self, principal_id: str,
                 keypair: Optional[KeyPair] = None) -> None:
        self.id = PrincipalId(principal_id)
        self.keypair = keypair
        self._wallet: List[AppointmentCertificate] = []

    def with_keys(self, bits: int = 512) -> "Principal":
        """Equip this principal with a fresh key pair (Sect. 4.1 PKC)."""
        self.keypair = generate_keypair(bits)
        return self

    @property
    def key_fingerprint(self) -> Optional[str]:
        if self.keypair is None:
            return None
        return self.keypair.fingerprint()

    def store_appointment(self, certificate: AppointmentCertificate) -> None:
        self._wallet.append(certificate)

    def appointments(self, name: Optional[str] = None
                     ) -> List[AppointmentCertificate]:
        if name is None:
            return list(self._wallet)
        return [cert for cert in self._wallet if cert.name == name]

    def drop_appointment(self, ref: CredentialRef) -> bool:
        before = len(self._wallet)
        self._wallet = [c for c in self._wallet if c.ref != ref]
        return len(self._wallet) != before

    def start_session(self, service: OasisService, role_name: str,
                      parameters: Optional[Sequence[Term]] = None,
                      use_appointments: Sequence[AppointmentCertificate] = (),
                      environment: Optional[Dict[str, Any]] = None,
                      ) -> "Session":
        """Begin an OASIS session by activating an initial role."""
        session = Session(self)
        session.activate(service, role_name, parameters,
                         use_appointments=use_appointments,
                         environment=environment)
        return session

    def __repr__(self) -> str:
        return f"Principal({self.id})"


class Session:
    """A live OASIS session for one principal.

    The first successful :meth:`activate` establishes the session root; all
    later activations automatically present the session's active RMCs as
    prerequisite-role credentials.  :meth:`logout` deactivates the root at
    its issuing service, and the distributed cascade collapses the rest —
    :meth:`active_roles` checks back with issuers, so it reflects the
    post-cascade state immediately.

    Slotted: scale workloads keep ~100k sessions live at once.
    """

    __slots__ = ("principal", "session_id", "_rmcs", "_history", "_issuers",
                 "_root_ref", "_terminated", "_deactivation_handlers",
                 "_watch_subs", "_obs")

    def __init__(self, principal: Principal) -> None:
        self.principal = principal
        self.session_id = (f"session-{next(_SESSION_COUNTER)}-"
                           f"{secrets.token_hex(4)}")
        # ``_rmcs`` holds the *live* view (dead refs are pruned so
        # presentations stop round-tripping ``is_active`` for long-dead
        # credentials); ``_history`` keeps every RMC ever acquired.
        self._rmcs: Dict[CredentialRef, RoleMembershipCertificate] = {}
        self._history: List[RoleMembershipCertificate] = []
        self._issuers: Dict[CredentialRef, OasisService] = {}
        self._root_ref: Optional[CredentialRef] = None
        self._terminated = False
        self._deactivation_handlers: List[DeactivationHandler] = []
        self._watch_subs: Dict[CredentialRef, Subscription] = {}
        self._obs = _obs_runtime.pipeline()

    # -- properties ----------------------------------------------------------
    @property
    def started(self) -> bool:
        return self._root_ref is not None

    @property
    def terminated(self) -> bool:
        return self._terminated

    @property
    def root_rmc(self) -> Optional[RoleMembershipCertificate]:
        if self._root_ref is None:
            return None
        return self._rmcs.get(self._root_ref)

    # -- operations ----------------------------------------------------------
    def activate(self, service: OasisService, role_name: str,
                 parameters: Optional[Sequence[Term]] = None,
                 use_appointments: Sequence[AppointmentCertificate] = (),
                 environment: Optional[Dict[str, Any]] = None,
                 ) -> RoleMembershipCertificate:
        """Activate a role at ``service``, presenting held credentials.

        All of the session's currently active RMCs are presented, plus any
        explicitly supplied appointment certificates (holder-bound ones are
        presented under this principal's id).
        """
        if self._obs is None:
            return self._activate_inner(service, role_name, parameters,
                                        use_appointments, environment)
        span = self._obs.tracer.start_span(
            "session.activate", timestamp=service.clock(),
            session=self.session_id, principal=self.principal.id.value,
            service=str(service.id), role=role_name)
        try:
            return self._activate_inner(service, role_name, parameters,
                                        use_appointments, environment)
        except Exception as failure:
            span.error(str(failure))
            raise
        finally:
            span.finish(service.clock())

    def _activate_inner(self, service: OasisService, role_name: str,
                        parameters: Optional[Sequence[Term]],
                        use_appointments: Sequence[AppointmentCertificate],
                        environment: Optional[Dict[str, Any]],
                        ) -> RoleMembershipCertificate:
        self._ensure_live()
        presentations = self._presentations(use_appointments)
        bound_key = self.principal.key_fingerprint
        rmc = service.activate_role(
            self.principal.id, role_name, parameters,
            credentials=presentations,
            environment=environment, session_id=self.session_id,
            bound_key=bound_key)
        self._rmcs[rmc.ref] = rmc
        self._history.append(rmc)
        self._issuers[rmc.ref] = service
        if self._root_ref is None:
            self._root_ref = rmc.ref
        if self._deactivation_handlers:
            self._watch_rmc(rmc, service)
        return rmc

    def on_deactivation(self, handler: DeactivationHandler) -> None:
        """Register ``handler(rmc, reason)`` to run whenever a held role is
        deactivated — by this session, by the issuer, or by a cascade.

        The active middleware makes this push-based: the session subscribes
        to the revocation channels of its RMCs, so the user learns of a
        collapse (e.g. a retracted registration) without polling.
        """
        self._ensure_live()
        self._deactivation_handlers.append(handler)
        if len(self._deactivation_handlers) == 1:
            for ref, rmc in self._rmcs.items():
                issuer = self._issuers[ref]
                if issuer.is_active(ref):
                    self._watch_rmc(rmc, issuer)

    def _watch_rmc(self, rmc: RoleMembershipCertificate,
                   issuer: OasisService) -> None:
        if rmc.ref in self._watch_subs:
            return
        self._watch_subs[rmc.ref] = issuer.broker.subscribe(
            CREDENTIAL_REVOKED,
            lambda event, r=rmc: self._on_revoked(r, event),
            credential_ref=str(rmc.ref))

    def _on_revoked(self, rmc: RoleMembershipCertificate,
                    event: Event) -> None:
        sub = self._watch_subs.pop(rmc.ref, None)
        if sub is not None:
            sub.cancel()
        self._discard(rmc.ref)
        for handler in list(self._deactivation_handlers):
            handler(rmc, event.get("reason"))

    def _discard(self, ref: CredentialRef) -> None:
        """Forget a dead credential: drop the live entry and its watch.

        The root RMC stays in the live map so :attr:`root_rmc` and
        :meth:`logout` keep working after an issuer-side revocation.
        """
        if ref != self._root_ref:
            self._rmcs.pop(ref, None)
        sub = self._watch_subs.pop(ref, None)
        if sub is not None:
            sub.cancel()

    def _release_watches(self) -> None:
        """Cancel every remaining watch subscription (session over).

        Without this, roles that did not depend on the root — and so
        survive its deactivation — would keep their revocation
        subscriptions alive on the broker forever.
        """
        for sub in self._watch_subs.values():
            sub.cancel()
        self._watch_subs.clear()

    def invoke(self, service: OasisService, method: str,
               arguments: Sequence[Term] = (),
               use_appointments: Sequence[AppointmentCertificate] = (),
               environment: Optional[Dict[str, Any]] = None) -> Any:
        """Invoke a guarded method, presenting held credentials."""
        self._ensure_live()
        return service.invoke(self.principal.id, method, arguments,
                              credentials=self._presentations(use_appointments),
                              environment=environment)

    def issue_appointment(self, service: OasisService, name: str,
                          parameters: Sequence[Term],
                          holder: Optional[str] = None,
                          expires_at: Optional[float] = None,
                          environment: Optional[Dict[str, Any]] = None,
                          ) -> AppointmentCertificate:
        """Issue an appointment at ``service`` using this session's roles."""
        self._ensure_live()
        return service.issue_appointment(
            self.principal.id, name, parameters,
            credentials=self._presentations(()),
            holder=holder, expires_at=expires_at, environment=environment)

    def deactivate(self, rmc: RoleMembershipCertificate,
                   reason: str = "deactivated by principal") -> bool:
        """Deactivate one held role; dependants collapse via the cascade."""
        self._ensure_live()
        issuer = self._issuers.get(rmc.ref)
        if issuer is None:
            raise SessionError(f"RMC {rmc.ref} is not held by this session")
        revoked = issuer.deactivate_role(rmc, reason)
        if rmc.ref == self._root_ref:
            self._terminated = True
            self._release_watches()
        return revoked

    def logout(self) -> None:
        """Deactivate the initial role; the whole session collapses."""
        self._ensure_live()
        if self._root_ref is None:
            self._terminated = True
            return
        root = self._rmcs[self._root_ref]
        self.deactivate(root, reason="logout")

    # -- inspection ----------------------------------------------------------
    def held_rmcs(self) -> List[RoleMembershipCertificate]:
        """All RMCs ever acquired in this session (including dead ones)."""
        return list(self._history)

    def active_rmcs(self) -> List[RoleMembershipCertificate]:
        """RMCs whose credential records are still active at their issuers.

        Self-pruning: a credential its issuer reports dead is checked once
        more at most — it is dropped from the live map here, so repeated
        presentations do not keep round-tripping ``is_active`` for it.
        """
        active = []
        dead = []
        for ref, rmc in self._rmcs.items():
            if self._issuers[ref].is_active(ref):
                active.append(rmc)
            else:
                dead.append(ref)
        for ref in dead:
            self._discard(ref)
        return active

    def active_roles(self) -> List[Role]:
        return [rmc.role for rmc in self.active_rmcs()]

    def holds_role(self, role: Role) -> bool:
        return any(rmc.role == role for rmc in self.active_rmcs())

    def dependency_edges(self) -> List[Tuple[CredentialRef, CredentialRef]]:
        """Edges (dependency -> dependent) of this session's role tree,
        read back from the issuers' credential records."""
        edges = []
        for ref, issuer in self._issuers.items():
            record = issuer.credential_record(ref)
            if record is None:
                continue
            for dependency in record.membership_dependencies:
                if dependency in self._rmcs:
                    edges.append((dependency, ref))
        return edges

    # -- internals -----------------------------------------------------------
    def _presentations(self,
                       use_appointments: Sequence[AppointmentCertificate],
                       ) -> List[Presentation]:
        presentations = [Presentation(rmc) for rmc in self.active_rmcs()]
        for certificate in use_appointments:
            presentations.append(
                Presentation(certificate, holder=certificate.holder))
        return presentations

    def _ensure_live(self) -> None:
        if self._terminated:
            raise SessionError(f"{self.session_id} has terminated")
