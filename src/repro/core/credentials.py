"""Certificates and credential records (Fig. 4 and Sect. 4 of the paper).

Two certificate kinds exist in OASIS:

* :class:`RoleMembershipCertificate` (RMC) — returned on successful role
  activation, valid only within the issuing session, *principal-specific*:
  the principal id enters the signature but is not a visible field, so a
  stolen RMC cannot be used without also forging the id (Sect. 4.1).
* :class:`AppointmentCertificate` — potentially long-lived credential
  (qualification, employment, membership) whose lifetime is independent of
  any session.  It may be bound to a persistent principal id or a public
  key, or be anonymous (the genetic-clinic membership card of Sect. 5).

Both carry a *credential record reference* (CRR, :class:`CredentialRef`)
"allow[ing] the issuer and the CR to be located" for callback validation.
The issuer keeps a :class:`CredentialRecord` per certificate "including its
current validity"; revocation flips the record and is pushed over the
credential's event channel (Fig. 5).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..crypto.hmac_sig import FieldValue, ServiceSecret, sign_fields, verify_fields
from .exceptions import CredentialError, SignatureInvalid
from .terms import DATACLASS_SLOTS, Term, is_ground
from .types import PrincipalId, Role, RoleName, ServiceId

__all__ = [
    "CredentialRef",
    "RoleMembershipCertificate",
    "AppointmentCertificate",
    "CredentialRecord",
    "CredentialStatus",
    "CredentialRefAllocator",
    "encode_parameters",
]


def encode_parameters(parameters: Tuple[Term, ...]) -> Tuple[FieldValue, ...]:
    """Re-check that parameters are ground and signable, pass them through."""
    for param in parameters:
        if not is_ground(param):
            raise CredentialError(f"certificate parameter {param!r} not ground")
    return tuple(parameters)  # ground terms are valid field values


@dataclass(frozen=True, order=True, **DATACLASS_SLOTS)
class CredentialRef:
    """The CRR of Fig. 4: locates the issuing service and the CR.

    ``serial`` is unique per issuer; the triple is globally unique without
    any central allocation, in keeping with the paper's decentralisation.

    The string form and the hash are both computed eagerly at construction
    (rather than lazily into ``__dict__``): refs key event channels, caches
    and the dependency maps consulted on every activation and revocation,
    and the slotted layout leaves no instance dict to memoize into.  A
    scale world holds one ref per credential, so the slot layout — three
    machine words instead of a dict — is where the memory goes.
    """

    service: ServiceId
    serial: int
    qualified: str = field(default="", init=False, repr=False, compare=False)
    _hash: int = field(default=0, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "qualified",
                           f"{self.service}#{self.serial}")
        object.__setattr__(self, "_hash", hash((self.service, self.serial)))

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Rebuild through the constructor so the derived fields are
        # recomputed (and the nested ServiceId re-interned) on unpickle.
        return (CredentialRef, (self.service, self.serial))

    def __str__(self) -> str:
        return self.qualified

    def as_field(self) -> str:
        return self.qualified


@dataclass(frozen=True, **DATACLASS_SLOTS)
class RoleMembershipCertificate:
    """An RMC per Fig. 4.

    ``bound_key`` optionally carries the fingerprint of a public session key
    (Sect. 4.1 "Integration with PKC") which the service may challenge at
    any time.  The signature covers the protected fields *and* the principal
    id, which is deliberately not stored in the certificate.
    """

    issuer: ServiceId
    role: Role
    ref: CredentialRef
    issued_at: float
    bound_key: Optional[str] = None
    signature: bytes = field(default=b"", repr=False)

    def protected_fields(self) -> Tuple[FieldValue, ...]:
        """The field sequence entering the signature (order is part of the
        wire format and must never change)."""
        return (
            "rmc",
            str(self.role.role_name),
            encode_parameters(self.role.parameters),
            self.ref.as_field(),
            self.issued_at,
            self.bound_key,
        )

    @classmethod
    def issue(cls, secret: ServiceSecret, issuer: ServiceId, role: Role,
              ref: CredentialRef, principal: PrincipalId, issued_at: float,
              bound_key: Optional[str] = None) -> "RoleMembershipCertificate":
        """Sign and return an RMC for ``principal``."""
        unsigned = cls(issuer=issuer, role=role, ref=ref,
                       issued_at=issued_at, bound_key=bound_key)
        signature = sign_fields(secret, principal.value,
                                unsigned.protected_fields())
        return replace(unsigned, signature=signature)

    def verify(self, secret: ServiceSecret, principal: PrincipalId) -> None:
        """Raise :class:`SignatureInvalid` unless the signature checks out
        for this ``principal`` — theft shows up as a wrong principal here."""
        if not verify_fields(secret, principal.value,
                             self.protected_fields(), self.signature):
            raise SignatureInvalid(
                f"RMC {self.ref} signature invalid for principal {principal}")

    @property
    def role_name(self) -> RoleName:
        return self.role.role_name


@dataclass(frozen=True, **DATACLASS_SLOTS)
class AppointmentCertificate:
    """A long-lived (or transient) appointment certificate.

    ``holder`` distinguishes the three binding modes of Sect. 4.1/5:

    * a persistent principal id (string form) — principal-specific;
    * a public-key fingerprint prefixed ``"key:"`` — key-bound, checkable by
      challenge-response;
    * ``None`` — anonymous (proof of membership without identity).

    ``secret_generation`` records which generation of the issuer's secret
    signed the certificate, so rotation ("re-issued, encrypted with a new
    server secret") makes stale certificates detectable.
    """

    issuer: ServiceId
    name: str
    parameters: Tuple[Term, ...]
    ref: CredentialRef
    issued_at: float
    expires_at: Optional[float] = None
    holder: Optional[str] = None
    secret_generation: int = 0
    signature: bytes = field(default=b"", repr=False)

    def protected_fields(self) -> Tuple[FieldValue, ...]:
        return (
            "appointment",
            self.name,
            encode_parameters(self.parameters),
            self.ref.as_field(),
            self.issued_at,
            self.expires_at,
            self.holder,
        )

    @classmethod
    def issue(cls, secret: ServiceSecret, issuer: ServiceId, name: str,
              parameters: Tuple[Term, ...], ref: CredentialRef,
              issued_at: float, expires_at: Optional[float] = None,
              holder: Optional[str] = None) -> "AppointmentCertificate":
        unsigned = cls(issuer=issuer, name=name, parameters=parameters,
                       ref=ref, issued_at=issued_at, expires_at=expires_at,
                       holder=holder, secret_generation=secret.generation)
        # Anonymous certificates MAC the empty principal id.
        signature = sign_fields(secret, unsigned.holder or "",
                                unsigned.protected_fields())
        return replace(unsigned, signature=signature)

    def verify(self, secret: ServiceSecret,
               presented_holder: Optional[str] = None) -> None:
        """Verify signature and holder binding.

        For a holder-bound certificate the presenter must claim the matching
        holder identity; anonymous certificates verify for any presenter.
        """
        if self.secret_generation != secret.generation:
            raise SignatureInvalid(
                f"appointment {self.ref} signed under secret generation "
                f"{self.secret_generation}, issuer now at {secret.generation} "
                f"(certificate must be re-issued)")
        if self.holder is not None and presented_holder != self.holder:
            raise SignatureInvalid(
                f"appointment {self.ref} is bound to holder {self.holder!r}")
        if not verify_fields(secret, self.holder or "",
                             self.protected_fields(), self.signature):
            raise SignatureInvalid(
                f"appointment {self.ref} signature invalid")

    def is_expired(self, now: float) -> bool:
        return self.expires_at is not None and now >= self.expires_at

    def reissued(self, secret: ServiceSecret,
                 issued_at: float) -> "AppointmentCertificate":
        """Re-sign under a (rotated) secret — Sect. 4.1's mitigation for the
        greater theft exposure of long-lived certificates."""
        return AppointmentCertificate.issue(
            secret, self.issuer, self.name, self.parameters, self.ref,
            issued_at, self.expires_at, self.holder)


class CredentialStatus:
    """Status values of a credential record."""

    ACTIVE = "active"
    REVOKED = "revoked"


@dataclass(**DATACLASS_SLOTS)
class CredentialRecord:
    """Issuer-side record of a certificate's current validity (the CR).

    ``membership_dependencies`` lists the CRRs of credentials that appear in
    the *membership rule* of the activation that produced this credential:
    when any of them is revoked, this credential must be revoked too —
    that is the dependency edge of Fig. 1/Fig. 5 along which cascades run.
    """

    ref: CredentialRef
    kind: str  # "rmc" | "appointment"
    principal: Optional[PrincipalId]
    issued_at: float
    status: str = CredentialStatus.ACTIVE
    revoked_reason: Optional[str] = None
    revoked_at: Optional[float] = None
    membership_dependencies: Tuple[CredentialRef, ...] = ()
    session_id: Optional[str] = None

    @property
    def active(self) -> bool:
        return self.status == CredentialStatus.ACTIVE

    def revoke(self, reason: str, at: float) -> bool:
        """Mark revoked; returns False when already revoked (idempotent)."""
        if not self.active:
            return False
        self.status = CredentialStatus.REVOKED
        self.revoked_reason = reason
        self.revoked_at = at
        return True


class CredentialRefAllocator:
    """Allocates per-service unique CRRs."""

    __slots__ = ("_service", "_counter", "_next_serial")

    def __init__(self, service: ServiceId) -> None:
        self._service = service
        self._next_serial = 1
        self._counter = itertools.count(1)

    @property
    def service(self) -> ServiceId:
        """The service this allocator mints refs for."""
        return self._service

    def next(self) -> CredentialRef:
        serial = next(self._counter)
        self._next_serial = serial + 1
        return CredentialRef(self._service, serial)

    @property
    def next_serial(self) -> int:
        """The serial the next allocation will use (resume bookkeeping)."""
        return self._next_serial

    def advance_past(self, serial: int) -> None:
        """Ensure future allocations start strictly after ``serial``.

        A resumed service advances past both the highest serial found in
        its record store and the durably-reserved watermark, so CRRs never
        collide with certificates issued before the restart — including
        ones whose (write-behind) records were lost with the process.
        """
        if serial + 1 > self._next_serial:
            self._next_serial = serial + 1
            self._counter = itertools.count(self._next_serial)

    def next_many(self, count: int) -> List[CredentialRef]:
        """Allocate ``count`` consecutive refs in one call (bulk issuance)."""
        service = self._service
        counter = self._counter
        refs = [CredentialRef(service, next(counter)) for _ in range(count)]
        if refs:
            self._next_serial = refs[-1].serial + 1
        return refs
