"""Audit certificates and trust assessment between unknown parties (Sect. 6).

The paper's speculative extension: "a certified record of an interaction
between a principal and a service could contribute to the evidence of the
trustworthiness of both parties.  Such certificates might be exchanged and
validated before a principal uses a previously unknown service."

This module provides:

* :class:`AuditCertificate` — issued by a CIV service after an interaction
  subject to contract, to *both* parties, recording the outcome each way;
* :class:`InteractionHistory` — a party's accumulated certificates;
* :class:`TrustPolicy` / :class:`TrustEvaluator` — the risk calculus the
  paper sketches.  It addresses the snags the paper itself raises:

  - *collusion* ("a client and service might collude to build up a false
    history"): per-counterparty contributions are capped, so a thousand
    glowing certificates from one friendly service count little more than a
    handful;
  - *rogue domains* ("a rogue domain might provide valueless audit
    certificates"): each certificate is weighted by the reputation of the
    CIV domain that issued it — "the domain of the auditing service for a
    certificate is a factor that must be taken into account when assessing
    the risk".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Tuple

from ..crypto.hmac_sig import ServiceSecret, sign_fields, verify_fields
from .credentials import CredentialRef
from .exceptions import SignatureInvalid
from .types import ServiceId

__all__ = [
    "Outcome",
    "AuditCertificate",
    "InteractionHistory",
    "TrustPolicy",
    "TrustDecision",
    "TrustEvaluator",
]


class Outcome:
    """How an interaction subject to contract concluded, per party.

    ``FULFILLED`` — the party met its side of the contract.
    ``DEFAULTED`` — the party exploited resources, failed to pay, breached
    confidentiality, or delivered poor/partial fulfilment (the risks listed
    in Sect. 6).
    ``DISPUTED`` — the parties did not agree on the outcome.
    """

    FULFILLED = "fulfilled"
    DEFAULTED = "defaulted"
    DISPUTED = "disputed"

    ALL = (FULFILLED, DEFAULTED, DISPUTED)


@dataclass(frozen=True)
class AuditCertificate:
    """A certified record of one interaction, signed by a CIV service.

    ``subject`` is the party this copy testifies about; ``counterparty`` is
    the other side.  The CIV issues one certificate per party per
    interaction ("which it issues to both parties and validates on
    request").  ``ref`` lets a verifier locate the issuing CIV for callback
    validation, exactly like any other OASIS certificate.
    """

    issuer: ServiceId          # the CIV service
    subject: str               # principal id or service id string
    counterparty: str
    outcome: str               # Outcome of the *subject's* conduct
    contract: str              # short description of the agreed contract
    ref: CredentialRef = field(default=None)  # type: ignore[assignment]
    issued_at: float = 0.0
    signature: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if self.outcome not in Outcome.ALL:
            raise ValueError(f"unknown outcome {self.outcome!r}")

    def protected_fields(self) -> Tuple:
        return ("audit", self.subject, self.counterparty, self.outcome,
                self.contract, self.ref.as_field() if self.ref else None,
                self.issued_at)

    @classmethod
    def issue(cls, secret: ServiceSecret, issuer: ServiceId, subject: str,
              counterparty: str, outcome: str, contract: str,
              ref: CredentialRef, issued_at: float) -> "AuditCertificate":
        unsigned = cls(issuer=issuer, subject=subject,
                       counterparty=counterparty, outcome=outcome,
                       contract=contract, ref=ref, issued_at=issued_at)
        signature = sign_fields(secret, subject, unsigned.protected_fields())
        return replace(unsigned, signature=signature)

    def verify(self, secret: ServiceSecret) -> None:
        if not verify_fields(secret, self.subject, self.protected_fields(),
                             self.signature):
            raise SignatureInvalid(f"audit certificate {self.ref} invalid")


class InteractionHistory:
    """A party's accumulated audit certificates (about itself)."""

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._certificates: List[AuditCertificate] = []

    def add(self, certificate: AuditCertificate) -> None:
        if certificate.subject != self.owner:
            raise ValueError(
                f"certificate testifies about {certificate.subject!r}, "
                f"not {self.owner!r}")
        self._certificates.append(certificate)

    def certificates(self) -> List[AuditCertificate]:
        return list(self._certificates)

    def __len__(self) -> int:
        return len(self._certificates)


@dataclass(frozen=True)
class TrustPolicy:
    """Parameters of the trust calculus.

    ``domain_weights`` maps a CIV domain name to the credence given to its
    certificates, in [0, 1]; ``default_domain_weight`` applies to domains
    not listed (the cautious default is low, not zero — an unknown auditor
    is weak evidence, not no evidence).  ``per_counterparty_cap`` bounds the
    *effective number* of certificates counted from any single counterparty
    (collusion resistance: a client and service "might collude to build up
    a false history").  ``per_domain_cap`` bounds the total evidence
    creditable to any single auditing domain, *scaled by that domain's
    weight* — a barely-trusted CIV can never underwrite much trust, no
    matter how many certificates it signs or how many shill counterparties
    appear in them (the rogue-domain snag).  ``prior_successes`` /
    ``prior_failures`` are the Beta prior of the score — pessimistic priors
    mean short histories earn little trust.  ``threshold`` must be
    *strictly exceeded* for a positive decision — evidence that only just
    reaches the bar (e.g. a low-weight domain saturating its cap with
    uniform praise) is not enough.
    """

    domain_weights: Tuple[Tuple[str, float], ...] = ()
    default_domain_weight: float = 0.2
    per_counterparty_cap: float = 3.0
    per_domain_cap: float = 8.0
    prior_successes: float = 1.0
    prior_failures: float = 1.0
    threshold: float = 0.6
    disputed_failure_fraction: float = 0.5

    def weight_for_domain(self, domain: str) -> float:
        for name, weight in self.domain_weights:
            if name == domain:
                return weight
        return self.default_domain_weight

    @classmethod
    def with_weights(cls, weights: Dict[str, float],
                     **kwargs) -> "TrustPolicy":
        return cls(domain_weights=tuple(sorted(weights.items())), **kwargs)


@dataclass(frozen=True)
class TrustDecision:
    """The outcome of evaluating a counterparty's history."""

    score: float
    accept: bool
    evidence_weight: float
    counterparties: int
    discarded: int  # certificates rejected (bad signature, wrong subject)

    def __str__(self) -> str:
        verdict = "ACCEPT" if self.accept else "REJECT"
        return (f"{verdict} score={self.score:.3f} "
                f"evidence={self.evidence_weight:.2f} "
                f"counterparties={self.counterparties}")


class TrustEvaluator:
    """Scores a presented interaction history under a :class:`TrustPolicy`.

    ``civ_secrets`` maps CIV service ids to their verification secrets —
    in a deployment this is callback validation to the CIV; the evaluator
    accepts a validator callable for exactly that, see ``validator``.
    Certificates that fail validation are discarded, not merely
    down-weighted: a bad signature is forgery, not weak evidence.
    """

    def __init__(self, policy: TrustPolicy,
                 validator=None) -> None:
        self.policy = policy
        self._validator = validator

    def evaluate(self, subject: str,
                 certificates: Iterable[AuditCertificate]) -> TrustDecision:
        """Evaluate ``subject``'s presented certificates.

        Implements a weighted Beta-Bernoulli estimate: each valid
        certificate contributes ``domain_weight`` (capped per counterparty)
        of a success or failure observation; the score is the posterior
        mean, accepted iff it reaches the policy threshold.
        """
        policy = self.policy
        successes = policy.prior_successes
        failures = policy.prior_failures
        per_counterparty: Dict[str, float] = defaultdict(float)
        per_domain: Dict[str, float] = defaultdict(float)
        discarded = 0
        evidence = 0.0
        for certificate in certificates:
            if certificate.subject != subject:
                discarded += 1
                continue
            if self._validator is not None:
                try:
                    self._validator(certificate)
                except Exception:
                    discarded += 1
                    continue
            domain = certificate.issuer.domain
            weight = policy.weight_for_domain(domain)
            if weight <= 0:
                discarded += 1
                continue
            counterparty_room = (policy.per_counterparty_cap
                                 - per_counterparty[certificate.counterparty])
            domain_room = (policy.per_domain_cap * weight
                           - per_domain[domain])
            room = min(counterparty_room, domain_room)
            if room <= 0:
                continue
            effective = min(weight, room)
            per_counterparty[certificate.counterparty] += effective
            per_domain[domain] += effective
            evidence += effective
            if certificate.outcome == Outcome.FULFILLED:
                successes += effective
            elif certificate.outcome == Outcome.DEFAULTED:
                failures += effective
            else:  # DISPUTED splits per policy
                failures += effective * policy.disputed_failure_fraction
                successes += effective * (1 - policy.disputed_failure_fraction)
        score = successes / (successes + failures)
        return TrustDecision(
            score=score,
            accept=score > policy.threshold,
            evidence_weight=evidence,
            counterparties=len(per_counterparty),
            discarded=discarded,
        )
