"""First-order terms and unification for parametrised OASIS rules.

OASIS role activation rules are Horn clauses over *parametrised* role and
credential predicates (Sect. 2 of the paper).  A rule such as::

    treating_doctor(doc, pat) <- doctor(doc), allocated(doc, pat)

mentions *variables* (``doc``, ``pat``) that are bound when a principal
presents ground credentials.  This module supplies the term language and the
unification machinery the policy engine (:mod:`repro.core.engine`) is built
on:

* :class:`Var` — a named logic variable.
* ground Python values (str, int, float, bool, None, tuples of these) act as
  constants; tuples unify element-wise.
* :class:`Substitution` — an immutable mapping from variables to terms.
* :func:`unify` — sound first-order unification with occurs check.

The design keeps constants as plain Python values rather than wrapping them,
so application code can write ``Role("doctor", ("d42",))`` and policy code
``RoleTemplate("doctor", ("who",))`` without ceremony.
"""

from __future__ import annotations

import sys
from typing import (Any, Callable, Dict, Hashable, Iterable, Iterator,
                    Mapping, Optional, Tuple, Union)

__all__ = [
    "Var",
    "Term",
    "Substitution",
    "EMPTY_SUBSTITUTION",
    "unify",
    "unify_sequences",
    "is_ground",
    "variables_in",
    "fresh_var",
    "InternPool",
    "intern_pool",
    "pool_stats",
    "intern_atom",
    "DATACLASS_SLOTS",
]

#: Keyword arguments that make a ``@dataclass`` slotted where the runtime
#: supports it (``slots=True`` needs 3.10).  On older interpreters the
#: classes fall back to ``__dict__`` storage with identical semantics —
#: the memory optimization degrades gracefully instead of breaking 3.9.
DATACLASS_SLOTS: Dict[str, bool] = (
    {"slots": True} if sys.version_info >= (3, 10) else {})


class InternPool:
    """A canonicalizing pool for immutable value objects.

    At a million principals the resident cost of the core object graph is
    dominated by *duplicated* small objects: every certificate carries a
    :class:`~repro.core.types.ServiceId`, every role a
    :class:`~repro.core.types.RoleName`, and naive construction allocates a
    fresh instance each time.  The pool maps a hashable key to the one
    canonical instance, so a world with S services holds S ``ServiceId``
    objects no matter how many credentials reference them.

    The design is deliberately *invalidation-free*: only immutable value
    objects whose identity is fully determined by the key may be pooled, so
    an entry can never go stale and nothing ever needs to be evicted or
    re-validated.  Population is bounded by the number of distinct
    *values* (services, role names), not by traffic, which is why entries
    are held strongly.  Per-principal objects (refs, certificates) are NOT
    pooled — their population is unbounded.

    ``hits``/``misses`` feed the ``oasis_memory_intern_pool`` gauges so
    scale runs can confirm the pool is actually being shared.
    """

    __slots__ = ("name", "hits", "misses", "_pool")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0
        self._pool: Dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return len(self._pool)

    def intern(self, key: Hashable, factory: Callable[[], Any]) -> Any:
        """Return the canonical instance for ``key``, creating via
        ``factory`` on first sight."""
        instance = self._pool.get(key)
        if instance is not None:
            self.hits += 1
            return instance
        self.misses += 1
        instance = factory()
        self._pool[key] = instance
        return instance

    def get(self, key: Hashable) -> Optional[Any]:
        """The pooled instance for ``key``, or None (counts as hit/miss)."""
        instance = self._pool.get(key)
        if instance is not None:
            self.hits += 1
        else:
            self.misses += 1
        return instance

    def put(self, key: Hashable, instance: Any) -> Any:
        """Install ``instance`` as canonical for ``key`` unless one exists;
        returns the canonical instance either way."""
        existing = self._pool.get(key)
        if existing is not None:
            return existing
        self._pool[key] = instance
        return instance

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._pool), "hits": self.hits,
                "misses": self.misses}


#: Registry of named pools, for observability export (`pool_stats`).
_POOLS: Dict[str, InternPool] = {}


def intern_pool(name: str) -> InternPool:
    """Get-or-create the named pool (process-wide, like the classes that
    use it — canonical instances must be canonical everywhere)."""
    pool = _POOLS.get(name)
    if pool is None:
        pool = _POOLS[name] = InternPool(name)
    return pool


def pool_stats() -> Dict[str, Dict[str, int]]:
    """Per-pool entry/hit/miss counts, consumed by the
    ``oasis_memory_intern_pool`` observability collector."""
    return {name: pool.stats() for name, pool in sorted(_POOLS.items())}


def intern_atom(value: Term) -> Term:
    """Canonicalize an atomic term: strings via :func:`sys.intern`, tuples
    element-wise; other atoms pass through.

    Meant for *small, recurring* atoms — role names, service names, status
    strings — where wire decoding or policy loading would otherwise
    allocate a fresh copy per certificate.  Do not feed it unbounded
    populations (principal ids): interned strings live for the process.
    """
    if type(value) is str:
        return sys.intern(value)
    if type(value) is tuple:
        return tuple(intern_atom(item) for item in value)
    return value


class Var:
    """A logic variable, identified by name.

    Two ``Var`` objects with the same name are the same variable.  Variable
    names are ordinary identifiers; the convention in policy text is lower
    case (``doc``, ``pat``) but nothing is enforced here.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise TypeError("variable name must be a non-empty string")
        self.name = name
        # Precomputed: variables key every substitution lookup on the
        # solver's hot path.
        self._hash = hash(("Var", name))

    def __repr__(self) -> str:
        return f"?{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash


#: A term is a variable, an atomic Python constant, or a tuple of terms.
Term = Union[Var, str, int, float, bool, None, Tuple["Term", ...]]

_ATOMIC_TYPES = (str, int, float, bool, type(None), bytes)

_FRESH_COUNTER = [0]


def fresh_var(prefix: str = "_v") -> Var:
    """Return a variable guaranteed not to clash with user-written names.

    Fresh variables carry a ``$`` so they can never collide with identifiers
    produced by the policy parser.
    """
    _FRESH_COUNTER[0] += 1
    return Var(f"{prefix}${_FRESH_COUNTER[0]}")


def _check_term(term: Term) -> None:
    if isinstance(term, Var) or isinstance(term, _ATOMIC_TYPES):
        return
    if isinstance(term, tuple):
        for sub in term:
            _check_term(sub)
        return
    raise TypeError(f"not a valid term: {term!r} (type {type(term).__name__})")


def is_ground(term: Term) -> bool:
    """Return True when ``term`` contains no variables."""
    if isinstance(term, Var):
        return False
    if isinstance(term, tuple):
        return all(is_ground(sub) for sub in term)
    return True


def variables_in(term: Term) -> Iterator[Var]:
    """Yield each variable occurring in ``term`` (with repeats)."""
    if isinstance(term, Var):
        yield term
    elif isinstance(term, tuple):
        for sub in term:
            yield from variables_in(sub)


_MISSING = object()


class Substitution(Mapping[Var, Term]):
    """An immutable map from variables to terms.

    Substitutions are built up during unification and applied to terms with
    :meth:`apply`.  They are *idempotent*: bindings are resolved through the
    substitution when applied, so chained bindings (``x -> y, y -> 1``)
    behave correctly.

    Internally a substitution is *persistent*: :meth:`bind` allocates a
    single chain node sharing all ancestor bindings instead of copying (and
    re-validating) the whole mapping, so extending a substitution is O(1)
    and a rule solve that binds n variables costs O(n), not O(n²).  Lookups
    walk the chain (bounded by the number of bindings a single rule can
    make, i.e. small); the flat dict is materialised lazily only for
    iteration, equality and hashing.  :meth:`apply` memoises resolved
    variables per instance — sound because instances never change.
    """

    __slots__ = ("_parent", "_var", "_value", "_size", "_flat", "_cache")

    def __init__(self, bindings: Optional[Mapping[Var, Term]] = None) -> None:
        flat: Dict[Var, Term] = dict(bindings) if bindings else {}
        for var, value in flat.items():
            if not isinstance(var, Var):
                raise TypeError(f"substitution keys must be Var, got {var!r}")
            _check_term(value)
        self._parent: Optional[Substitution] = None
        self._var: Optional[Var] = None
        self._value: Optional[Term] = None
        self._size = len(flat)
        self._flat: Optional[Dict[Var, Term]] = flat
        self._cache: Dict[Var, Term] = {}

    def _lookup(self, var: Var) -> Term:
        """Return the direct binding of ``var`` or the _MISSING sentinel."""
        node: Substitution = self
        while node._flat is None:
            if node._var == var:
                return node._value
            node = node._parent
        return node._flat.get(var, _MISSING)

    def _materialize(self) -> Dict[Var, Term]:
        if self._flat is None:
            chain = []
            node: Substitution = self
            while node._flat is None:
                chain.append((node._var, node._value))
                node = node._parent
            flat = dict(node._flat)
            for var, value in reversed(chain):
                flat[var] = value
            self._flat = flat
        return self._flat

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, var: Var) -> Term:
        value = self._lookup(var)
        if value is _MISSING:
            raise KeyError(var)
        return value

    def __iter__(self) -> Iterator[Var]:
        return iter(self._materialize())

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        inner = ", ".join(f"{v!r}={t!r}" for v, t in sorted(
            self._materialize().items(), key=lambda item: item[0].name))
        return f"{{{inner}}}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._materialize() == other._materialize()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._materialize().items()))

    # -- operations --------------------------------------------------------
    def apply(self, term: Term) -> Term:
        """Apply this substitution to ``term``, resolving chains of bindings."""
        if isinstance(term, Var):
            cached = self._cache.get(term, _MISSING)
            if cached is not _MISSING:
                return cached
            seen = set()
            current: Term = term
            while isinstance(current, Var):
                value = self._lookup(current)
                if value is _MISSING:
                    break
                if current in seen:  # defensive: cycles cannot arise via unify()
                    raise ValueError(f"cyclic substitution at {current!r}")
                seen.add(current)
                current = value
            if isinstance(current, tuple):
                current = tuple(self.apply(sub) for sub in current)
            self._cache[term] = current
            return current
        if isinstance(term, tuple):
            return tuple(self.apply(sub) for sub in term)
        return term

    def resolve(self, term: Term) -> Term:
        """Dereference variable chains *shallowly*: follow ``var -> var ->
        value`` links but do not rebuild tuples.  Unification only needs the
        outermost shape of a term, so this avoids :meth:`apply`'s recursive
        tuple copies on the solver's hot path."""
        steps = 0
        while type(term) is Var:
            value = self._lookup(term)
            if value is _MISSING:
                return term
            term = value
            steps += 1
            if steps > self._size:  # defensive: unify() cannot build cycles
                raise ValueError(f"cyclic substitution at {term!r}")
        return term

    def bind(self, var: Var, value: Term) -> "Substitution":
        """Return a new substitution extended with ``var -> value``."""
        if not isinstance(var, Var):
            raise TypeError(f"substitution keys must be Var, got {var!r}")
        if self._lookup(var) is not _MISSING:
            raise ValueError(f"variable {var!r} already bound")
        _check_term(value)
        new = Substitution.__new__(Substitution)
        new._parent = self
        new._var = var
        new._value = value
        new._size = self._size + 1
        new._flat = None
        new._cache = {}
        return new

    def merged_with(self, other: "Substitution") -> Optional["Substitution"]:
        """Merge two substitutions, unifying on shared variables.

        Returns None when the substitutions conflict.
        """
        result: Optional[Substitution] = self
        for var, value in other.items():
            assert result is not None
            result = unify(var, value, result)
            if result is None:
                return None
        return result


EMPTY_SUBSTITUTION = Substitution()


def _occurs(var: Var, term: Term, subst: Substitution) -> bool:
    term = subst.apply(term)
    if isinstance(term, Var):
        return term == var
    if isinstance(term, tuple):
        return any(_occurs(var, sub, subst) for sub in term)
    return False


def unify(left: Term, right: Term,
          subst: Substitution = EMPTY_SUBSTITUTION) -> Optional[Substitution]:
    """Unify two terms under ``subst``; return the extended substitution.

    Returns None when the terms do not unify.  Atomic constants unify by
    Python equality with matching types — ``1`` and ``True`` are distinct
    here even though ``1 == True`` in Python, because certificate parameters
    must not silently coerce.
    """
    left = subst.resolve(left)
    right = subst.resolve(right)

    if isinstance(left, Var):
        if isinstance(right, Var) and right == left:
            return subst
        # Occurs check: only a tuple can contain the variable (an atomic
        # right cannot, and a distinct resolved variable never equals left).
        if isinstance(right, tuple) and _occurs(left, right, subst):
            return None
        return subst.bind(left, right)
    if isinstance(right, Var):
        return unify(right, left, subst)

    if isinstance(left, tuple) and isinstance(right, tuple):
        if len(left) != len(right):
            return None
        current: Optional[Substitution] = subst
        for sub_left, sub_right in zip(left, right):
            current = unify(sub_left, sub_right, current)
            if current is None:
                return None
        return current

    if isinstance(left, tuple) or isinstance(right, tuple):
        return None

    if type(left) is not type(right):
        # bool is a subclass of int; keep them distinct for parameters.
        if isinstance(left, bool) or isinstance(right, bool):
            return None
        if not (isinstance(left, (int, float)) and isinstance(right, (int, float))):
            return None
    return subst if left == right else None


def unify_sequences(left: Iterable[Term], right: Iterable[Term],
                    subst: Substitution = EMPTY_SUBSTITUTION,
                    ) -> Optional[Substitution]:
    """Unify two equal-length sequences of terms pair-wise.

    Pair-wise iteration (rather than wrapping both sides in tuples and
    unifying those) skips a tuple copy and a full :meth:`Substitution.apply`
    of each side per call.
    """
    if type(left) is not tuple:
        left = tuple(left)
    if type(right) is not tuple:
        right = tuple(right)
    if len(left) != len(right):
        return None
    current: Optional[Substitution] = subst
    for sub_left, sub_right in zip(left, right):
        current = unify(sub_left, sub_right, current)
        if current is None:
            return None
    return current
