"""First-order terms and unification for parametrised OASIS rules.

OASIS role activation rules are Horn clauses over *parametrised* role and
credential predicates (Sect. 2 of the paper).  A rule such as::

    treating_doctor(doc, pat) <- doctor(doc), allocated(doc, pat)

mentions *variables* (``doc``, ``pat``) that are bound when a principal
presents ground credentials.  This module supplies the term language and the
unification machinery the policy engine (:mod:`repro.core.engine`) is built
on:

* :class:`Var` — a named logic variable.
* ground Python values (str, int, float, bool, None, tuples of these) act as
  constants; tuples unify element-wise.
* :class:`Substitution` — an immutable mapping from variables to terms.
* :func:`unify` — sound first-order unification with occurs check.

The design keeps constants as plain Python values rather than wrapping them,
so application code can write ``Role("doctor", ("d42",))`` and policy code
``RoleTemplate("doctor", ("who",))`` without ceremony.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple, Union

__all__ = [
    "Var",
    "Term",
    "Substitution",
    "EMPTY_SUBSTITUTION",
    "unify",
    "unify_sequences",
    "is_ground",
    "variables_in",
    "fresh_var",
]


class Var:
    """A logic variable, identified by name.

    Two ``Var`` objects with the same name are the same variable.  Variable
    names are ordinary identifiers; the convention in policy text is lower
    case (``doc``, ``pat``) but nothing is enforced here.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not isinstance(name, str) or not name:
            raise TypeError("variable name must be a non-empty string")
        self.name = name

    def __repr__(self) -> str:
        return f"?{self.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))


#: A term is a variable, an atomic Python constant, or a tuple of terms.
Term = Union[Var, str, int, float, bool, None, Tuple["Term", ...]]

_ATOMIC_TYPES = (str, int, float, bool, type(None), bytes)

_FRESH_COUNTER = [0]


def fresh_var(prefix: str = "_v") -> Var:
    """Return a variable guaranteed not to clash with user-written names.

    Fresh variables carry a ``$`` so they can never collide with identifiers
    produced by the policy parser.
    """
    _FRESH_COUNTER[0] += 1
    return Var(f"{prefix}${_FRESH_COUNTER[0]}")


def _check_term(term: Term) -> None:
    if isinstance(term, Var) or isinstance(term, _ATOMIC_TYPES):
        return
    if isinstance(term, tuple):
        for sub in term:
            _check_term(sub)
        return
    raise TypeError(f"not a valid term: {term!r} (type {type(term).__name__})")


def is_ground(term: Term) -> bool:
    """Return True when ``term`` contains no variables."""
    if isinstance(term, Var):
        return False
    if isinstance(term, tuple):
        return all(is_ground(sub) for sub in term)
    return True


def variables_in(term: Term) -> Iterator[Var]:
    """Yield each variable occurring in ``term`` (with repeats)."""
    if isinstance(term, Var):
        yield term
    elif isinstance(term, tuple):
        for sub in term:
            yield from variables_in(sub)


class Substitution(Mapping[Var, Term]):
    """An immutable map from variables to terms.

    Substitutions are built up during unification and applied to terms with
    :meth:`apply`.  They are *idempotent*: bindings are resolved through the
    substitution when applied, so chained bindings (``x -> y, y -> 1``)
    behave correctly.
    """

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Mapping[Var, Term]] = None) -> None:
        self._bindings: Dict[Var, Term] = dict(bindings) if bindings else {}
        for var, value in self._bindings.items():
            if not isinstance(var, Var):
                raise TypeError(f"substitution keys must be Var, got {var!r}")
            _check_term(value)

    # -- Mapping interface -------------------------------------------------
    def __getitem__(self, var: Var) -> Term:
        return self._bindings[var]

    def __iter__(self) -> Iterator[Var]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v!r}={t!r}" for v, t in sorted(
            self._bindings.items(), key=lambda item: item[0].name))
        return f"{{{inner}}}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Substitution):
            return self._bindings == other._bindings
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._bindings.items()))

    # -- operations --------------------------------------------------------
    def apply(self, term: Term) -> Term:
        """Apply this substitution to ``term``, resolving chains of bindings."""
        if isinstance(term, Var):
            seen = set()
            current: Term = term
            while isinstance(current, Var) and current in self._bindings:
                if current in seen:  # defensive: cycles cannot arise via unify()
                    raise ValueError(f"cyclic substitution at {current!r}")
                seen.add(current)
                current = self._bindings[current]
            if isinstance(current, tuple):
                return tuple(self.apply(sub) for sub in current)
            return current
        if isinstance(term, tuple):
            return tuple(self.apply(sub) for sub in term)
        return term

    def bind(self, var: Var, value: Term) -> "Substitution":
        """Return a new substitution extended with ``var -> value``."""
        if var in self._bindings:
            raise ValueError(f"variable {var!r} already bound")
        new = dict(self._bindings)
        new[var] = value
        return Substitution(new)

    def merged_with(self, other: "Substitution") -> Optional["Substitution"]:
        """Merge two substitutions, unifying on shared variables.

        Returns None when the substitutions conflict.
        """
        result: Optional[Substitution] = self
        for var, value in other.items():
            assert result is not None
            result = unify(var, value, result)
            if result is None:
                return None
        return result


EMPTY_SUBSTITUTION = Substitution()


def _occurs(var: Var, term: Term, subst: Substitution) -> bool:
    term = subst.apply(term)
    if isinstance(term, Var):
        return term == var
    if isinstance(term, tuple):
        return any(_occurs(var, sub, subst) for sub in term)
    return False


def unify(left: Term, right: Term,
          subst: Substitution = EMPTY_SUBSTITUTION) -> Optional[Substitution]:
    """Unify two terms under ``subst``; return the extended substitution.

    Returns None when the terms do not unify.  Atomic constants unify by
    Python equality with matching types — ``1`` and ``True`` are distinct
    here even though ``1 == True`` in Python, because certificate parameters
    must not silently coerce.
    """
    left = subst.apply(left)
    right = subst.apply(right)

    if isinstance(left, Var):
        if isinstance(right, Var) and right == left:
            return subst
        if _occurs(left, right, subst):
            return None
        return subst.bind(left, right)
    if isinstance(right, Var):
        return unify(right, left, subst)

    if isinstance(left, tuple) and isinstance(right, tuple):
        if len(left) != len(right):
            return None
        current: Optional[Substitution] = subst
        for sub_left, sub_right in zip(left, right):
            current = unify(sub_left, sub_right, current)
            if current is None:
                return None
        return current

    if isinstance(left, tuple) or isinstance(right, tuple):
        return None

    if type(left) is not type(right):
        # bool is a subclass of int; keep them distinct for parameters.
        if isinstance(left, bool) or isinstance(right, bool):
            return None
        if not (isinstance(left, (int, float)) and isinstance(right, (int, float))):
            return None
    return subst if left == right else None


def unify_sequences(left: Iterable[Term], right: Iterable[Term],
                    subst: Substitution = EMPTY_SUBSTITUTION,
                    ) -> Optional[Substitution]:
    """Unify two equal-length sequences of terms pair-wise."""
    return unify(tuple(left), tuple(right), subst)
