"""Wire encoding of certificates: JSON-able dictionaries.

The simulator passes certificate objects by reference; a real deployment
serialises them.  This module defines the interchange format — flat,
JSON-compatible dictionaries (bytes as hex, parameters as tagged trees so
tuples, bools and numbers survive the trip) — and the corresponding
decoders.  Signatures are computed over the *canonical field encoding*
(:mod:`repro.crypto.hmac_sig`), not over this representation, so
re-encoding does not invalidate certificates.

Round-tripping is property-tested: ``decode(encode(cert)) == cert`` and
the decoded certificate still verifies.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple, Union

from .credentials import (
    AppointmentCertificate,
    CredentialRef,
    RoleMembershipCertificate,
)
from .exceptions import CredentialError
from .terms import Term
from .types import Role, RoleName, ServiceId

__all__ = [
    "encode_certificate",
    "decode_certificate",
    "encode_term",
    "decode_term",
    "WireError",
]


class WireError(CredentialError):
    """Malformed wire data."""


# -- terms ---------------------------------------------------------------------

def encode_term(term: Term) -> Any:
    """Encode a ground term as a JSON-able tagged value."""
    if term is None or isinstance(term, (str, float)) \
            and not isinstance(term, bool):
        return term
    if isinstance(term, bool):
        return {"t": "bool", "v": term}
    if isinstance(term, int):
        return {"t": "int", "v": str(term)}  # ints may exceed JSON range
    if isinstance(term, str):
        return term
    if isinstance(term, bytes):
        return {"t": "bytes", "v": term.hex()}
    if isinstance(term, tuple):
        return {"t": "tuple", "v": [encode_term(sub) for sub in term]}
    raise WireError(f"cannot encode term of type {type(term).__name__}")


def decode_term(data: Any) -> Term:
    """Inverse of :func:`encode_term`."""
    if data is None or isinstance(data, (str, float)):
        return data
    if isinstance(data, bool):  # bare bools never appear, but accept them
        return data
    if isinstance(data, int):
        return data
    if isinstance(data, dict):
        tag = data.get("t")
        value = data.get("v")
        if tag == "bool":
            return bool(value)
        if tag == "int":
            try:
                return int(value)
            except (TypeError, ValueError):
                raise WireError(f"bad int payload {value!r}") from None
        if tag == "bytes":
            try:
                return bytes.fromhex(value)
            except (TypeError, ValueError):
                raise WireError(f"bad bytes payload {value!r}") from None
        if tag == "tuple":
            if not isinstance(value, list):
                raise WireError("tuple payload must be a list")
            return tuple(decode_term(sub) for sub in value)
        raise WireError(f"unknown term tag {tag!r}")
    raise WireError(f"cannot decode term from {type(data).__name__}")


def _encode_params(parameters: Tuple[Term, ...]) -> list:
    return [encode_term(parameter) for parameter in parameters]


def _decode_params(data: Any) -> Tuple[Term, ...]:
    if not isinstance(data, list):
        raise WireError("parameters must be a list")
    return tuple(decode_term(item) for item in data)


def _encode_service(service: ServiceId) -> Dict[str, str]:
    return {"domain": service.domain, "name": service.name}


def _decode_service(data: Any) -> ServiceId:
    try:
        return ServiceId(data["domain"], data["name"])
    except (TypeError, KeyError, ValueError) as error:
        raise WireError(f"bad service id: {error}") from error


# -- certificates --------------------------------------------------------------

Certificate = Union[RoleMembershipCertificate, AppointmentCertificate]


def encode_certificate(certificate: Certificate) -> Dict[str, Any]:
    """Encode either certificate kind as a JSON-able dict."""
    if isinstance(certificate, RoleMembershipCertificate):
        return {
            "kind": "rmc",
            "issuer": _encode_service(certificate.issuer),
            "role_service": _encode_service(certificate.role.service),
            "role_name": certificate.role.role_name.name,
            "parameters": _encode_params(certificate.role.parameters),
            "serial": certificate.ref.serial,
            "issued_at": certificate.issued_at,
            "bound_key": certificate.bound_key,
            "signature": certificate.signature.hex(),
        }
    if isinstance(certificate, AppointmentCertificate):
        return {
            "kind": "appointment",
            "issuer": _encode_service(certificate.issuer),
            "name": certificate.name,
            "parameters": _encode_params(certificate.parameters),
            "serial": certificate.ref.serial,
            "issued_at": certificate.issued_at,
            "expires_at": certificate.expires_at,
            "holder": certificate.holder,
            "secret_generation": certificate.secret_generation,
            "signature": certificate.signature.hex(),
        }
    raise WireError(
        f"cannot encode certificate of type {type(certificate).__name__}")


def decode_certificate(data: Any) -> Certificate:
    """Inverse of :func:`encode_certificate`."""
    if not isinstance(data, dict):
        raise WireError("certificate wire data must be a dict")
    kind = data.get("kind")
    try:
        if kind == "rmc":
            issuer = _decode_service(data["issuer"])
            role = Role(
                RoleName(_decode_service(data["role_service"]),
                         data["role_name"]),
                _decode_params(data["parameters"]))
            return RoleMembershipCertificate(
                issuer=issuer, role=role,
                ref=CredentialRef(issuer, int(data["serial"])),
                issued_at=float(data["issued_at"]),
                bound_key=data.get("bound_key"),
                signature=bytes.fromhex(data["signature"]))
        if kind == "appointment":
            issuer = _decode_service(data["issuer"])
            expires = data.get("expires_at")
            return AppointmentCertificate(
                issuer=issuer, name=data["name"],
                parameters=_decode_params(data["parameters"]),
                ref=CredentialRef(issuer, int(data["serial"])),
                issued_at=float(data["issued_at"]),
                expires_at=float(expires) if expires is not None else None,
                holder=data.get("holder"),
                secret_generation=int(data.get("secret_generation", 0)),
                signature=bytes.fromhex(data["signature"]))
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise WireError(f"malformed {kind!r} certificate: {error}") \
            from error
    raise WireError(f"unknown certificate kind {kind!r}")
