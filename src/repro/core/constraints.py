"""Environmental constraints for role activation and service invocation.

Sect. 2 of the paper admits three kinds of side condition in rules:
prerequisite roles, appointment credentials and *environmental constraints*.
The examples it gives are all realised here:

* "the time of day" — :class:`TimeWindowConstraint`;
* "the location or name of a computer" — :class:`EnvironmentEquals` over the
  evaluation context's environment map;
* "the user is a member of a group ... ascertained by database lookup" —
  :class:`DatabaseLookupConstraint`;
* "parameters are related in a specified way; for example the doctor has the
  patient registered as under his/her care" — :class:`DatabaseLookupConstraint`
  with parameter-bound criteria, or :class:`ComparisonConstraint`;
* "the user is a specified exception to a general category" — a *negated*
  :class:`DatabaseLookupConstraint` (``expect_exists=False``) over an
  exclusion table;
* the anonymity scenario's "date of the test is before the expiry date of
  the membership" — :class:`BeforeDeadlineConstraint`.

Constraints evaluate against an :class:`EvaluationContext` carrying the
clock, databases and ambient environment, under a parameter binding
produced by rule unification.  Constraints included in a *membership rule*
must be re-checkable: :meth:`EnvironmentalConstraint.watched_tables` tells
the membership monitor which database tables can invalidate the constraint
so retracting a fact triggers immediate re-evaluation (Fig. 5 semantics).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Tuple

from ..db import Database
from .exceptions import PolicyError
from .terms import Substitution, Term, Var, is_ground

__all__ = [
    "EvaluationContext",
    "EnvironmentalConstraint",
    "PredicateConstraint",
    "ComparisonConstraint",
    "TimeWindowConstraint",
    "BeforeDeadlineConstraint",
    "NotBeforeConstraint",
    "EnvironmentEquals",
    "DatabaseLookupConstraint",
    "ConstraintRegistry",
]


@dataclass
class EvaluationContext:
    """Ambient state a constraint may consult.

    ``clock`` returns the current time (simulated or real).  ``databases``
    maps logical database names to :class:`~repro.db.Database` instances.
    ``environment`` carries request-scoped facts such as the caller's host
    name or location.
    """

    clock: Callable[[], float] = field(default=lambda: 0.0)
    databases: Dict[str, Database] = field(default_factory=dict)
    environment: Dict[str, Any] = field(default_factory=dict)

    def database(self, name: str) -> Database:
        try:
            return self.databases[name]
        except KeyError:
            raise PolicyError(f"evaluation context has no database {name!r}") \
                from None

    def with_environment(self, **extra: Any) -> "EvaluationContext":
        """A copy of this context with additional environment entries."""
        merged = dict(self.environment)
        merged.update(extra)
        return EvaluationContext(clock=self.clock, databases=self.databases,
                                 environment=merged)


class EnvironmentalConstraint(abc.ABC):
    """A side condition in an activation or authorization rule."""

    @abc.abstractmethod
    def evaluate(self, subst: Substitution, context: EvaluationContext) -> bool:
        """Return True when the constraint holds under ``subst``."""

    def free_variables(self) -> FrozenSet[Var]:
        """Variables that must be bound before evaluation."""
        return frozenset()

    def watched_tables(self) -> FrozenSet[Tuple[str, str]]:
        """``(database, table)`` pairs whose changes may flip this constraint.

        The membership monitor re-evaluates the constraint whenever a watched
        table changes.  Time-based constraints return nothing here; they are
        re-checked on the monitor's periodic sweep instead.
        """
        return frozenset()

    def _resolve(self, subst: Substitution, term: Term) -> Term:
        value = subst.apply(term)
        if not is_ground(value):
            raise PolicyError(
                f"constraint {self!r} evaluated with unbound term {value!r}")
        return value


@dataclass(frozen=True)
class PredicateConstraint(EnvironmentalConstraint):
    """An arbitrary predicate over bound parameter values.

    The escape hatch for application-specific conditions; ``terms`` are
    resolved under the substitution and passed positionally to ``predicate``.
    """

    name: str
    terms: Tuple[Term, ...]
    predicate: Callable[..., bool]

    def evaluate(self, subst: Substitution, context: EvaluationContext) -> bool:
        values = [self._resolve(subst, term) for term in self.terms]
        return bool(self.predicate(*values))

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset(v for term in self.terms
                         for v in _vars_of(term))

    def __repr__(self) -> str:
        return f"PredicateConstraint({self.name})"


def _vars_of(term: Term):
    from .terms import variables_in

    return variables_in(term)


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class ComparisonConstraint(EnvironmentalConstraint):
    """Relate two terms: ``left OP right`` with OP in ==, !=, <, <=, >, >=."""

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PolicyError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, subst: Substitution, context: EvaluationContext) -> bool:
        left = self._resolve(subst, self.left)
        right = self._resolve(subst, self.right)
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError:
            return False

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset([*_vars_of(self.left), *_vars_of(self.right)])

    def __repr__(self) -> str:
        return f"ComparisonConstraint({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class TimeWindowConstraint(EnvironmentalConstraint):
    """The clock, reduced modulo ``period``, lies within [start, end).

    With the default daily period and the clock in seconds, this is the
    paper's "time of day" constraint: ``TimeWindowConstraint(9*3600,
    17*3600)`` is office hours.  Windows may wrap midnight (start > end).
    """

    start: float
    end: float
    period: float = 86400.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise PolicyError("period must be positive")
        if not (0 <= self.start < self.period and 0 <= self.end <= self.period):
            raise PolicyError("window bounds must lie within the period")

    def evaluate(self, subst: Substitution, context: EvaluationContext) -> bool:
        moment = context.clock() % self.period
        if self.start <= self.end:
            return self.start <= moment < self.end
        return moment >= self.start or moment < self.end

    def __repr__(self) -> str:
        return f"TimeWindowConstraint({self.start}, {self.end})"


@dataclass(frozen=True)
class BeforeDeadlineConstraint(EnvironmentalConstraint):
    """The current time is strictly before the deadline carried in a term.

    Realises the anonymity scenario's rule "the date of the (start of the)
    test is before the expiry date of the insurance scheme membership" — the
    deadline is typically a certificate parameter bound by unification.
    """

    deadline: Term

    def evaluate(self, subst: Substitution, context: EvaluationContext) -> bool:
        deadline = self._resolve(subst, self.deadline)
        if not isinstance(deadline, (int, float)) or isinstance(deadline, bool):
            return False
        return context.clock() < deadline

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset(_vars_of(self.deadline))

    def __repr__(self) -> str:
        return f"BeforeDeadlineConstraint({self.deadline!r})"


@dataclass(frozen=True)
class NotBeforeConstraint(EnvironmentalConstraint):
    """The current time is at or after the given instant.

    The complement of :class:`BeforeDeadlineConstraint`; together they
    bracket validity windows (e.g. a service-level agreement's effective
    period, enforced at every activation under its rules).
    """

    start: Term

    def evaluate(self, subst: Substitution, context: EvaluationContext) -> bool:
        start = self._resolve(subst, self.start)
        if not isinstance(start, (int, float)) or isinstance(start, bool):
            return False
        return context.clock() >= start

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset(_vars_of(self.start))

    def __repr__(self) -> str:
        return f"NotBeforeConstraint({self.start!r})"


@dataclass(frozen=True)
class EnvironmentEquals(EnvironmentalConstraint):
    """A request-environment entry equals the given term.

    ``EnvironmentEquals("location", "ward-3")`` expresses the paper's
    "location or name of a computer" conditions.  A missing key fails the
    constraint (closed-world).
    """

    key: str
    expected: Term

    def evaluate(self, subst: Substitution, context: EvaluationContext) -> bool:
        if self.key not in context.environment:
            return False
        return context.environment[self.key] == self._resolve(
            subst, self.expected)

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset(_vars_of(self.expected))

    def __repr__(self) -> str:
        return f"EnvironmentEquals({self.key!r}, {self.expected!r})"


@dataclass(frozen=True)
class DatabaseLookupConstraint(EnvironmentalConstraint):
    """(Non-)existence of a row matching parameter-bound criteria.

    ``criteria`` maps column names to terms; terms are resolved under the
    substitution before the lookup.  With ``expect_exists=True`` this is
    "the doctor has the patient registered"; with ``expect_exists=False`` it
    is an exception list: "Fred Smith may not access my health record".
    """

    database: str
    table: str
    criteria: Tuple[Tuple[str, Term], ...]
    expect_exists: bool = True

    @classmethod
    def exists(cls, database: str, table: str,
               **criteria: Term) -> "DatabaseLookupConstraint":
        return cls(database, table, tuple(sorted(criteria.items())), True)

    @classmethod
    def not_exists(cls, database: str, table: str,
                   **criteria: Term) -> "DatabaseLookupConstraint":
        return cls(database, table, tuple(sorted(criteria.items())), False)

    def evaluate(self, subst: Substitution, context: EvaluationContext) -> bool:
        resolved = {column: self._resolve(subst, term)
                    for column, term in self.criteria}
        found = context.database(self.database).exists(self.table, **resolved)
        return found if self.expect_exists else not found

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset(v for _, term in self.criteria
                         for v in _vars_of(term))

    def watched_tables(self) -> FrozenSet[Tuple[str, str]]:
        return frozenset({(self.database, self.table)})

    def __repr__(self) -> str:
        polarity = "exists" if self.expect_exists else "not-exists"
        return (f"DatabaseLookup({polarity} {self.database}.{self.table} "
                f"{dict(self.criteria)!r})")


class ConstraintRegistry:
    """Named constraint factories for the policy language.

    The policy DSL (:mod:`repro.lang`) refers to constraints by name, e.g.
    ``where registered(doc, pat)``; deployments register the corresponding
    factory here.  A factory receives the argument terms from the policy
    text and returns an :class:`EnvironmentalConstraint`.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., EnvironmentalConstraint]] = {}

    def register(self, name: str,
                 factory: Callable[..., EnvironmentalConstraint]) -> None:
        if name in self._factories:
            raise PolicyError(f"constraint {name!r} already registered")
        self._factories[name] = factory

    def build(self, name: str, *terms: Term) -> EnvironmentalConstraint:
        try:
            factory = self._factories[name]
        except KeyError:
            raise PolicyError(f"unknown constraint {name!r}") from None
        return factory(*terms)

    def __contains__(self, name: str) -> bool:
        return name in self._factories
