"""Exception hierarchy for the OASIS core.

All library errors derive from :class:`OasisError` so callers can catch the
whole family.  Authorisation *denials* are exceptions too — the paper's
architecture treats failed role activation / invocation as a refused
request, and callers need the reason for audit.
"""

from __future__ import annotations

__all__ = [
    "OasisError",
    "PolicyError",
    "CredentialError",
    "CredentialInvalid",
    "CredentialRevoked",
    "CredentialExpired",
    "SignatureInvalid",
    "ActivationDenied",
    "InvocationDenied",
    "AppointmentDenied",
    "UnknownRole",
    "UnknownMethod",
    "SessionError",
]


class OasisError(Exception):
    """Base class for all OASIS errors."""


class PolicyError(OasisError):
    """A policy is malformed (bad rule, unknown role, unsafe variable...)."""


class CredentialError(OasisError):
    """Base class for credential problems."""


class CredentialInvalid(CredentialError):
    """A presented credential failed validation at its issuer."""


class CredentialRevoked(CredentialInvalid):
    """The credential's record exists but has been revoked."""


class CredentialExpired(CredentialInvalid):
    """The credential is past its expiry time."""


class SignatureInvalid(CredentialInvalid):
    """The credential's signature does not verify (tamper/forgery/theft)."""


class ActivationDenied(OasisError):
    """No activation rule for the requested role is satisfied."""


class InvocationDenied(OasisError):
    """No authorization rule for the requested method is satisfied."""


class AppointmentDenied(OasisError):
    """The requester may not issue the requested appointment."""


class UnknownRole(PolicyError):
    """The service defines no such role."""


class UnknownMethod(OasisError):
    """The service exposes no such method."""


class SessionError(OasisError):
    """Session life-cycle misuse (double start, use after termination...)."""
