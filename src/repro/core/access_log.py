"""Per-service access audit log.

The paper requires auditability throughout: the national EHR service
records "the identity of the original requester ... for audit" (Sect. 3),
and "it is vital that doctors who access patient records may be identified
individually" (Sect. 2).  An :class:`AccessLog` attached to an
:class:`~repro.core.service.OasisService` records every security-relevant
event — activations, invocations, appointment issues, revocations and the
corresponding denials — as immutable :class:`AccessRecord` entries that can
be filtered by principal, kind or time window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from .terms import DATACLASS_SLOTS

__all__ = ["AccessRecord", "AccessLog"]


class AccessKind:
    """Record kinds, as string constants."""

    ACTIVATION = "activation"
    ACTIVATION_DENIED = "activation-denied"
    INVOCATION = "invocation"
    INVOCATION_DENIED = "invocation-denied"
    APPOINTMENT = "appointment"
    APPOINTMENT_DENIED = "appointment-denied"
    REVOCATION = "revocation"
    VALIDATION_FAILED = "validation-failed"

    ALL = (ACTIVATION, ACTIVATION_DENIED, INVOCATION, INVOCATION_DENIED,
           APPOINTMENT, APPOINTMENT_DENIED, REVOCATION, VALIDATION_FAILED)


@dataclass(frozen=True, **DATACLASS_SLOTS)
class AccessRecord:
    """One audited access-control decision."""

    timestamp: float
    kind: str
    principal: str          # requesting principal (or original requester)
    subject: str            # role name / method / appointment / CRR
    detail: Tuple[Any, ...] = ()
    reason: Optional[str] = None
    #: Causal trace this record belongs to, when the observability
    #: pipeline (:mod:`repro.obs`) was active; None otherwise.  Lets an
    #: auditor jump from an audit line to the full span tree.
    trace_id: Optional[str] = None

    def __str__(self) -> str:
        parts = [f"t={self.timestamp:.3f}", self.kind, self.principal,
                 self.subject]
        if self.detail:
            parts.append(repr(self.detail))
        if self.reason:
            parts.append(f"({self.reason})")
        return " ".join(parts)


class AccessLog:
    """An append-only log of access records with simple querying.

    ``capacity`` bounds memory: the log becomes a ring and the oldest
    records are discarded once the bound is hit (deployments would spill to
    stable storage instead).  Discards are counted — :meth:`stats` reports
    them so long-running scale workloads can bound retention without
    silently losing the fact that they did.  The default stays unbounded.
    """

    __slots__ = ("_capacity", "_records", "recorded", "discarded")

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        # A maxlen deque evicts from the head in O(1); the list-based ring
        # paid an O(n) shift per overflowing append.
        self._records: Deque[AccessRecord] = deque(maxlen=capacity)
        self.recorded = 0
        self.discarded = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[AccessRecord]:
        return iter(self._records)

    def append(self, record: AccessRecord) -> None:
        self.recorded += 1
        if self._capacity is not None \
                and len(self._records) == self._capacity:
            self.discarded += 1  # the deque evicts the oldest on append
        self._records.append(record)

    def stats(self) -> Dict[str, Any]:
        """Retention counters: ring size/bound and what fell off the end."""
        return {
            "size": len(self._records),
            "capacity": self._capacity,
            "recorded": self.recorded,
            "discarded": self.discarded,
        }

    def record(self, timestamp: float, kind: str, principal: str,
               subject: str, detail: Tuple[Any, ...] = (),
               reason: Optional[str] = None,
               trace_id: Optional[str] = None) -> None:
        if kind not in AccessKind.ALL:
            raise ValueError(f"unknown access record kind {kind!r}")
        self.append(AccessRecord(timestamp, kind, principal, subject,
                                 detail, reason, trace_id))

    # -- querying --------------------------------------------------------------
    def query(self, kind: Optional[str] = None,
              principal: Optional[str] = None,
              subject: Optional[str] = None,
              since: Optional[float] = None,
              until: Optional[float] = None,
              trace_id: Optional[str] = None) -> List[AccessRecord]:
        """All records matching every given filter.

        The time window is half-open, ``[since, until)``: a record at
        exactly ``since`` is included, one at exactly ``until`` is not —
        so consecutive windows ``[a, b)`` and ``[b, c)`` partition the
        log with no duplicated or dropped records.
        """
        results = []
        for record in self._records:
            if kind is not None and record.kind != kind:
                continue
            if principal is not None and record.principal != principal:
                continue
            if subject is not None and record.subject != subject:
                continue
            if since is not None and record.timestamp < since:
                continue
            if until is not None and record.timestamp >= until:
                continue
            if trace_id is not None and record.trace_id != trace_id:
                continue
            results.append(record)
        return results

    def denials(self) -> List[AccessRecord]:
        return [record for record in self._records
                if record.kind.endswith("denied")
                or record.kind == AccessKind.VALIDATION_FAILED]

    def principals_seen(self) -> List[str]:
        return sorted({record.principal for record in self._records})
