"""The OASIS-secured service (Fig. 2) and its active security machinery.

An :class:`OasisService` implements the full life-cycle of Fig. 2:

* **path 1/2 — role entry**: a client presents credentials; the service
  validates them (local signature checks for its own certificates, callback
  to the issuer for foreign ones), evaluates its activation rules, and on
  success issues a signed RMC backed by a credential record (CR);
* **path 3/4 — service use**: invocation of a registered method is guarded
  by authorization rules over presented RMCs and constraints;
* **appointment**: principals active in appointer roles may be granted
  appointment certificates for third parties;
* **active security (Fig. 5)**: every credential has an event channel;
  issuing a credential whose activation used membership-flagged credentials
  subscribes the new CR to their revocation events, so revocation cascades
  along the role-dependency edges — across services — without polling.
  Membership-flagged *constraints* are re-evaluated when a watched database
  table changes and on explicit sweeps (for time-based conditions).
* **validation caching**: validation of a foreign credential may be cached;
  the service then holds an *external CR proxy* (ECR) — a subscription to
  the issuer's revocation channel that drops the cache entry the moment the
  credential dies.  This is the paper's "cache the certificate and the
  result of validation in order to reduce the communication overhead of
  repeated callback", and ABL1 measures exactly this trade-off.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..db import Database, RecordStore, default_store
from ..net.adapter import VALIDATE_ENDPOINT, ValidationTransport
from ..obs import runtime as _obs_runtime
from ..obs.explain import Decision, RuleAttempt
from ..obs.tracing import Span, SpanContext
from ..events import (
    CREDENTIAL_HEARTBEAT,
    CREDENTIAL_REISSUED,
    CREDENTIAL_REVOKED,
    Event,
    EventBroker,
    HeartbeatMonitor,
    Subscription,
)
from ..crypto.hmac_sig import ServiceSecret
from .constraints import EvaluationContext
from .credentials import (
    AppointmentCertificate,
    CredentialRecord,
    CredentialRef,
    CredentialRefAllocator,
    RoleMembershipCertificate,
)
from .engine import CredentialIndex, PresentedCredential, RuleEngine, RuleMatch
from .access_log import AccessKind, AccessLog
from .exceptions import (
    ActivationDenied,
    AppointmentDenied,
    CredentialExpired,
    CredentialInvalid,
    CredentialRevoked,
    InvocationDenied,
    SignatureInvalid,
    UnknownMethod,
)
from .policy import ServicePolicy
from .state import (
    RECORDS,
    SERIAL_RESERVE,
    ServiceState,
    ServiceStateCodec,
    _MembershipWatch,
)
from .terms import Term
from .types import PrincipalId, Role, ServiceId

__all__ = [
    "ServiceRegistry",
    "OasisService",
    "ServiceStats",
    "Presentation",
    "ActivationRequest",
    "VALIDATE_ENDPOINT",
]

Certificate = Union[RoleMembershipCertificate, AppointmentCertificate]

#: Sentinel: "no store argument given — consult OASIS_STORE_BACKEND".
_STORE_UNSET: Any = object()


@dataclass
class ServiceStats:
    """Operational counters, consumed by the benchmark harness."""

    rmcs_issued: int = 0
    appointments_issued: int = 0
    invocations: int = 0
    activations_denied: int = 0
    invocations_denied: int = 0
    validations_local: int = 0
    callbacks_made: int = 0
    callbacks_served: int = 0
    cache_hits: int = 0
    cache_invalidations: int = 0
    sig_verifications: int = 0
    sig_cache_hits: int = 0
    sig_cache_invalidations: int = 0
    revocations: int = 0
    cascade_revocations: int = 0
    membership_rechecks: int = 0
    heartbeats_sent: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A defensive copy of the counters.

        Callers get a plain dict they may mutate freely; the live stats
        object is unaffected.  (Prefer this over ``vars(stats)``, which
        returns the live ``__dict__``.)
        """
        return dict(vars(self))


@dataclass(frozen=True)
class Presentation:
    """A certificate as presented by a client.

    ``holder`` is the identity the presenter claims for holder-bound
    appointment certificates (a persistent principal id or ``"key:<fp>"``
    after a challenge-response proof); RMCs ignore it — their binding is the
    presenting principal id itself.

    ``on_behalf_of`` supports the Fig. 3 cross-domain protocol: a gateway
    service forwarding another principal's RMC attests the *original
    requester's* identity ("service level agreements ... would establish a
    protocol to validate local RMCs so that the identity of the original
    requester can be recorded for audit", Sect. 3).  The issuer still
    verifies that the RMC really is bound to that identity — the gateway
    can forward, not forge.
    """

    certificate: Certificate
    holder: Optional[str] = None
    on_behalf_of: Optional[str] = None


@dataclass(frozen=True)
class ActivationRequest:
    """One role activation in an :meth:`OasisService.activate_roles_bulk`
    batch — the same arguments :meth:`OasisService.activate_role` takes."""

    principal: PrincipalId
    role_name: str
    parameters: Optional[Sequence[Term]] = None
    credentials: Sequence[Presentation] = ()
    environment: Optional[Dict[str, Any]] = None
    session_id: Optional[str] = None
    bound_key: Optional[str] = None


class ServiceRegistry:
    """Maps service ids to live services for direct (in-process) callback.

    When a :class:`~repro.net.SimNetwork` is supplied to services, foreign
    validation goes over the network and pays simulated latency; otherwise
    it falls back to this registry.  Either way the *logical* protocol is
    the same callback of Sect. 4.
    """

    def __init__(self) -> None:
        self._services: Dict[ServiceId, "OasisService"] = {}

    def register(self, service: "OasisService") -> None:
        if service.id in self._services:
            raise ValueError(f"service {service.id} already registered")
        self._services[service.id] = service

    def lookup(self, service_id: ServiceId) -> "OasisService":
        try:
            return self._services[service_id]
        except KeyError:
            raise CredentialInvalid(
                f"cannot validate: unknown issuer {service_id}") from None

    def __contains__(self, service_id: ServiceId) -> bool:
        return service_id in self._services

    def all_services(self) -> List["OasisService"]:
        return list(self._services.values())


class OasisService:
    """A service secured by OASIS access control (Fig. 2)."""

    def __init__(self, policy: ServicePolicy, broker: EventBroker,
                 registry: ServiceRegistry,
                 clock: Callable[[], float] = lambda: 0.0,
                 databases: Optional[Dict[str, Database]] = None,
                 network: Optional[Any] = None,
                 cache_validations: bool = True,
                 secret: Optional[ServiceSecret] = None,
                 heartbeat_timeout: Optional[float] = None,
                 access_log: Optional[AccessLog] = None,
                 batched_cascades: bool = True,
                 store: Optional[RecordStore] = _STORE_UNSET,
                 allocator: Optional[CredentialRefAllocator] = None) -> None:
        self.policy = policy
        self.id: ServiceId = policy.service
        self.broker = broker
        self.registry = registry
        self.clock = clock
        self.network = network
        self.cache_validations = cache_validations
        self.secret = secret or ServiceSecret.generate()
        self.stats = ServiceStats()
        #: Audit trail of access-control decisions ("the identity of the
        #: original requester can be recorded for audit", Sect. 3).
        self.access_log = access_log if access_log is not None \
            else AccessLog(capacity=100_000)

        self.context = EvaluationContext(clock=clock,
                                         databases=dict(databases or {}))
        self._engine = RuleEngine(self.context)
        # Serial allocation is pluggable: the sharding layer passes a
        # ShardedRefAllocator so each worker process mints only serials
        # whose CredentialRef hash lands on its own shard (ownership by
        # ref hash is then true by construction).
        if allocator is not None and allocator.service != self.id:
            raise ValueError(f"allocator is for {allocator.service}, "
                             f"not {self.id}")
        self._refs = allocator if allocator is not None \
            else CredentialRefAllocator(self.id)
        # The state core (see repro.core.state): every dict of issuer-side
        # security state lives there and mutates through it, mirrored to
        # the keyed-record store when one is attached.  Passing no
        # ``store`` argument consults the OASIS_STORE_BACKEND environment
        # variable; the default ("memory") attaches nothing — the live
        # dicts ARE the in-memory backend, and every mirror call below is
        # short-circuited by a single ``is None`` test.
        if store is _STORE_UNSET:
            store = default_store(ServiceStateCodec(), service=str(self.id))
        self._state = ServiceState(self.id, store)
        self._persist = store
        self._serials_reserved = 0
        self._pending_replay: List[Tuple[int, List[Event]]] = []
        if store is not None:
            stored_secret = self._state.load_secret()
            if secret is None and stored_secret is not None:
                # Resuming against an existing store: certificates signed
                # before the restart must keep verifying.
                self.secret = stored_secret
            else:
                self._state.save_secret(self.secret)
        # Hot-path aliases: reads (and the engine-facing fast paths) touch
        # the very same dict objects the state core owns, so the storeless
        # configuration is bit-identical to the pre-refactor layout.
        self._records = self._state.records
        # Fig. 5 dependency edges, consolidated.  The default (batched)
        # mode keeps a reverse index ``dependency ref string -> ordered set
        # of local dependent refs`` behind ONE service-level subscription;
        # issuing/tearing down a credential is O(dependencies) dict work
        # and a revocation cascade collapses the whole local subtree in a
        # single pass.  ``batched_cascades=False`` retains the original
        # per-dependency Subscription objects (``_dependency_subs``) and
        # per-event recursive revocation as a reference path for
        # differential tests and the seed cascade benchmark.
        #
        # Bucket representation is adaptive: a plain insertion-ordered list
        # up to ``_EDGE_LIST_MAX`` dependents (the common case — a
        # million-credential world is mostly chains and small fans, and a
        # one-entry dict costs ~3.5x a one-entry list), promoted to an
        # ordered dict keyed by ref beyond that so high-fanout unlink stays
        # O(1).  Both shapes iterate in insertion order, so cascade order
        # is identical either way.
        self._batched_cascades = batched_cascades
        self._dependents = self._state.dependents
        self._link_dependent = self._state.link_dependent
        self._unlink_dependencies = self._state.unlink_dependencies
        self._dependency_subs: Dict[CredentialRef, List[Subscription]] = {}
        self._watches = self._state.watches
        self._methods: Dict[str, Callable[..., Any]] = {}
        # validation cache, two-level: ref -> {(requester, holder-claim)};
        # presence = valid.  Keying the outer level by ref makes the ECR
        # drop on revocation O(entries for that ref) instead of a scan of
        # the whole cache — revocation cost must not grow with the number
        # of unrelated cached validations.
        self._validation_cache = self._state.validation_cache
        self._ecr_subs: Dict[CredentialRef, List[Subscription]] = {}
        # Signature-verification cache: str(ref) -> set of certificate
        # fingerprints whose MAC already verified.  A fingerprint covers the
        # signature bytes, the claimed bindings and the secret generation,
        # so tampered certificates, stolen presentations and rotated
        # secrets all miss.  Invalidation rides the same event channels as
        # the ECR cache: any CREDENTIAL_REVOKED / CREDENTIAL_REISSUED event
        # for the ref drops its entry (local revocations publish on the
        # credential's channel and so flow through here too).
        self._sig_cache = self._state.sig_cache
        # One service-level (wildcard) subscription covers every
        # CREDENTIAL_REVOKED consumer in this service — the signature-cache
        # drop and, in batched mode, the cascade probe over the reverse
        # dependency index — so a revocation event costs one handler call
        # per *service*, not one per concern or per dependency edge.
        self._service_subs = [
            broker.subscribe(CREDENTIAL_REVOKED, self._on_revoked_event),
            broker.subscribe(CREDENTIAL_REISSUED, self._on_sig_cache_event),
        ]
        # Fig. 5 heartbeat fail-safe: when a timeout is configured, cached
        # validations are only trusted while the issuer's heartbeats keep
        # arriving; silence forces a fresh callback.
        self._heartbeats: Optional[HeartbeatMonitor] = (
            HeartbeatMonitor(broker, heartbeat_timeout, clock)
            if heartbeat_timeout is not None else None)

        # Observability snapshot (see repro.obs.runtime): taken once at
        # construction, so every hot-path guard below is a single
        # attribute load plus an ``is None`` branch.  Enable the pipeline
        # BEFORE constructing a service to instrument it.
        self._obs = _obs_runtime.pipeline()
        if self._obs is not None:
            self._init_obs()

        registry.register(self)
        # Transport is one adapter over the now-agnostic core: the service
        # owns the validation *protocol*, the adapter owns endpoint naming
        # and the wire (ROADMAP item 1's seam).
        self._transport = (ValidationTransport(network)
                           if network is not None else None)
        if self._transport is not None:
            self._transport.bind(self.id, self._serve_validation)
        for database in self.context.databases.values():
            database.add_listener(self._on_database_change)

    # ------------------------------------------------------------------
    # Observability wiring (only runs when a pipeline is installed)
    # ------------------------------------------------------------------
    def _init_obs(self) -> None:
        """Create this service's bound instruments and register the
        ServiceStats collector (pull-at-export; zero hot-path cost)."""
        metrics = self._obs.metrics
        service = str(self.id)
        activations = metrics.counter(
            "oasis_activations_total",
            help_text="role activation outcomes",
            label_names=("service", "outcome"))
        self._obs_activation_granted = activations.bind(
            service=service, outcome="granted")
        self._obs_activation_denied = activations.bind(
            service=service, outcome="denied")
        invocations = metrics.counter(
            "oasis_invocations_total",
            help_text="guarded method invocation outcomes",
            label_names=("service", "outcome"))
        self._obs_invocation_granted = invocations.bind(
            service=service, outcome="granted")
        self._obs_invocation_denied = invocations.bind(
            service=service, outcome="denied")
        self._obs_activation_latency = metrics.histogram(
            "oasis_activation_latency_seconds",
            help_text="wall-clock activate_role latency",
            label_names=("service",)).bind(service=service)
        self._obs_cascade_width = metrics.histogram(
            "oasis_cascade_width",
            buckets=(1, 2, 5, 10, 20, 50, 100, 200, 500, 1000),
            help_text="credentials collapsed per local cascade pass",
            label_names=("service",)).bind(service=service)
        self._obs_cascade_depth = metrics.histogram(
            "oasis_cascade_depth",
            buckets=(1, 2, 3, 5, 8, 12, 16, 24, 32, 64),
            help_text="dependency depth reached per local cascade pass",
            label_names=("service",)).bind(service=service)
        metrics.register_collector(self._collect_obs_metrics)

    def _collect_obs_metrics(self) -> Iterator[Tuple[str, str, str,
                                                     List[Tuple[Dict[str, Any],
                                                                Any]]]]:
        """ServiceStats and cache/credential state as metric families.

        Sampled at export time only — the counters themselves stay plain
        attribute increments on the hot paths.
        """
        service = str(self.id)
        yield ("oasis_service_stats", "counter",
               "ServiceStats operational counters, by field",
               [({"service": service, "field": name}, value)
                for name, value in self.stats.snapshot().items()])
        live = sum(1 for record in self._records.values() if record.active)
        yield ("oasis_live_credentials", "gauge",
               "credential records currently active",
               [({"service": service}, live)])
        yield ("oasis_validation_cache_entries", "gauge",
               "cached foreign-credential validations (ECR-backed)",
               [({"service": service}, self.validation_cache_size)])
        # Resident-state gauges: what the 1M-principal scale work must keep
        # small.  Sampled at export only; no hot-path bookkeeping.
        yield ("oasis_memory_resident_objects", "gauge",
               "count of per-credential objects held by the service",
               [({"service": service, "kind": "credential_records"},
                 len(self._records)),
                ({"service": service, "kind": "membership_watches"},
                 len(self._watches)),
                ({"service": service, "kind": "dependency_edges"},
                 sum(len(bucket) for bucket in self._dependents.values())),
                ({"service": service, "kind": "dependency_subscriptions"},
                 sum(len(subs)
                     for subs in self._dependency_subs.values())),
                ({"service": service, "kind": "sig_cache_refs"},
                 len(self._sig_cache))])
        yield ("oasis_memory_access_log", "gauge",
               "access-log retention counters",
               [({"service": service, "field": name}, value)
                for name, value in self.access_log.stats().items()
                if value is not None])
        # Storage-layer lookup costs: the Table/Database counters, one
        # family per counter, labelled by database and table.  A family
        # must be yielded exactly once, so samples are gathered across all
        # attached databases first.  Database.stats() hands back a
        # defensive copy — sampling never perturbs the live counters.
        store_samples: Dict[str, List[Tuple[Dict[str, Any], Any]]] = {
            "rows_scanned": [], "index_probes": [], "indexes_built": []}
        for db_name, database in self.context.databases.items():
            for table_name, table_stats in database.stats()["tables"].items():
                for counter, samples in store_samples.items():
                    samples.append((
                        {"service": service, "database": db_name,
                         "table": table_name}, table_stats[counter]))
        for counter, samples in store_samples.items():
            if samples:
                yield (f"oasis_store_{counter}", "counter",
                       f"table lookup cost: {counter.replace('_', ' ')}",
                       samples)
        if self._persist is not None:
            persist_stats = self._persist.stats()
            backend = persist_stats["backend"]
            yield ("oasis_record_store_ops", "counter",
                   "keyed-record store operation counts, by op",
                   [({"service": service, "backend": backend, "op": name},
                     value)
                    for name, value in persist_stats["ops"].items()])
            yield ("oasis_record_store_pending_writes", "gauge",
                   "write-behind buffer entries awaiting flush",
                   [({"service": service, "backend": backend},
                     persist_stats["pending_writes"])])
            yield ("oasis_record_store_log_entries", "gauge",
                   "append-log entries not yet pruned",
                   [({"service": service, "backend": backend},
                     persist_stats["log_entries"])])

    def _record_decision(self, kind: str, outcome: str, principal: str,
                         subject: str,
                         attempts: Tuple[RuleAttempt, ...] = (),
                         reason: Optional[str] = None,
                         span: Optional[Span] = None,
                         detail: Tuple[Tuple[str, Any], ...] = ()) -> None:
        if span is not None:
            trace_id: Optional[str] = span.trace_id
        else:
            context = self._obs.tracer.current_context()
            trace_id = context.trace_id if context is not None else None
        self._obs.decisions.record(Decision(
            timestamp=self.clock(), kind=kind, outcome=outcome,
            service=str(self.id), principal=principal, subject=subject,
            rule_attempts=attempts, reason=reason, trace_id=trace_id,
            detail=detail))

    def _explain_activation_attempt(self, rule: Any,
                                    parameters: Optional[Sequence[Term]],
                                    presented: Sequence[PresentedCredential],
                                    context: EvaluationContext
                                    ) -> RuleAttempt:
        failure = self._engine.explain_activation(rule, parameters,
                                                  presented, context)
        if failure is None:
            # The solver said no but the probe says yes — cannot happen
            # while both implement the same semantics; surface honestly
            # rather than fabricate a condition.
            return RuleAttempt(rule=str(rule), outcome="failed",
                               failure_kind="unknown")
        return RuleAttempt(
            rule=str(rule), outcome="failed", failure_kind=failure.kind,
            failed_condition=(str(failure.condition)
                              if failure.condition is not None else None),
            detail=failure.detail)

    def _audit(self, kind: str, principal: str, subject: str,
               detail: Tuple[Any, ...] = (),
               reason: Optional[str] = None,
               trace_id: Optional[str] = None) -> None:
        if self._obs is not None and trace_id is None:
            context = self._obs.tracer.current_context()
            if context is not None:
                trace_id = context.trace_id
        self.access_log.record(self.clock(), kind, principal, subject,
                               detail, reason, trace_id)

    # ------------------------------------------------------------------
    # Role activation (Fig. 2 paths 1-2)
    # ------------------------------------------------------------------
    def activate_role(self, principal: PrincipalId, role_name: str,
                      parameters: Optional[Sequence[Term]] = None,
                      credentials: Sequence[Presentation] = (),
                      environment: Optional[Dict[str, Any]] = None,
                      session_id: Optional[str] = None,
                      bound_key: Optional[str] = None,
                      ) -> RoleMembershipCertificate:
        """Attempt role activation; returns a signed RMC on success.

        Raises :class:`ActivationDenied` when no activation rule for the
        role is satisfied by the presented credentials, and the relevant
        :class:`CredentialInvalid` subclass when a presented certificate
        fails validation.
        """
        if self._obs is not None:
            return self._activate_role_observed(
                principal, role_name, parameters, credentials,
                environment, session_id, bound_key)
        presented = self._validate_presentations(principal, credentials)
        context = self.context.with_environment(**(environment or {}))
        index = CredentialIndex(presented)
        last_denial: Optional[ActivationDenied] = None
        for rule in self.policy.activation_rules_for(role_name):
            try:
                result = self._engine.match_activation(
                    rule, parameters, presented, context, index)
            except ActivationDenied as denial:
                last_denial = denial
                continue
            if result is None:
                continue
            match, role = result
            return self._issue_rmc(principal, role, match,
                                   environment or {}, session_id, bound_key)
        self.stats.activations_denied += 1
        denial = last_denial or ActivationDenied(
            f"{principal} cannot activate {self.id}:{role_name} with the "
            f"presented credentials")
        self._audit(AccessKind.ACTIVATION_DENIED, principal.value,
                    role_name, reason=str(denial))
        raise denial

    def _activate_role_observed(self, principal: PrincipalId, role_name: str,
                                parameters: Optional[Sequence[Term]],
                                credentials: Sequence[Presentation],
                                environment: Optional[Dict[str, Any]],
                                session_id: Optional[str],
                                bound_key: Optional[str],
                                ) -> RoleMembershipCertificate:
        """Same semantics as :meth:`activate_role`, plus a span, a latency
        sample and a structured :class:`Decision` per outcome."""
        wall_start = time.perf_counter()
        span = self._obs.tracer.start_span(
            "activate_role", timestamp=self.clock(),
            service=str(self.id), principal=principal.value, role=role_name)
        attempts: List[RuleAttempt] = []
        try:
            try:
                presented = self._validate_presentations(principal,
                                                         credentials)
            except CredentialInvalid as failure:
                attempts.append(RuleAttempt(
                    rule="(credential validation)", outcome="failed",
                    failure_kind="credential-invalid", detail=str(failure)))
                self._record_decision(
                    "activation", "denied", principal.value, role_name,
                    tuple(attempts), reason=str(failure), span=span)
                self._obs_activation_denied.inc()
                span.error(str(failure))
                raise
            context = self.context.with_environment(**(environment or {}))
            index = CredentialIndex(presented)
            last_denial: Optional[ActivationDenied] = None
            for rule in self.policy.activation_rules_for(role_name):
                try:
                    result = self._engine.match_activation(
                        rule, parameters, presented, context, index)
                except ActivationDenied as denial:
                    last_denial = denial
                    attempts.append(self._explain_activation_attempt(
                        rule, parameters, presented, context))
                    continue
                if result is None:
                    attempts.append(self._explain_activation_attempt(
                        rule, parameters, presented, context))
                    continue
                match, role = result
                rmc = self._issue_rmc(principal, role, match,
                                      environment or {}, session_id,
                                      bound_key)
                attempts.append(RuleAttempt(rule=str(rule),
                                            outcome="matched"))
                self._record_decision(
                    "activation", "granted", principal.value, role_name,
                    tuple(attempts), span=span,
                    detail=(("credential_ref", str(rmc.ref)),))
                self._obs_activation_granted.inc()
                span.set_attr("credential_ref", str(rmc.ref))
                return rmc
            self.stats.activations_denied += 1
            denial = last_denial or ActivationDenied(
                f"{principal} cannot activate {self.id}:{role_name} with "
                f"the presented credentials")
            if not attempts:
                attempts.append(RuleAttempt(
                    rule=f"(no activation rule for {role_name!r})",
                    outcome="failed", failure_kind="no-rule"))
            self._audit(AccessKind.ACTIVATION_DENIED, principal.value,
                        role_name, reason=str(denial))
            self._record_decision(
                "activation", "denied", principal.value, role_name,
                tuple(attempts), reason=str(denial), span=span)
            self._obs_activation_denied.inc()
            span.error(str(denial))
            raise denial
        finally:
            span.finish(self.clock())
            self._obs_activation_latency.observe(
                time.perf_counter() - wall_start)

    def _reserve_serials(self, top_serial: int) -> None:
        """Durably reserve a block of CRR serials ahead of use.

        Credential-record writes are write-behind, so a crash can lose
        recent installs; the watermark guarantees the resumed allocator
        starts past every serial that may have escaped inside a signed
        certificate.  One durable append covers ``SERIAL_RESERVE``
        allocations.
        """
        if top_serial > self._serials_reserved:
            self._serials_reserved = top_serial + SERIAL_RESERVE
            self._state.reserve_serials(self._serials_reserved)

    def _issue_rmc(self, principal: PrincipalId, role: Role, match: RuleMatch,
                   environment: Dict[str, Any], session_id: Optional[str],
                   bound_key: Optional[str]) -> RoleMembershipCertificate:
        ref = self._refs.next()
        if self._persist is not None:
            self._reserve_serials(ref.serial)
        now = self.clock()
        rmc = RoleMembershipCertificate.issue(
            self.secret, self.id, role, ref, principal, now, bound_key)
        record = CredentialRecord(
            ref=ref, kind="rmc", principal=principal, issued_at=now,
            membership_dependencies=match.membership_credential_refs(),
            session_id=session_id)
        self._install_record(record, match, environment)
        self.stats.rmcs_issued += 1
        self._audit(AccessKind.ACTIVATION, principal.value,
                    str(role.role_name), detail=role.parameters)
        return rmc

    # ------------------------------------------------------------------
    # Bulk issuance and activation (scale-world construction)
    # ------------------------------------------------------------------
    def activate_roles_bulk(self, requests: Sequence["ActivationRequest"],
                            ) -> List[RoleMembershipCertificate]:
        """Activate a batch of roles; returns one RMC per request, in order.

        Semantically identical to calling :meth:`activate_role` per request
        (same rule evaluation, same records, same audit entries, same
        failure behaviour — the first denial raises and earlier requests
        stay installed), but the per-call overhead is amortized: the
        observability branch is taken once for the batch, rule lists are
        fetched once per distinct role name, and requests without an
        environment share the service's base evaluation context instead of
        allocating a copy each.
        """
        if self._obs is not None:
            # Observed path: per-request spans/decisions must be emitted
            # exactly as the one-at-a-time API would, so just loop it.
            return [self.activate_role(
                        request.principal, request.role_name,
                        request.parameters, request.credentials,
                        request.environment, request.session_id,
                        request.bound_key)
                    for request in requests]
        rmcs: List[RoleMembershipCertificate] = []
        rules_for: Dict[str, Any] = {}
        base_context = self.context
        for request in requests:
            presented = self._validate_presentations(request.principal,
                                                     request.credentials)
            environment = request.environment
            context = base_context if not environment \
                else base_context.with_environment(**environment)
            index = CredentialIndex(presented)
            rules = rules_for.get(request.role_name)
            if rules is None:
                rules = self.policy.activation_rules_for(request.role_name)
                rules_for[request.role_name] = rules
            last_denial: Optional[ActivationDenied] = None
            matched = False
            for rule in rules:
                try:
                    result = self._engine.match_activation(
                        rule, request.parameters, presented, context, index)
                except ActivationDenied as denial:
                    last_denial = denial
                    continue
                if result is None:
                    continue
                match, role = result
                rmcs.append(self._issue_rmc(
                    request.principal, role, match, environment or {},
                    request.session_id, request.bound_key))
                matched = True
                break
            if not matched:
                self.stats.activations_denied += 1
                denial = last_denial or ActivationDenied(
                    f"{request.principal} cannot activate "
                    f"{self.id}:{request.role_name} with the presented "
                    f"credentials")
                self._audit(AccessKind.ACTIVATION_DENIED,
                            request.principal.value, request.role_name,
                            reason=str(denial))
                raise denial
        return rmcs

    def issue_rmcs_bulk(self, entries: Sequence[Tuple[PrincipalId, Role,
                                                      Sequence[CredentialRef],
                                                      Optional[str]]],
                        ) -> List[RoleMembershipCertificate]:
        """Mint a batch of RMCs directly, bypassing rule evaluation.

        Each entry is ``(principal, role, membership_dependencies,
        session_id)``.  This is a *trusted* issuance path for world
        construction and administrative re-seeding: the caller asserts the
        activation conditions held and supplies the membership dependency
        edges that rule matching would have produced.  Everything
        downstream is identical to the rule-driven path — signed
        certificate, credential record, event channel, reverse-index (or
        per-edge subscription) wiring, audit entry, ``rmcs_issued`` counter
        — so revocation cascades and callback validation behave exactly as
        if each RMC had come from :meth:`activate_role`.  Membership
        *constraint* watches are not installed (there is no rule match to
        take constraints from); use the rule-driven APIs for roles whose
        activation rules carry membership-flagged constraints.
        """
        count = len(entries)
        if not count:
            return []
        refs = self._refs.next_many(count)
        if self._persist is not None:
            self._reserve_serials(refs[-1].serial)
        now = self.clock()
        secret = self.secret
        service_id = self.id
        records = self._records
        broker = self.broker
        batched = self._batched_cascades
        link = self._link_dependent
        rmcs: List[RoleMembershipCertificate] = []
        subscribe_entries: List[Tuple[Any, Dict[str, Any]]] = []
        subscribe_owners: List[Tuple[CredentialRef, int]] = []
        for ref, (principal, role, dependencies, session_id) \
                in zip(refs, entries):
            rmc = RoleMembershipCertificate.issue(
                secret, service_id, role, ref, principal, now)
            record = CredentialRecord(
                ref=ref, kind="rmc", principal=principal, issued_at=now,
                membership_dependencies=tuple(dependencies),
                session_id=session_id)
            records[ref] = record
            if batched:
                for dependency in record.membership_dependencies:
                    link(dependency.qualified, ref)
            elif record.membership_dependencies:
                first = len(subscribe_entries)
                for dependency in record.membership_dependencies:
                    subscribe_entries.append((
                        lambda event, dep=ref: self._on_dependency_revoked(
                            dep, event),
                        {"credential_ref": dependency.qualified}))
                subscribe_owners.append(
                    (ref, len(subscribe_entries) - first))
            self._audit(AccessKind.ACTIVATION, principal.value,
                        str(role.role_name), detail=role.parameters)
            rmcs.append(rmc)
        if subscribe_entries:
            subs = broker.subscribe_many(CREDENTIAL_REVOKED,
                                         subscribe_entries)
            cursor = 0
            for ref, width in subscribe_owners:
                self._dependency_subs[ref] = subs[cursor:cursor + width]
                cursor += width
        if self._persist is not None:
            # One store round trip for the whole batch (write-behind on
            # serialising backends, dict.update on the memory backend).
            self._persist.put_many(
                RECORDS, [(ref.qualified, records[ref]) for ref in refs])
        self.stats.rmcs_issued += count
        return rmcs

    # ------------------------------------------------------------------
    # Service invocation (Fig. 2 paths 3-4)
    # ------------------------------------------------------------------
    def register_method(self, name: str, handler: Callable[..., Any]) -> None:
        """Expose an application method, to be guarded by authorization
        rules for ``name``."""
        if not name:
            raise ValueError("method name must be non-empty")
        if name in self._methods:
            raise ValueError(f"method {name!r} already registered")
        self._methods[name] = handler

    def invoke(self, principal: PrincipalId, method: str,
               arguments: Sequence[Term] = (),
               credentials: Sequence[Presentation] = (),
               environment: Optional[Dict[str, Any]] = None) -> Any:
        """Invoke ``method`` under OASIS access control.

        The invocation proceeds only if some authorization rule for the
        method is satisfied (closed world: a method with no satisfiable
        rule, or no rules at all, is denied).
        """
        if method not in self._methods:
            raise UnknownMethod(f"{self.id} has no method {method!r}")
        if self._obs is not None:
            return self._invoke_observed(principal, method, arguments,
                                         credentials, environment)
        presented = self._validate_presentations(principal, credentials)
        context = self.context.with_environment(**(environment or {}))
        index = CredentialIndex(presented)
        arguments = list(arguments)
        for rule in self.policy.authorization_rules_for(method):
            match = self._engine.match_authorization(
                rule, arguments, presented, context, index)
            if match is not None:
                self.stats.invocations += 1
                self._audit(AccessKind.INVOCATION, principal.value,
                            method, detail=tuple(arguments))
                return self._methods[method](*arguments)
        self.stats.invocations_denied += 1
        self._audit(AccessKind.INVOCATION_DENIED, principal.value,
                    method, detail=tuple(arguments))
        raise InvocationDenied(
            f"{principal} may not invoke {self.id}.{method}{tuple(arguments)!r}")

    def _invoke_observed(self, principal: PrincipalId, method: str,
                         arguments: Sequence[Term],
                         credentials: Sequence[Presentation],
                         environment: Optional[Dict[str, Any]]) -> Any:
        """Same semantics as :meth:`invoke`, plus a span and a Decision."""
        span = self._obs.tracer.start_span(
            "invoke", timestamp=self.clock(),
            service=str(self.id), principal=principal.value, method=method)
        attempts: List[RuleAttempt] = []
        try:
            try:
                presented = self._validate_presentations(principal,
                                                         credentials)
            except CredentialInvalid as failure:
                attempts.append(RuleAttempt(
                    rule="(credential validation)", outcome="failed",
                    failure_kind="credential-invalid", detail=str(failure)))
                self._record_decision(
                    "invocation", "denied", principal.value, method,
                    tuple(attempts), reason=str(failure), span=span)
                self._obs_invocation_denied.inc()
                span.error(str(failure))
                raise
            context = self.context.with_environment(**(environment or {}))
            index = CredentialIndex(presented)
            arguments = list(arguments)
            for rule in self.policy.authorization_rules_for(method):
                match = self._engine.match_authorization(
                    rule, arguments, presented, context, index)
                if match is None:
                    failure = self._engine.explain_authorization(
                        rule, arguments, presented, context)
                    if failure is None:
                        attempts.append(RuleAttempt(
                            rule=str(rule), outcome="failed",
                            failure_kind="unknown"))
                    else:
                        attempts.append(RuleAttempt(
                            rule=str(rule), outcome="failed",
                            failure_kind=failure.kind,
                            failed_condition=(
                                str(failure.condition)
                                if failure.condition is not None else None),
                            detail=failure.detail))
                    continue
                self.stats.invocations += 1
                self._audit(AccessKind.INVOCATION, principal.value,
                            method, detail=tuple(arguments))
                attempts.append(RuleAttempt(rule=str(rule),
                                            outcome="matched"))
                self._record_decision(
                    "invocation", "granted", principal.value, method,
                    tuple(attempts), span=span)
                self._obs_invocation_granted.inc()
                return self._methods[method](*arguments)
            self.stats.invocations_denied += 1
            if not attempts:
                attempts.append(RuleAttempt(
                    rule=f"(no authorization rule for {method!r})",
                    outcome="failed", failure_kind="no-rule"))
            self._audit(AccessKind.INVOCATION_DENIED, principal.value,
                        method, detail=tuple(arguments))
            denial = InvocationDenied(
                f"{principal} may not invoke "
                f"{self.id}.{method}{tuple(arguments)!r}")
            self._record_decision(
                "invocation", "denied", principal.value, method,
                tuple(attempts), reason=str(denial), span=span)
            self._obs_invocation_denied.inc()
            span.error(str(denial))
            raise denial
        finally:
            span.finish(self.clock())

    # ------------------------------------------------------------------
    # Appointment (Sect. 2)
    # ------------------------------------------------------------------
    def issue_appointment(self, appointer: PrincipalId, name: str,
                          parameters: Sequence[Term],
                          credentials: Sequence[Presentation] = (),
                          holder: Optional[str] = None,
                          expires_at: Optional[float] = None,
                          environment: Optional[Dict[str, Any]] = None,
                          ) -> AppointmentCertificate:
        """Issue an appointment certificate if the appointer satisfies an
        appointment rule.

        ``holder`` binds the certificate (persistent principal id or
        ``"key:<fingerprint>"``); None issues an anonymous certificate.
        The certificate's lifetime is independent of the appointer's
        session: revoking the appointer's RMC does *not* cascade here.
        """
        presented = self._validate_presentations(appointer, credentials)
        context = self.context.with_environment(**(environment or {}))
        index = CredentialIndex(presented)
        rules = self.policy.appointment_rules_for(name)
        if not rules:
            raise AppointmentDenied(
                f"{self.id} defines no appointment {name!r}")
        parameters = list(parameters)
        for rule in rules:
            match = self._engine.match_appointment(
                rule, parameters, presented, context, index)
            if match is None:
                continue
            ground = match.substitution.apply(tuple(parameters))
            ref = self._refs.next()
            if self._persist is not None:
                self._reserve_serials(ref.serial)
            now = self.clock()
            certificate = AppointmentCertificate.issue(
                self.secret, self.id, name, ground, ref, now,
                expires_at, holder)
            record = CredentialRecord(
                ref=ref, kind="appointment",
                principal=PrincipalId(holder) if holder else None,
                issued_at=now)
            self._state.install(record)
            self.stats.appointments_issued += 1
            self._audit(AccessKind.APPOINTMENT, appointer.value, name,
                        detail=tuple(ground),
                        reason=f"holder={holder!r}")
            return certificate
        self._audit(AccessKind.APPOINTMENT_DENIED, appointer.value, name)
        raise AppointmentDenied(
            f"{appointer} may not issue appointment {name!r} at {self.id}")

    def rotate_secret(self) -> None:
        """Rotate the service secret (Sect. 4.1).

        Certificates signed under the old secret stop verifying and must be
        re-issued via :meth:`reissue_appointment`.  A ``CREDENTIAL_REISSUED``
        event is published for every live appointment so that holders of
        cached validations drop them immediately — without it, a cache
        would keep honouring old-secret certificates until its next
        callback.  (The event deliberately differs from revocation: the
        credential *records* stay valid, so no dependency cascade fires.)
        """
        self.secret = self.secret.rotated()
        if self._persist is not None:
            self._state.save_secret(self.secret)
        self._sig_cache.clear()
        self.broker.publish_batch(
            Event.make(CREDENTIAL_REISSUED, timestamp=self.clock(),
                       credential_ref=str(record.ref),
                       reason="issuer secret rotation")
            for record in self._records.values()
            if record.kind == "appointment" and record.active)

    def reissue_appointment(self, certificate: AppointmentCertificate
                            ) -> AppointmentCertificate:
        """Re-sign a (still active) appointment under the current secret."""
        record = self._records.get(certificate.ref)
        if record is None or record.kind != "appointment":
            raise CredentialInvalid(f"unknown appointment {certificate.ref}")
        if not record.active:
            raise CredentialRevoked(f"appointment {certificate.ref} revoked")
        return certificate.reissued(self.secret, self.clock())

    # ------------------------------------------------------------------
    # Revocation and the Fig. 5 cascade
    # ------------------------------------------------------------------
    def revoke(self, ref: CredentialRef, reason: str = "revoked") -> bool:
        """Revoke a credential issued here; triggers the dependency cascade.

        Returns False when the credential was already revoked or unknown.

        In the default batched mode the whole *local* dependent subtree is
        collapsed in one reverse-index traversal and its revocation events
        are published as a coalesced batch (drained FIFO, so the global
        cascade stays breadth-first); other services pick the events up
        through their own service-level subscriptions — the cross-service
        hand-off of Fig. 5 is unchanged.
        """
        record = self._records.get(ref)
        if record is None or not record.revoke(reason, self.clock()):
            return False
        if self._obs is not None:
            return self._revoke_observed(record, ref, reason)
        self.stats.revocations += 1
        if self._batched_cascades:
            events, flipped = self._collapse_subtree([(record, reason)])
            self._publish_cascade(events, flipped)
            return True
        self._audit(AccessKind.REVOCATION,
                    record.principal.value if record.principal else "-",
                    str(ref), reason=reason)
        self._teardown_watch(ref)
        for subscription in self._dependency_subs.pop(ref, []):
            subscription.cancel()
        self._publish_cascade([self._revocation_event(ref, reason)],
                              [record], single=True)
        return True

    def _publish_cascade(self, events: List[Event],
                         records: Sequence[CredentialRecord] = (),
                         single: bool = False) -> None:
        """Publish a cascade's revocation events, crash-consistently.

        With a store attached the events are journalled with ONE durable
        append *before* anything else — the commit point at which the
        revocation survives a crash — then the flipped ``records`` are
        mirrored to the store (write-behind on SQLite), the events are
        published, and a ``cascade-done`` marker lands after the batch
        drains.  The journal MUST come first: record mirroring can
        auto-flush a full write-behind buffer, and a REVOKED record that
        reaches disk before its journal entry would leave a crash with a
        partially-revoked durable subtree that :meth:`resume` cannot see
        (no ``cascade`` entry to replay) — dependents would stay active
        forever.  Journalled first, a crash at any later point is
        recoverable: the log-tail replay re-applies every flip and
        :meth:`replay_pending` re-emits the events.  Storeless, this is
        exactly the pre-refactor publish.
        """
        if not events:
            return
        persist = self._persist
        if persist is None:
            if single:
                self.broker.publish(events[0])
            else:
                self.broker.publish_batch(events)
            return
        seq = self._state.log_cascade(events)
        for record in records:
            self._state.mark_revoked(record)
        if single:
            self.broker.publish(events[0])
        else:
            self.broker.publish_batch(events)
        self._state.log_cascade_done(seq)

    def _revoke_observed(self, record: CredentialRecord, ref: CredentialRef,
                         reason: str) -> bool:
        """Tail of :meth:`revoke` under a root ``revoke`` span.

        The batch is published *inside* the span: the broker delivers
        synchronously, so every downstream handler (including unbatched
        per-edge cascades on other services) runs with this span on the
        tracer stack and stitches into the same trace automatically.
        """
        span = self._obs.tracer.start_span(
            "revoke", timestamp=self.clock(), service=str(self.id),
            credential_ref=str(ref), reason=reason)
        try:
            self.stats.revocations += 1
            if self._batched_cascades:
                events, flipped = self._collapse_subtree([(record, reason)])
                self._publish_cascade(events, flipped)
                return True
            self._audit(AccessKind.REVOCATION,
                        record.principal.value if record.principal else "-",
                        str(ref), reason=reason)
            self._record_decision(
                "revocation", "revoked",
                record.principal.value if record.principal else "-",
                str(ref), reason=reason, span=span)
            self._teardown_watch(ref)
            for subscription in self._dependency_subs.pop(ref, []):
                subscription.cancel()
            self._publish_cascade([self._revocation_event(ref, reason)],
                                  [record], single=True)
            return True
        finally:
            span.finish(self.clock())

    def _collapse_subtree(self, revoked: List[Tuple[CredentialRecord, str]],
                          parent_ctx: Optional[SpanContext] = None,
                          ) -> Tuple[List[Event], List[CredentialRecord]]:
        """Collapse the local dependent subtree of already-revoked roots.

        Breadth-first over the reverse dependency index; every reached
        credential is marked revoked, audited, unlinked from the index,
        and contributes exactly one ``CREDENTIAL_REVOKED`` event (its
        channel closes here), matching the per-credential event count of
        the unbatched reference path.  Cost is O(collapsed subtree), not
        O(live credentials).

        Returns the events and the flipped records.  The traversal itself
        never touches the store — :meth:`_publish_cascade` mirrors the
        records only after the cascade journal entry is durably committed
        (see its docstring for why the order matters).
        """
        # Dual loop, same trick as the engine's dual solve closures: the
        # common disabled-pipeline path runs the lean two-tuple loop below
        # (one guard for the whole traversal); the span-carrying variant
        # lives in :meth:`_collapse_subtree_observed`.
        if self._obs is not None:
            return self._collapse_subtree_observed(revoked, parent_ctx)
        events: List[Event] = []
        flipped: List[CredentialRecord] = []
        # Storeless (the default) skips flip collection entirely — the
        # per-record branch keeps this hot loop's cost identical to the
        # pre-refactor body (the memory_backend_overhead bench gate).
        collect = flipped.append if self._persist is not None else None
        queue = deque(revoked)
        while queue:
            record, reason = queue.popleft()
            ref = record.ref
            self._audit(AccessKind.REVOCATION,
                        record.principal.value if record.principal else "-",
                        str(ref), reason=reason)
            self._teardown_watch(ref)
            self._unlink_dependencies(record)
            if collect is not None:
                collect(record)
            events.append(self._revocation_event(ref, reason))
            dependents = self._dependents.get(ref.qualified)
            if not dependents:
                continue
            dependent_reason = (f"membership dependency {ref} revoked "
                                f"({reason})")
            for dependent_ref in list(dependents):
                dependent = self._records.get(dependent_ref)
                if dependent is None or not dependent.revoke(
                        dependent_reason, self.clock()):
                    continue
                self.stats.revocations += 1
                self.stats.cascade_revocations += 1
                queue.append((dependent, dependent_reason))
        return events, flipped

    def _collapse_subtree_observed(
            self, revoked: List[Tuple[CredentialRecord, str]],
            parent_ctx: Optional[SpanContext] = None,
            ) -> Tuple[List[Event], List[CredentialRecord]]:
        """Span-carrying variant of :meth:`_collapse_subtree`.

        Every collapsed credential gets a ``cascade.revoke`` span parented
        on its revoker (the queue carries each record's parent context and
        depth), the span context rides out on the revocation event for
        cross-service stitching, and the traversal's width and depth feed
        the cascade histograms.
        """
        tracer = self._obs.tracer
        if parent_ctx is None:
            # Root-side collapse: hang cascade spans off whatever span is
            # active (the ``revoke`` root span, or a caller's span).
            parent_ctx = tracer.current_context()
        events: List[Event] = []
        flipped: List[CredentialRecord] = []
        collect = flipped.append if self._persist is not None else None
        width = 0
        max_depth = 1
        queue: deque = deque((record, reason, parent_ctx, 1)
                             for record, reason in revoked)
        while queue:
            record, reason, ctx, depth = queue.popleft()
            ref = record.ref
            if collect is not None:
                collect(record)
            span = tracer.start_span(
                "cascade.revoke", timestamp=self.clock(), parent=ctx,
                activate=False, service=str(self.id),
                credential_ref=str(ref), reason=reason)
            width += 1
            if depth > max_depth:
                max_depth = depth
            self._audit(AccessKind.REVOCATION,
                        record.principal.value if record.principal else "-",
                        str(ref), reason=reason, trace_id=span.trace_id)
            self._teardown_watch(ref)
            self._unlink_dependencies(record)
            # Span context rides on the event so a service that picks it
            # up later (batched delivery) can parent its own cascade spans
            # under this one.
            events.append(self._revocation_event(ref, reason).with_attributes(
                trace_id=span.trace_id, span_id=span.span_id))
            self._record_decision(
                "revocation", "revoked",
                record.principal.value if record.principal else "-",
                str(ref), reason=reason, span=span)
            dependents = self._dependents.get(ref.qualified)
            if not dependents:
                span.finish(self.clock())
                continue
            dependent_reason = (f"membership dependency {ref} revoked "
                                f"({reason})")
            child_ctx = span.context
            for dependent_ref in list(dependents):
                dependent = self._records.get(dependent_ref)
                if dependent is None or not dependent.revoke(
                        dependent_reason, self.clock()):
                    continue
                self.stats.revocations += 1
                self.stats.cascade_revocations += 1
                queue.append((dependent, dependent_reason, child_ctx,
                              depth + 1))
            span.finish(self.clock())
        if width:
            self._obs_cascade_width.observe(width)
            self._obs_cascade_depth.observe(max_depth)
        return events, flipped

    def _revocation_event(self, ref: CredentialRef, reason: str) -> Event:
        """The CREDENTIAL_REVOKED event for ``ref``'s Fig. 5 channel.

        Channels are *virtual* on the issuer side: the channel identity is
        the CRR string carried on every event, so nothing per-credential
        needs to stay resident between publishes.  Exactly-once closing is
        guaranteed by the ``CredentialRecord.revoke`` state transition that
        gates every call site, which is what the former per-credential
        ``CredentialChannel`` object's ``closed`` flag duplicated.
        """
        return Event.make(CREDENTIAL_REVOKED, timestamp=self.clock(),
                          credential_ref=ref.qualified, reason=reason)

    def deactivate_role(self, rmc: RoleMembershipCertificate,
                        reason: str = "deactivated by principal") -> bool:
        """Voluntary role deactivation (e.g. logout of an initial role)."""
        if rmc.issuer != self.id:
            raise CredentialInvalid(
                f"RMC {rmc.ref} was not issued by {self.id}")
        return self.revoke(rmc.ref, reason)

    def _on_revoked_event(self, event: Event) -> None:
        """Service-level entry point for every CREDENTIAL_REVOKED event.

        Two dict probes per event: drop any cached signature verifications
        for the credential, then (batched mode) probe the reverse
        dependency index.  Only events whose credential has local
        dependents cost more, and then only O(local subtree).  Events this
        service published itself find their buckets already unlinked and
        fall through immediately.
        """
        ref_string = event.get("credential_ref")
        if ref_string is None:
            return
        if self._sig_cache.pop(ref_string, None) is not None:
            self.stats.sig_cache_invalidations += 1
        if not self._batched_cascades:
            return
        dependents = self._dependents.get(ref_string)
        if not dependents:
            return
        reason = (f"membership dependency {ref_string} revoked "
                  f"({event.get('reason')})")
        seeds: List[Tuple[CredentialRecord, str]] = []
        for dependent_ref in list(dependents):
            record = self._records.get(dependent_ref)
            if record is None or not record.revoke(reason, self.clock()):
                continue
            self.stats.revocations += 1
            self.stats.cascade_revocations += 1
            seeds.append((record, reason))
        if seeds:
            parent_ctx: Optional[SpanContext] = None
            if self._obs is not None:
                trace_id = event.get("trace_id")
                span_id = event.get("span_id")
                if trace_id is not None and span_id is not None:
                    # Stitch: the publishing service put its cascade span's
                    # context on the event; our local subtree hangs off it.
                    parent_ctx = SpanContext(trace_id, span_id)
            events, flipped = self._collapse_subtree(seeds, parent_ctx)
            self._publish_cascade(events, flipped)

    def _on_dependency_revoked(self, dependent: CredentialRef,
                               event: Event) -> None:
        # Reference (unbatched) path: one handler per dependency edge.
        record = self._records.get(dependent)
        if record is None or not record.active:
            return
        self.stats.cascade_revocations += 1
        self.revoke(dependent,
                    f"membership dependency {event.get('credential_ref')} "
                    f"revoked ({event.get('reason')})")

    # ------------------------------------------------------------------
    # Membership constraint monitoring
    # ------------------------------------------------------------------
    def _install_record(self, record: CredentialRecord, match: RuleMatch,
                        environment: Dict[str, Any]) -> None:
        ref = record.ref
        # The state core installs the record (mirroring it to the store)
        # and, in batched mode, registers every membership dependency: the
        # edge along which the Fig. 5 cascade travels (O(dependencies)
        # bucket inserts, no broker churn).  The reference path subscribes
        # per dependency instead.
        self._state.install(record, link=self._batched_cascades)
        if not self._batched_cascades:
            subs = []
            for dependency in record.membership_dependencies:
                subs.append(self.broker.subscribe(
                    CREDENTIAL_REVOKED,
                    lambda event, dep=ref: self._on_dependency_revoked(
                        dep, event),
                    credential_ref=str(dependency)))
            if subs:
                self._dependency_subs[ref] = subs
        constraints = match.membership_constraints()
        if constraints:
            watch = _MembershipWatch(
                ref=ref, constraints=constraints,
                substitution=match.substitution,
                environment=dict(environment))
            for condition in constraints:
                watch.watched_tables |= condition.constraint.watched_tables()
            self._watches[ref] = watch

    def _teardown_watch(self, ref: CredentialRef) -> None:
        self._watches.pop(ref, None)

    def _recheck_watch(self, watch: _MembershipWatch) -> bool:
        """Re-evaluate one credential's membership constraints; revoke on
        violation.  Returns True when the credential survived."""
        self.stats.membership_rechecks += 1
        context = self.context.with_environment(**watch.environment)
        for condition in watch.constraints:
            if not condition.constraint.evaluate(watch.substitution, context):
                self.revoke(watch.ref,
                            f"membership condition became false: "
                            f"{condition.constraint!r}")
                return False
        return True

    def recheck_membership(self) -> int:
        """Sweep all membership watches (drives time-based conditions).

        Returns the number of credentials revoked by the sweep.  Intended to
        be scheduled periodically (:class:`repro.net.Scheduler`) — database
        -backed conditions do not need it, they are pushed via listeners.
        """
        revoked = 0
        for watch in list(self._watches.values()):
            if not self._recheck_watch(watch):
                revoked += 1
        return revoked

    def _on_database_change(self, table: str, op: str, row: Any) -> None:
        # Identify the databases this service sees containing this table;
        # re-check any watch that depends on it.
        affected_names = {name for name, db in self.context.databases.items()
                          if db.has_table(table)}
        for watch in list(self._watches.values()):
            if any((db_name, table) in watch.watched_tables
                   for db_name in affected_names):
                self._recheck_watch(watch)

    # ------------------------------------------------------------------
    # Credential validation (local + callback + cache/ECR)
    # ------------------------------------------------------------------
    def _validate_presentations(self, principal: PrincipalId,
                                presentations: Sequence[Presentation],
                                ) -> List[PresentedCredential]:
        presented = []
        for presentation in presentations:
            certificate = presentation.certificate
            try:
                if certificate.issuer == self.id:
                    self._validate_local(principal, presentation)
                else:
                    self._validate_remote(principal, presentation)
            except CredentialInvalid as failure:
                self._audit(AccessKind.VALIDATION_FAILED, principal.value,
                            str(certificate.ref), reason=str(failure))
                raise
            presented.append(PresentedCredential(certificate))
        return presented

    @staticmethod
    def _rmc_binding(principal: PrincipalId,
                     presentation: Presentation) -> str:
        return presentation.on_behalf_of or principal.value

    def _validate_local(self, principal: PrincipalId,
                        presentation: Presentation) -> None:
        self.stats.validations_local += 1
        self._check_certificate(presentation.certificate,
                                self._rmc_binding(principal, presentation),
                                presentation.holder)

    def _validate_remote(self, principal: PrincipalId,
                         presentation: Presentation) -> None:
        certificate = presentation.certificate
        ref = certificate.ref
        # The effective requester: the invoking principal, or the original
        # requester a gateway attests under an SLA.  Both the RMC principal
        # binding and the appointment holder binding are checked against it
        # by the issuer.
        requester = self._rmc_binding(principal, presentation)
        cache_key = (requester, presentation.holder)
        cached_entries = self._validation_cache.get(ref)
        if self.cache_validations and cached_entries is not None \
                and cache_key in cached_entries \
                and not self._heartbeat_silent(ref):
            # Cached result is trustworthy only while the ECR subscription
            # lives; expiry must still be checked locally against the clock.
            if isinstance(certificate, AppointmentCertificate) \
                    and certificate.is_expired(self.clock()):
                raise CredentialExpired(f"appointment {ref} expired")
            self.stats.cache_hits += 1
            return
        self._callback_validate(certificate, requester,
                                presentation.holder)
        if self.cache_validations:
            self._state.cache_validation(ref, cache_key)
            if self._heartbeats is not None:
                # A successful callback is fresh evidence of issuer
                # liveness: re-arm the heartbeat window.
                self._heartbeats.unwatch(str(ref))
                self._heartbeats.watch(str(ref))
            self._subscribe_ecr(ref)

    def _subscribe_ecr(self, ref: CredentialRef) -> None:
        """The ECR proxy of Fig. 5: invalidate the cached validation on
        revocation (terminal) or re-issue (cache-only drop)."""
        if ref in self._ecr_subs:
            return
        self._ecr_subs[ref] = [
            self.broker.subscribe(
                CREDENTIAL_REVOKED,
                lambda event, r=ref: self._drop_ecr(r, final=True),
                credential_ref=str(ref)),
            self.broker.subscribe(
                CREDENTIAL_REISSUED,
                lambda event, r=ref: self._drop_ecr(r, final=False),
                credential_ref=str(ref)),
        ]

    def _heartbeat_silent(self, ref: CredentialRef) -> bool:
        if self._heartbeats is None:
            return False
        return str(ref) in self._heartbeats.silent_credentials()

    def suspect_credentials(self) -> List[CredentialRef]:
        """Foreign credentials whose issuers' heartbeats have gone silent.

        Only meaningful when the service was built with a
        ``heartbeat_timeout``; cached validations for these are bypassed
        until a callback succeeds again.
        """
        if self._heartbeats is None:
            return []
        silent = set(self._heartbeats.silent_credentials())
        return sorted((ref for ref in self._validation_cache
                       if str(ref) in silent),
                      key=str)

    def start_heartbeats(self, scheduler: Any,
                         interval: float) -> Callable[[], None]:
        """Issuer side of Fig. 5: periodically heartbeat every live CR.

        Returns a cancel function.  Revoked credentials stop beating
        because only active records beat (channel closure and record
        revocation are the same state transition).
        """

        def beat() -> None:
            now = self.clock()
            publish = self.broker.publish
            sent = 0
            for record in self._records.values():
                if record.active:
                    publish(Event.make(CREDENTIAL_HEARTBEAT, timestamp=now,
                                       credential_ref=record.ref.qualified))
                    sent += 1
            self.stats.heartbeats_sent += sent

        return scheduler.schedule_periodic(interval, beat)

    def _drop_ecr(self, ref: CredentialRef, final: bool) -> None:
        stale = self._state.drop_validation(ref)
        if stale:
            self.stats.cache_invalidations += len(stale)
        if final:
            for sub in self._ecr_subs.pop(ref, []):
                sub.cancel()

    def _callback_validate(self, certificate: Certificate,
                           principal_value: str,
                           holder: Optional[str]) -> None:
        """Callback to the issuer (Sect. 4: 'validate a certificate
        presented as an argument via callback to the issuer')."""
        self.stats.callbacks_made += 1
        issuer = certificate.issuer
        if self._transport is not None and self._transport.reaches(issuer):
            from ..net import NetworkError

            try:
                self._transport.validate(self.id, issuer, certificate,
                                         principal_value, holder)
            except NetworkError as failure:
                # Fail closed: a credential that cannot be validated is
                # treated as invalid for this request (it may be retried
                # once the issuer is reachable again).
                raise CredentialInvalid(
                    f"cannot validate {certificate.ref}: issuer "
                    f"unreachable ({failure})") from failure
            return
        self.registry.lookup(issuer)._serve_validation(
            certificate, principal_value, holder)

    def _serve_validation(self, certificate: Certificate,
                          principal_value: str,
                          holder: Optional[str]) -> bool:
        """Issuer-side validation endpoint; raises on invalid."""
        self.stats.callbacks_served += 1
        self._check_certificate(certificate, principal_value, holder)
        return True

    def _check_certificate(self, certificate: Certificate,
                           principal_value: str,
                           holder: Optional[str]) -> None:
        if certificate.issuer != self.id:
            raise CredentialInvalid(
                f"certificate {certificate.ref} was not issued by {self.id}")
        record = self._records.get(certificate.ref)
        if record is None:
            raise CredentialInvalid(
                f"no credential record for {certificate.ref}")
        if not record.active:
            raise CredentialRevoked(
                f"credential {certificate.ref} revoked: "
                f"{record.revoked_reason}")
        if isinstance(certificate, RoleMembershipCertificate):
            self._verify_signature(certificate, principal_value, None)
        else:
            if certificate.is_expired(self.clock()):
                raise CredentialExpired(
                    f"appointment {certificate.ref} expired")
            bound = certificate.holder
            if bound is not None and not bound.startswith("key:") \
                    and principal_value != bound:
                # Persistent principal-id binding (Sect. 4.1): the
                # presenting principal must BE the holder; merely claiming
                # the holder's name is theft.  Key-bound certificates
                # ("key:<fp>") are instead checked by challenge-response,
                # which the presenting service attests via ``holder``.
                raise SignatureInvalid(
                    f"appointment {certificate.ref} is bound to "
                    f"{bound!r}, presented by {principal_value!r}")
            self._verify_signature(certificate, principal_value, holder)

    def _verify_signature(self, certificate: Certificate,
                          principal_value: str,
                          holder: Optional[str]) -> None:
        """MAC verification behind the fingerprint-keyed cache.

        Only *successful* verifications are cached; a fingerprint binds the
        exact signature bytes, the presented identities and the current
        secret generation, so any change to certificate, presenter or
        secret re-verifies from scratch.
        """
        fingerprint = (certificate.signature, principal_value, holder,
                       self.secret.generation)
        ref_key = str(certificate.ref)
        cached = self._sig_cache.get(ref_key)
        if cached is not None and fingerprint in cached:
            self.stats.sig_cache_hits += 1
            return
        self.stats.sig_verifications += 1
        if isinstance(certificate, RoleMembershipCertificate):
            certificate.verify(self.secret, PrincipalId(principal_value))
        else:
            certificate.verify(self.secret, holder)
        if cached is None:
            self._sig_cache[ref_key] = cached = set()
        cached.add(fingerprint)

    def _on_sig_cache_event(self, event: Event) -> None:
        ref = event.get("credential_ref")
        if ref and self._sig_cache.pop(ref, None) is not None:
            self.stats.sig_cache_invalidations += 1

    # ------------------------------------------------------------------
    # Persistence and crash recovery
    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, store: RecordStore, policy: ServicePolicy,
               broker: EventBroker, registry: ServiceRegistry,
               clock: Callable[[], float] = lambda: 0.0,
               databases: Optional[Dict[str, Database]] = None,
               network: Optional[Any] = None,
               cache_validations: bool = True,
               heartbeat_timeout: Optional[float] = None,
               access_log: Optional[AccessLog] = None,
               batched_cascades: bool = True) -> "OasisService":
        """Rebuild a service from its record store after a restart.

        Loads the stored secret (certificates signed before the crash keep
        verifying), reconstructs credential records — revoked ones
        included, so dead credentials still answer callbacks with their
        revocation reason — relinks the Fig. 5 dependency edges, restores
        the validation cache with fresh ECR subscriptions, replays the
        append log's tail, and advances the CRR allocator past every
        serial that may have escaped in a certificate.

        Cascades journalled but never marked done are re-audited here and
        queued; call :meth:`replay_pending` once every participating
        service is resumed to re-emit their ``CREDENTIAL_REVOKED`` events
        so the cross-service cascade cut by the crash completes.
        """
        if network is not None:
            # The crashed instance's validation endpoint may still be
            # registered on the network (the process died, the simulated
            # network did not); clear it so the constructor's bind does
            # not trip the duplicate-registration error.
            ValidationTransport(network).unbind(policy.service)
        service = cls(policy, broker, registry, clock=clock,
                      databases=databases, network=network,
                      cache_validations=cache_validations, secret=None,
                      heartbeat_timeout=heartbeat_timeout,
                      access_log=access_log,
                      batched_cascades=batched_cascades, store=store)
        service._recover()
        return service

    def _recover(self) -> None:
        recovered = self._state.load(self.clock())
        # Never re-issue a CRR: past both the highest stored serial and
        # the durable reservation watermark (which covers write-behind
        # installs lost with the process).
        self._refs.advance_past(recovered.max_serial)
        self._serials_reserved = recovered.max_serial
        # The interrupted cascades' audit entries died with the process
        # (the access log is in-memory); re-record them in log order so
        # the post-recovery REVOCATION sequence matches an uninterrupted
        # run's.
        for record, event in recovered.interrupted_revocations:
            principal = "-"
            if record is not None and record.principal is not None:
                principal = record.principal.value
            self._audit(AccessKind.REVOCATION, principal,
                        event.get("credential_ref") or "-",
                        reason=event.get("reason"))
            self.stats.revocations += 1
        if self.cache_validations:
            for ref in recovered.validation_refs:
                self._subscribe_ecr(ref)
        self._pending_replay = recovered.pending_cascades

    def replay_pending(self) -> int:
        """Re-emit journalled cascades whose publish was cut mid-flight.

        Returns the number of events re-published.  Re-delivery is
        idempotent: ``CredentialRecord.revoke`` refuses an already-revoked
        record, so services that saw (part of) the original batch simply
        no-op.  Each cascade gets its ``cascade-done`` marker once the
        batch drains, after which the journal entries are prunable.
        """
        pending, self._pending_replay = self._pending_replay, []
        count = 0
        for seq, events in pending:
            self.broker.publish_batch(events)
            self._state.log_cascade_done(seq)
            count += len(events)
        if pending and self._persist is not None:
            self._persist.flush()
        return count

    def checkpoint(self) -> None:
        """Flush write-behind state to the store (durability point)."""
        if self._persist is not None:
            self._persist.flush()

    @property
    def store(self) -> Optional[RecordStore]:
        """The attached record store, or None (pure in-memory service)."""
        return self._persist

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def credential_record(self, ref: CredentialRef) -> Optional[CredentialRecord]:
        return self._records.get(ref)

    def is_active(self, ref: CredentialRef) -> bool:
        record = self._records.get(ref)
        return record is not None and record.active

    def active_credentials(self) -> List[CredentialRecord]:
        return [record for record in self._records.values() if record.active]

    @property
    def validation_cache_size(self) -> int:
        return sum(len(entries)
                   for entries in self._validation_cache.values())

    def dependent_count(self, ref: CredentialRef) -> int:
        """Live local credentials directly dependent on ``ref``."""
        return len(self._dependents.get(ref.qualified, ()))

    def live_sessions(self) -> Set[str]:
        """Session ids with at least one active credential (derived from
        the records, so it survives a resume for free)."""
        return self._state.live_sessions()

    def session_credentials(self, session_id: str) -> List[CredentialRecord]:
        """Active credential records issued within ``session_id``."""
        return self._state.session_credentials(session_id)
