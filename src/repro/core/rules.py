"""Horn-clause rules: role activation, service authorization, appointment.

Sect. 2: "Activation of any role in OASIS is explicitly controlled by a role
activation rule [which] specifies, in Horn clause logic, the conditions that
a user must meet in order to activate the role.  The conditions may include
prerequisite roles, appointment credentials and environmental constraints."

Three condition kinds therefore appear in rule bodies:

* :class:`PrerequisiteRole` — the principal already holds an RMC for a role
  (of this or another service);
* :class:`AppointmentCondition` — the principal presents an appointment
  certificate of a given issuer and name;
* :class:`ConstraintCondition` — an environmental constraint.

Each condition carries a ``membership`` flag.  The *membership rule* of a
role is exactly the flagged subset: "the membership rule of a role indicates
which of the role activation conditions must remain true while the role is
active" (Abstract).  A role is deactivated the moment any flagged condition
becomes false.

:class:`AuthorizationRule` guards method invocation ("the conditions for
service invocation are possession of role membership certificates of this
and other services together with environmental constraints", Sect. 2) and
:class:`AppointmentRule` guards the issuing of appointment certificates
("being active in certain roles gives the principal the right to issue
appointment certificates").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import FrozenSet, Iterator, Optional, Tuple, Union

from .constraints import EnvironmentalConstraint
from .exceptions import PolicyError
from .terms import Term, Var, variables_in
from .types import RoleTemplate, ServiceId

__all__ = [
    "SourceSpan",
    "PrerequisiteRole",
    "AppointmentCondition",
    "ConstraintCondition",
    "Condition",
    "partition_conditions",
    "ActivationRule",
    "AuthorizationRule",
    "AppointmentRule",
]


@dataclass(frozen=True)
class SourceSpan:
    """Provenance of a rule or condition in policy source text.

    Lines and columns are 1-based; ``end_column`` is exclusive.  Compiled
    rules carry spans so that analysis findings can point at the policy
    *source* a reviewer edits rather than at a compiled object.  Spans are
    excluded from equality/hashing of the objects that carry them: two
    rules compiled from different files are still the same rule.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class PrerequisiteRole:
    """The principal must hold an RMC for a role matching ``template``.

    The template's parameters are unified against the presented RMC's
    parameters, binding rule variables.  ``membership=True`` places the
    condition in the membership rule: revocation of the prerequisite RMC
    deactivates the dependent role (Fig. 1 / Fig. 5 cascade).
    """

    template: RoleTemplate
    membership: bool = False
    origin: Optional[SourceSpan] = field(default=None, compare=False,
                                         repr=False)

    @cached_property
    def index_key(self) -> Tuple[str, object, int]:
        """Bucket key for the engine's credential index: only RMCs with this
        exact role name and arity can satisfy the condition."""
        return ("rmc", self.template.role_name, self.template.arity)

    @cached_property
    def pattern(self) -> Tuple[Term, ...]:
        """The parameter terms unified against a candidate credential."""
        return self.template.parameters

    def variables(self) -> FrozenSet[Var]:
        return frozenset(v for param in self.template.parameters
                         for v in variables_in(param))

    def __str__(self) -> str:
        mark = "*" if self.membership else ""
        return f"{self.template}{mark}"


@dataclass(frozen=True)
class AppointmentCondition:
    """The principal must present an appointment certificate.

    ``issuer`` is the service whose secret signs the certificate; ``name``
    is the appointment kind (e.g. ``employed_as_doctor``); ``parameters``
    unify against the certificate's parameters.
    """

    issuer: ServiceId
    name: str
    parameters: Tuple[Term, ...] = field(default=())
    membership: bool = False
    origin: Optional[SourceSpan] = field(default=None, compare=False,
                                         repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("appointment name must be non-empty")

    @cached_property
    def index_key(self) -> Tuple[str, object, str, int]:
        """Bucket key for the engine's credential index: only appointment
        certificates of this exact issuer, name and arity can satisfy it."""
        return ("appointment", self.issuer, self.name, len(self.parameters))

    @cached_property
    def pattern(self) -> Tuple[Term, ...]:
        """The parameter terms unified against a candidate credential."""
        return self.parameters

    def variables(self) -> FrozenSet[Var]:
        return frozenset(v for param in self.parameters
                         for v in variables_in(param))

    def __str__(self) -> str:
        mark = "*" if self.membership else ""
        params = ", ".join(repr(p) for p in self.parameters)
        return f"appointment {self.issuer}:{self.name}({params}){mark}"


@dataclass(frozen=True)
class ConstraintCondition:
    """An environmental constraint in a rule body."""

    constraint: EnvironmentalConstraint
    membership: bool = False
    origin: Optional[SourceSpan] = field(default=None, compare=False,
                                         repr=False)

    def variables(self) -> FrozenSet[Var]:
        return self.constraint.free_variables()

    def __str__(self) -> str:
        mark = "*" if self.membership else ""
        return f"{self.constraint!r}{mark}"


Condition = Union[PrerequisiteRole, AppointmentCondition, ConstraintCondition]


def partition_conditions(conditions: Tuple[Condition, ...]
                         ) -> Tuple[Tuple[Condition, ...],
                                    Tuple[Condition, ...]]:
    """Split a rule body into (credential conditions, constraints), each in
    rule order — the canonical evaluation order of the engine.  Rule classes
    cache this per instance (bodies are immutable), so the solver pays for
    the split once per rule rather than once per evaluation."""
    credential_conditions = []
    constraint_conditions = []
    for condition in conditions:
        if isinstance(condition, ConstraintCondition):
            constraint_conditions.append(condition)
        else:
            credential_conditions.append(condition)
    return tuple(credential_conditions), tuple(constraint_conditions)


def _credential_conditions(conditions: Tuple[Condition, ...]
                           ) -> Iterator[Condition]:
    for condition in conditions:
        if isinstance(condition, (PrerequisiteRole, AppointmentCondition)):
            yield condition


def _check_constraint_safety(head_vars: FrozenSet[Var],
                             conditions: Tuple[Condition, ...],
                             where: str) -> None:
    """Every constraint variable must be bindable by head or credentials."""
    bindable = set(head_vars)
    for condition in _credential_conditions(conditions):
        bindable |= condition.variables()
    for condition in conditions:
        if isinstance(condition, ConstraintCondition):
            unbound = condition.variables() - bindable
            if unbound:
                names = ", ".join(sorted(v.name for v in unbound))
                raise PolicyError(
                    f"{where}: constraint variables {{{names}}} can never be "
                    f"bound by the rule head or its credential conditions")


@dataclass(frozen=True)
class ActivationRule:
    """``target <- c1, ..., cn`` — conditions to activate ``target``.

    A rule with no :class:`PrerequisiteRole` condition defines an *initial
    role*: activating one starts an OASIS session (Sect. 2).
    """

    target: RoleTemplate
    conditions: Tuple[Condition, ...] = field(default=())
    origin: Optional[SourceSpan] = field(default=None, compare=False,
                                         repr=False)

    def __post_init__(self) -> None:
        _check_constraint_safety(self.head_variables(), self.conditions,
                                 f"activation rule for {self.target.role_name}")

    @cached_property
    def condition_partition(self) -> Tuple[Tuple[Condition, ...],
                                           Tuple[Condition, ...]]:
        return partition_conditions(self.conditions)

    def head_variables(self) -> FrozenSet[Var]:
        return frozenset(v for param in self.target.parameters
                         for v in variables_in(param))

    @property
    def is_initial(self) -> bool:
        """True when no prerequisite role is required (an initial role rule)."""
        return not any(isinstance(c, PrerequisiteRole)
                       for c in self.conditions)

    @property
    def membership_conditions(self) -> Tuple[Condition, ...]:
        """The membership rule: the conditions that must remain true."""
        return tuple(c for c in self.conditions if c.membership)

    def prerequisite_roles(self) -> Tuple[PrerequisiteRole, ...]:
        return tuple(c for c in self.conditions
                     if isinstance(c, PrerequisiteRole))

    def appointment_conditions(self) -> Tuple[AppointmentCondition, ...]:
        return tuple(c for c in self.conditions
                     if isinstance(c, AppointmentCondition))

    def constraint_conditions(self) -> Tuple[ConstraintCondition, ...]:
        return tuple(c for c in self.conditions
                     if isinstance(c, ConstraintCondition))

    def __str__(self) -> str:
        body = ", ".join(str(c) for c in self.conditions) or "true"
        return f"{self.target} <- {body}"


@dataclass(frozen=True)
class AuthorizationRule:
    """``method(args) <- c1, ..., cn`` — conditions to invoke ``method``.

    ``parameters`` are terms unified against the actual invocation
    arguments, so constraints can relate arguments to credential parameters
    (e.g. the record being read belongs to the patient named in the
    ``treating_doctor`` RMC).
    """

    method: str
    parameters: Tuple[Term, ...] = field(default=())
    conditions: Tuple[Condition, ...] = field(default=())
    origin: Optional[SourceSpan] = field(default=None, compare=False,
                                         repr=False)

    def __post_init__(self) -> None:
        if not self.method:
            raise PolicyError("authorization rule needs a method name")
        head_vars = frozenset(v for param in self.parameters
                              for v in variables_in(param))
        _check_constraint_safety(head_vars, self.conditions,
                                 f"authorization rule for {self.method}")

    @cached_property
    def condition_partition(self) -> Tuple[Tuple[Condition, ...],
                                           Tuple[Condition, ...]]:
        return partition_conditions(self.conditions)

    def __str__(self) -> str:
        params = ", ".join(repr(p) for p in self.parameters)
        body = ", ".join(str(c) for c in self.conditions) or "true"
        return f"{self.method}({params}) <- {body}"


@dataclass(frozen=True)
class AppointmentRule:
    """``appointment name(params) <- c1, ..., cn`` — who may appoint.

    The body names the role(s) the *appointer* must hold — the paper's
    "being active in certain roles gives the principal the right to issue
    appointment certificates" — plus any constraints.  Crucially the rule
    says nothing about the privileges the certificate will later confer:
    appointers need not hold them (the hospital administrator need not be
    medically qualified).
    """

    name: str
    parameters: Tuple[Term, ...] = field(default=())
    conditions: Tuple[Condition, ...] = field(default=())
    origin: Optional[SourceSpan] = field(default=None, compare=False,
                                         repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise PolicyError("appointment rule needs a name")
        head_vars = frozenset(v for param in self.parameters
                              for v in variables_in(param))
        _check_constraint_safety(head_vars, self.conditions,
                                 f"appointment rule for {self.name}")

    @cached_property
    def condition_partition(self) -> Tuple[Tuple[Condition, ...],
                                           Tuple[Condition, ...]]:
        return partition_conditions(self.conditions)

    def __str__(self) -> str:
        params = ", ".join(repr(p) for p in self.parameters)
        body = ", ".join(str(c) for c in self.conditions) or "true"
        return f"appointment {self.name}({params}) <- {body}"
