"""Per-service policy: role definitions and the rules that govern them.

"Services name their client roles and enforce policy for role activation
and service invocation, expressed in terms of their own and other services'
roles" (Sect. 1).  A :class:`ServicePolicy` therefore belongs to exactly one
service and contains:

* the roles the service *defines* (name + arity),
* activation rules for those roles,
* authorization rules for the service's methods,
* appointment rules saying which roles may issue which appointments.

:meth:`ServicePolicy.validate` performs the static well-formedness checks a
deployment tool would run: every rule targets a declared role with matching
arity, at least one initial role exists if any role is reachable, and local
prerequisite chains are acyclic (a cycle among this service's own roles
would make the roles unactivatable, since activation strictly builds a tree
rooted at an initial role).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, Union

from .exceptions import PolicyError, UnknownRole
from .rules import ActivationRule, AppointmentRule, AuthorizationRule
from .types import RoleName, ServiceId

__all__ = ["ServicePolicy"]

RuleUnion = Union[ActivationRule, AuthorizationRule, AppointmentRule]


class ServicePolicy:
    """The complete access-control policy of one OASIS service."""

    def __init__(self, service: ServiceId) -> None:
        self.service = service
        self._role_arity: Dict[str, int] = {}
        self._activation_rules: Dict[str, List[ActivationRule]] = {}
        self._authorization_rules: Dict[str, List[AuthorizationRule]] = {}
        self._appointment_rules: Dict[str, List[AppointmentRule]] = {}
        # Rule dispatch index: immutable per-target rule tuples handed to
        # the hot activation/invocation paths without a per-call list copy.
        # Keyed by (rule kind, target name); the target's arity is implied —
        # every rule for a role carries the role's single declared arity
        # (enforced in add_activation_rule).  Entries are invalidated when a
        # rule is added for the target.
        self._dispatch: Dict[Tuple[str, str],
                             Tuple[RuleUnion, ...]] = {}

    # -- role definitions ----------------------------------------------------
    def define_role(self, name: str, arity: int = 0) -> RoleName:
        """Declare a role this service defines; returns its qualified name."""
        if not name:
            raise PolicyError("role name must be non-empty")
        if arity < 0:
            raise PolicyError("role arity must be non-negative")
        existing = self._role_arity.get(name)
        if existing is not None and existing != arity:
            raise PolicyError(
                f"role {name!r} already defined with arity {existing}")
        self._role_arity[name] = arity
        return RoleName(self.service, name)

    def defines_role(self, name: str) -> bool:
        return name in self._role_arity

    def role_arity(self, name: str) -> int:
        try:
            return self._role_arity[name]
        except KeyError:
            raise UnknownRole(
                f"service {self.service} defines no role {name!r}") from None

    @property
    def role_names(self) -> List[str]:
        return sorted(self._role_arity)

    # -- rules ---------------------------------------------------------------
    def add_activation_rule(self, rule: ActivationRule) -> None:
        """Add an activation rule; its target must be a role of this service."""
        target = rule.target.role_name
        if target.service != self.service:
            raise PolicyError(
                f"activation rule targets {target}, which is not defined by "
                f"{self.service} — services control only their own roles")
        if not self.defines_role(target.name):
            raise UnknownRole(f"role {target.name!r} not defined; call "
                              f"define_role first")
        if rule.target.arity != self.role_arity(target.name):
            raise PolicyError(
                f"rule for {target.name!r} has arity {rule.target.arity}, "
                f"role declared with arity {self.role_arity(target.name)}")
        self._activation_rules.setdefault(target.name, []).append(rule)
        self._dispatch.pop(("activation", target.name), None)

    def add_authorization_rule(self, rule: AuthorizationRule) -> None:
        self._authorization_rules.setdefault(rule.method, []).append(rule)
        self._dispatch.pop(("authorization", rule.method), None)

    def add_appointment_rule(self, rule: AppointmentRule) -> None:
        self._appointment_rules.setdefault(rule.name, []).append(rule)
        self._dispatch.pop(("appointment", rule.name), None)

    def activation_rules_for(self, role_name: str
                             ) -> Tuple[ActivationRule, ...]:
        key = ("activation", role_name)
        cached = self._dispatch.get(key)
        if cached is None:
            if not self.defines_role(role_name):
                raise UnknownRole(
                    f"service {self.service} defines no role {role_name!r}")
            cached = tuple(self._activation_rules.get(role_name, ()))
            self._dispatch[key] = cached
        return cached

    def authorization_rules_for(self, method: str
                                ) -> Tuple[AuthorizationRule, ...]:
        key = ("authorization", method)
        cached = self._dispatch.get(key)
        if cached is None:
            cached = tuple(self._authorization_rules.get(method, ()))
            self._dispatch[key] = cached
        return cached

    def appointment_rules_for(self, name: str) -> Tuple[AppointmentRule, ...]:
        key = ("appointment", name)
        cached = self._dispatch.get(key)
        if cached is None:
            cached = tuple(self._appointment_rules.get(name, ()))
            self._dispatch[key] = cached
        return cached

    @property
    def guarded_methods(self) -> List[str]:
        return sorted(self._authorization_rules)

    @property
    def appointment_names(self) -> List[str]:
        return sorted(self._appointment_rules)

    # -- analysis ------------------------------------------------------------
    def initial_roles(self) -> List[str]:
        """Roles with at least one rule lacking prerequisite roles."""
        return sorted(
            name for name, rules in self._activation_rules.items()
            if any(rule.is_initial for rule in rules))

    def local_prerequisites(self, role_name: str) -> Set[str]:
        """Names of this service's own roles prerequisite to ``role_name``."""
        result: Set[str] = set()
        for rule in self._activation_rules.get(role_name, []):
            for prereq in rule.prerequisite_roles():
                target = prereq.template.role_name
                if target.service == self.service:
                    result.add(target.name)
        return result

    def _find_local_cycle(self) -> Optional[List[str]]:
        """Return a cycle among local prerequisite edges, if any."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in self._role_arity}
        stack: List[str] = []

        def visit(name: str) -> Optional[List[str]]:
            colour[name] = GREY
            stack.append(name)
            for dep in sorted(self.local_prerequisites(name)):
                if colour.get(dep, WHITE) == GREY:
                    return stack[stack.index(dep):] + [dep]
                if colour.get(dep, WHITE) == WHITE:
                    cycle = visit(dep)
                    if cycle is not None:
                        return cycle
            stack.pop()
            colour[name] = BLACK
            return None

        for name in sorted(self._role_arity):
            if colour[name] == WHITE:
                cycle = visit(name)
                if cycle is not None:
                    return cycle
        return None

    def validate(self) -> None:
        """Raise :class:`PolicyError` on any well-formedness violation."""
        for name in self._role_arity:
            if name not in self._activation_rules:
                raise PolicyError(
                    f"role {name!r} declared but has no activation rule — "
                    f"it can never be activated")
        cycle = self._find_local_cycle()
        if cycle is not None:
            raise PolicyError(
                "cyclic local prerequisite chain: " + " -> ".join(cycle))
        needs_initial = any(
            not rule.is_initial
            for rules in self._activation_rules.values() for rule in rules)
        has_cross_service_prereq = any(
            prereq.template.role_name.service != self.service
            for rules in self._activation_rules.values() for rule in rules
            for prereq in rule.prerequisite_roles())
        if needs_initial and not self.initial_roles() \
                and not has_cross_service_prereq:
            raise PolicyError(
                f"service {self.service} has dependent roles but no initial "
                f"role and no cross-service prerequisites — no session could "
                f"ever activate anything here")

    def describe(self) -> str:
        """A human-readable dump of the whole policy."""
        lines = [f"policy of {self.service}"]
        for name in self.role_names:
            lines.append(f"  role {name}/{self.role_arity(name)}")
            for rule in self._activation_rules.get(name, []):
                lines.append(f"    {rule}")
        for method in self.guarded_methods:
            for rule in self._authorization_rules[method]:
                lines.append(f"  {rule}")
        for app in self.appointment_names:
            for rule in self._appointment_rules[app]:
                lines.append(f"  {rule}")
        return "\n".join(lines)
