"""Transport adapter for the callback-validation protocol (Sect. 4).

The state core refactor makes :class:`~repro.core.service.OasisService`
transport-agnostic: the service owns the *logical* protocol (check the
certificate against the credential record, fail closed) while this adapter
owns the *wire* concerns — endpoint naming, registration against a
network, and the remote call itself.  Swapping the simulated network for a
real transport (ROADMAP item 1) means implementing this adapter's three
verbs over sockets; the service does not change.

The adapter deliberately raises the transport's own
:class:`~repro.net.sim.NetworkError` on failure rather than an
access-control exception: translating "issuer unreachable" into "treat the
credential as invalid for this request" is a *policy* decision (fail
closed) that belongs to the service, not the transport.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["VALIDATE_ENDPOINT", "endpoint_name", "ValidationTransport"]

#: Network endpoint suffix under which services expose callback validation.
VALIDATE_ENDPOINT = "oasis.validate"


def endpoint_name(service: Any) -> str:
    """The endpoint a service's validation handler is registered under."""
    return f"{VALIDATE_ENDPOINT}/{service.name}"


class ValidationTransport:
    """Binds one service's validation endpoint to a network.

    ``network`` is anything with the :class:`~repro.net.sim.SimNetwork`
    surface (``register``/``unregister``/``has_endpoint``/``call``).
    """

    __slots__ = ("network",)

    def __init__(self, network: Any) -> None:
        self.network = network

    def bind(self, service_id: Any,
             handler: Callable[..., Any]) -> None:
        """Expose ``handler`` as ``service_id``'s validation endpoint.

        The simulated network treats a duplicate registration as an
        error, so a resumed service must clear the crashed instance's
        stale registration first — ``OasisService.resume`` calls
        :meth:`unbind` before constructing the service that binds here.
        """
        self.network.register(service_id.domain, endpoint_name(service_id),
                              handler)

    def unbind(self, service_id: Any) -> None:
        """Drop ``service_id``'s registration; a no-op when absent."""
        self.network.unregister(service_id.domain, endpoint_name(service_id))

    def reaches(self, issuer: Any) -> bool:
        """Whether ``issuer`` exposes a validation endpoint on this
        network (otherwise callers fall back to the in-process registry)."""
        return self.network.has_endpoint(issuer.domain,
                                         endpoint_name(issuer))

    def validate(self, caller: Any, issuer: Any, certificate: Any,
                 principal_value: str, holder: Any) -> Any:
        """Issue the callback-validation RPC; raises ``NetworkError`` on
        transport failure and whatever the issuer's handler raises on an
        invalid credential."""
        return self.network.call(caller.domain, issuer.domain,
                                 endpoint_name(issuer),
                                 certificate, principal_value, holder)
