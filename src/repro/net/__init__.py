"""Simulated network substrate.

Replaces the paper's physical testbed with a deterministic simulated clock,
discrete-event scheduler and latency-bearing RPC network so that the
engineering benchmarks (callback vs cache, polling vs events) measure
reproducible simulated time and message counts.  See DESIGN.md Sect. 3 for
the substitution rationale.
"""

from .adapter import VALIDATE_ENDPOINT, ValidationTransport, endpoint_name
from .sim import (
    LatencyModel,
    NetworkError,
    NetworkPartitioned,
    NetworkStats,
    Scheduler,
    SimClock,
    SimNetwork,
)

__all__ = [
    "LatencyModel",
    "NetworkError",
    "NetworkPartitioned",
    "NetworkStats",
    "Scheduler",
    "SimClock",
    "SimNetwork",
    "VALIDATE_ENDPOINT",
    "ValidationTransport",
    "endpoint_name",
]
