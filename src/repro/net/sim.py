"""Simulated clock, scheduler and latency-bearing network.

The paper's engineering claims — callback validation cost, cache hit
benefit, revocation staleness under polling vs events (Sect. 4, Fig. 5) —
are about *time* and *message counts*.  Real sockets would make the
benchmarks nondeterministic, so the reproduction runs on a simulated
substrate:

* :class:`SimClock` — a manually advanced clock.
* :class:`Scheduler` — a discrete-event scheduler over a ``SimClock``
  (heartbeats, polling loops, certificate expiry sweeps).
* :class:`LatencyModel` — per-domain-pair one-way latencies with sensible
  defaults (fast intra-domain, slow inter-domain).
* :class:`SimNetwork` — named endpoints and synchronous RPC that advances
  the clock by the round-trip time and counts messages and bytes.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..obs import runtime as _obs_runtime

__all__ = [
    "SimClock",
    "Scheduler",
    "LatencyModel",
    "SimNetwork",
    "NetworkStats",
    "NetworkError",
    "NetworkPartitioned",
]


class NetworkError(RuntimeError):
    """A message could not be delivered."""


class NetworkPartitioned(NetworkError):
    """The source and destination domains are partitioned."""


class SimClock:
    """A monotonic simulated clock, advanced explicitly."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def __call__(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError("cannot advance clock backwards")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        if when < self._now:
            raise ValueError("cannot move clock backwards")
        self._now = when
        return self._now


@dataclass(order=True)
class _ScheduledEvent:
    when: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Scheduler:
    """Discrete-event scheduler driving a :class:`SimClock`.

    Actions scheduled for the same instant run in scheduling order.  An
    action may schedule further actions (periodic heartbeats re-arm
    themselves this way).
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock or SimClock()
        self._heap: List[_ScheduledEvent] = []
        self._seq = itertools.count()

    def schedule(self, delay: float, action: Callable[[], None]
                 ) -> _ScheduledEvent:
        """Run ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        event = _ScheduledEvent(self.clock.now() + delay, next(self._seq),
                                action)
        heapq.heappush(self._heap, event)
        return event

    def schedule_periodic(self, interval: float,
                          action: Callable[[], None]) -> Callable[[], None]:
        """Run ``action`` every ``interval``; returns a cancel function."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        state = {"event": None, "stopped": False}

        def tick() -> None:
            if state["stopped"]:
                return
            action()
            state["event"] = self.schedule(interval, tick)

        state["event"] = self.schedule(interval, tick)

        def cancel() -> None:
            state["stopped"] = True
            event = state["event"]
            if event is not None:
                event.cancelled = True

        return cancel

    @property
    def pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def run_until(self, when: float) -> int:
        """Execute all events due at or before ``when``; returns count run."""
        executed = 0
        while self._heap and self._heap[0].when <= when:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(event.when)
            event.action()
            executed += 1
        self.clock.advance_to(max(self.clock.now(), when))
        return executed

    def run_for(self, duration: float) -> int:
        return self.run_until(self.clock.now() + duration)


class LatencyModel:
    """One-way message latency between administrative domains.

    Defaults mirror a realistic deployment shape: sub-millisecond within a
    domain, tens of milliseconds between domains.  Specific pairs can be
    overridden (a national backbone link, a transatlantic hop).
    """

    def __init__(self, intra_domain: float = 0.0005,
                 inter_domain: float = 0.02) -> None:
        if intra_domain < 0 or inter_domain < 0:
            raise ValueError("latencies must be non-negative")
        self._intra = intra_domain
        self._inter = inter_domain
        self._overrides: Dict[Tuple[str, str], float] = {}

    def set_latency(self, domain_a: str, domain_b: str,
                    latency: float) -> None:
        """Override the latency between a pair of domains (symmetric)."""
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self._overrides[(domain_a, domain_b)] = latency
        self._overrides[(domain_b, domain_a)] = latency

    def one_way(self, src_domain: str, dst_domain: str) -> float:
        override = self._overrides.get((src_domain, dst_domain))
        if override is not None:
            return override
        if src_domain == dst_domain:
            return self._intra
        return self._inter

    def round_trip(self, src_domain: str, dst_domain: str) -> float:
        return 2 * self.one_way(src_domain, dst_domain)


@dataclass
class NetworkStats:
    """Counters accumulated by :class:`SimNetwork`."""

    messages: int = 0
    calls: int = 0
    total_latency: float = 0.0

    def reset(self) -> None:
        self.messages = 0
        self.calls = 0
        self.total_latency = 0.0


class SimNetwork:
    """Named endpoints plus synchronous RPC with simulated latency.

    Endpoints are addressed as ``(domain, name)``.  A call advances the
    shared clock by the round-trip latency of the domain pair and is counted
    in :attr:`stats`; the handler runs at the logical receive instant.
    Handlers may issue nested calls (the Fig. 3 hospital → national EHR
    chain does), which accumulate latency naturally.
    """

    def __init__(self, clock: Optional[SimClock] = None,
                 latency: Optional[LatencyModel] = None,
                 partition_timeout: float = 1.0) -> None:
        self.clock = clock or SimClock()
        self.latency = latency or LatencyModel()
        self.stats = NetworkStats()
        self.partition_timeout = partition_timeout
        self._endpoints: Dict[Tuple[str, str], Callable[..., Any]] = {}
        self._partitions: set = set()
        self._obs = _obs_runtime.pipeline()
        if self._obs is not None:
            self._obs_rpc_calls = self._obs.metrics.counter(
                "oasis_rpc_calls_total",
                help_text="simulated RPC calls, by outcome",
                label_names=("outcome",))

    # -- failure injection -----------------------------------------------------
    def partition(self, domain_a: str, domain_b: str) -> None:
        """Cut the link between two domains (symmetric)."""
        self._partitions.add(frozenset((domain_a, domain_b)))

    def heal(self, domain_a: str, domain_b: str) -> None:
        self._partitions.discard(frozenset((domain_a, domain_b)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def is_partitioned(self, domain_a: str, domain_b: str) -> bool:
        return frozenset((domain_a, domain_b)) in self._partitions

    def register(self, domain: str, name: str,
                 handler: Callable[..., Any]) -> None:
        """Expose ``handler`` at address ``(domain, name)``."""
        key = (domain, name)
        if key in self._endpoints:
            raise ValueError(f"endpoint {domain}/{name} already registered")
        self._endpoints[key] = handler

    def unregister(self, domain: str, name: str) -> None:
        self._endpoints.pop((domain, name), None)

    def has_endpoint(self, domain: str, name: str) -> bool:
        return (domain, name) in self._endpoints

    def call(self, src_domain: str, dst_domain: str, name: str,
             *args: Any, **kwargs: Any) -> Any:
        """Synchronous RPC from ``src_domain`` to endpoint ``name``.

        Advances the clock by one one-way latency before the handler runs
        and another after it returns, and counts two messages.
        """
        if self._obs is not None:
            return self._call_observed(src_domain, dst_domain, name,
                                       *args, **kwargs)
        return self._call(src_domain, dst_domain, name, *args, **kwargs)

    def _call_observed(self, src_domain: str, dst_domain: str, name: str,
                       *args: Any, **kwargs: Any) -> Any:
        span = self._obs.tracer.start_span(
            "rpc.call", timestamp=self.clock.now(),
            src=src_domain, dst=dst_domain, endpoint=name)
        try:
            result = self._call(src_domain, dst_domain, name,
                                *args, **kwargs)
        except NetworkError as failure:
            self._obs_rpc_calls.inc(outcome="failed")
            span.error(str(failure))
            raise
        else:
            self._obs_rpc_calls.inc(outcome="ok")
            return result
        finally:
            span.finish(self.clock.now())

    def _call(self, src_domain: str, dst_domain: str, name: str,
              *args: Any, **kwargs: Any) -> Any:
        handler = self._endpoints.get((dst_domain, name))
        if handler is None:
            raise LookupError(f"no endpoint {dst_domain}/{name}")
        if self.is_partitioned(src_domain, dst_domain):
            # The caller blocks for its timeout before concluding failure.
            self.clock.advance(self.partition_timeout)
            self.stats.messages += 1  # the lost request
            raise NetworkPartitioned(
                f"{src_domain} cannot reach {dst_domain} "
                f"(partition; timed out after {self.partition_timeout}s)")
        one_way = self.latency.one_way(src_domain, dst_domain)
        self.clock.advance(one_way)
        result = handler(*args, **kwargs)
        self.clock.advance(one_way)
        self.stats.calls += 1
        self.stats.messages += 2
        self.stats.total_latency += 2 * one_way
        return result
