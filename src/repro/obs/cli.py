"""Observability CLI: ``python -m repro trace`` / ``python -m repro metrics``.

Both commands build a small demonstration world with the observability
pipeline enabled, run a scenario, and render what the pipeline captured:

* ``trace`` — a depth-N (default 16) Fig. 5 revocation cascade across a
  chain of services, one role per service, each role requiring the
  previous service's role as a membership dependency.  Revoking the root
  credential collapses the whole chain; the command prints the
  reconstructed causal trace tree (text or JSON).
* ``metrics`` — the same cascade plus a granted and a denied activation,
  rendered as Prometheus text or JSON metric families.

This module is the one part of :mod:`repro.obs` that imports the runtime
(:mod:`repro.core`, :mod:`repro.events`) — it *builds worlds*.  The
command-line front end imports it lazily so plain policy tooling never
pays for it; everything else in the package stays import-cycle-free.

The scenario builders double as test fixtures: the depth-16 JSON tree is
snapshot-tested in ``tests/obs/test_cli.py``.
"""

from __future__ import annotations

import argparse
import json
from typing import Tuple

from ..core import (
    ActivationRule,
    OasisService,
    PrerequisiteRole,
    Principal,
    RoleTemplate,
    ServiceId,
    ServicePolicy,
    ServiceRegistry,
    Var,
)
from ..events import EventBroker
from ..net import SimClock
from .export import (
    metrics_to_json_dict,
    render_prometheus,
    render_trace_text,
    trace_to_dict,
)
from .runtime import Observability, observed

__all__ = ["run_chain_cascade", "run_denied_activation",
           "cmd_trace", "cmd_metrics"]


def _build_chain(depth: int, broker: EventBroker, clock: SimClock):
    """A chain of services: svc-i's role requires svc-(i-1)'s (Fig. 1)."""
    registry = ServiceRegistry()
    login_policy = ServicePolicy(ServiceId("dom", "svc-0"))
    root = login_policy.define_role("role", 1)
    login_policy.add_activation_rule(
        ActivationRule(RoleTemplate(root, (Var("u"),))))
    services = [OasisService(login_policy, broker, registry, clock)]
    previous = RoleTemplate(root, (Var("u"),))
    for level in range(1, depth + 1):
        policy = ServicePolicy(ServiceId("dom", f"svc-{level}"))
        role = policy.define_role("role", 1)
        policy.add_activation_rule(ActivationRule(
            RoleTemplate(role, (Var("u"),)),
            (PrerequisiteRole(previous, membership=True),)))
        services.append(OasisService(policy, broker, registry, clock))
        previous = RoleTemplate(role, (Var("u"),))
    return services


def run_chain_cascade(depth: int = 16, indexed_broker: bool = True,
                      cascade_only: bool = True,
                      ) -> Tuple[Observability, str]:
    """Run the demo cascade; returns the pipeline and the cascade's
    trace id.

    With ``cascade_only`` (the default) the tracer is cleared after the
    session build-up, so the surviving trace is exactly the revocation
    cascade — one root ``revoke`` span with ``depth + 1`` nested
    ``cascade.revoke`` spans.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    with observed() as obs:
        clock = SimClock()
        broker = EventBroker(indexed=indexed_broker)
        services = _build_chain(depth, broker, clock)
        principal = Principal("alice")
        session = principal.start_session(services[0], "role", ["alice"])
        rmcs = [session.root_rmc]
        for service in services[1:]:
            clock.advance(0.001)  # one sim-clock tick per hop of build-up
            rmcs.append(session.activate(service, "role"))
        if cascade_only:
            obs.tracer.reset()
        clock.advance(0.001)
        services[0].revoke(rmcs[0].ref, "demo revocation")
    trace_ids = obs.tracer.trace_ids()
    if not trace_ids:
        raise RuntimeError("cascade produced no trace")
    return obs, trace_ids[-1]


def run_denied_activation(obs: Observability) -> None:
    """Drive one granted and one denied activation under ``obs``.

    The denial exercises the explainer: the clerk role requires the
    ``role`` of a login service the principal never activated, so the
    decision names the failing prerequisite condition.
    """
    with observed(obs):
        clock = SimClock()
        broker = EventBroker()
        registry = ServiceRegistry()
        login_policy = ServicePolicy(ServiceId("dom", "login"))
        logged_in = login_policy.define_role("logged_in", 1)
        logged_template = RoleTemplate(logged_in, (Var("u"),))
        login_policy.add_activation_rule(ActivationRule(logged_template))
        login = OasisService(login_policy, broker, registry, clock)

        desk_policy = ServicePolicy(ServiceId("dom", "desk"))
        clerk = desk_policy.define_role("clerk", 1)
        desk_policy.add_activation_rule(ActivationRule(
            RoleTemplate(clerk, (Var("u"),)),
            (PrerequisiteRole(logged_template, membership=True),)))
        desk = OasisService(desk_policy, broker, registry, clock)

        alice = Principal("alice")
        alice.start_session(login, "logged_in", ["alice"])  # granted
        try:
            # Denied: presents no credentials at all.
            desk.activate_role(alice.id, "clerk")
        except Exception:
            pass


def cmd_trace(args: argparse.Namespace) -> int:
    obs, trace_id = run_chain_cascade(
        depth=args.depth, indexed_broker=not args.naive_broker)
    if args.format == "json":
        print(json.dumps(trace_to_dict(obs.tracer, trace_id), indent=2,
                         sort_keys=True))
    else:
        print(render_trace_text(obs.tracer, trace_id))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    obs, _ = run_chain_cascade(depth=args.depth)
    run_denied_activation(obs)
    families = obs.metrics.collect()
    if args.format == "json":
        print(json.dumps(metrics_to_json_dict(families), indent=2,
                         sort_keys=True))
    else:
        print(render_prometheus(families), end="")
    return 0
