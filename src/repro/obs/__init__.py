"""Observability subsystem: causal tracing, metrics, decision explainers.

Three pillars (see ``docs/observability.md``):

* :mod:`repro.obs.tracing` — spans with trace/span/parent ids, stitched
  across services via event attributes into causal trees (Fig. 5
  cascades reconstruct as one tree).
* :mod:`repro.obs.metrics` — process-wide counters/gauges/histograms
  with Prometheus-text and JSON export (:mod:`repro.obs.export`).
* :mod:`repro.obs.explain` — structured :class:`Decision` records for
  every grant/denial/revocation, naming the failing condition.

The pipeline is off by default and near-zero-cost while off; see
:mod:`repro.obs.runtime`.  This package deliberately imports nothing
from :mod:`repro.core` / :mod:`repro.events` (they import *us*); the
scenario-building CLI helpers live in :mod:`repro.obs.cli`, imported
lazily by the command-line front end only.
"""

from .explain import Decision, DecisionLog, RuleAttempt
from .export import (
    metrics_to_json_dict,
    render_prometheus,
    render_trace_text,
    trace_to_dict,
)
from .metrics import (
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .runtime import Observability, disable, enable, observed, pipeline
from .tracing import Span, SpanContext, SpanTree, Tracer

__all__ = [
    "Decision",
    "DecisionLog",
    "RuleAttempt",
    "metrics_to_json_dict",
    "render_prometheus",
    "render_trace_text",
    "trace_to_dict",
    "LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "disable",
    "enable",
    "observed",
    "pipeline",
    "Span",
    "SpanContext",
    "SpanTree",
    "Tracer",
]
