"""The observability pipeline and its process-wide on/off switch.

Design constraint (the PR's acceptance bar): instrumentation must cost
≤3% on the guarded hot paths **when disabled**.  The mechanism:

* The module-level default is ``None`` — no pipeline at all, not a
  no-op object.  Instrumented classes snapshot the pipeline **once, at
  construction** (``self._obs = runtime.pipeline()``), so every hot-path
  guard is a single attribute load plus an ``is None`` branch — no
  global lookup, no virtual no-op call.
* When a pipeline is installed, the same guard routes into the observed
  code path, which may be arbitrarily rich: spans, metrics, decisions.

Snapshot-at-construction has one documented consequence: **enable
observability before building the world you want observed**.  Services,
brokers and engines built while the pipeline was ``None`` stay
uninstrumented (that is exactly what makes them fast); tests and the CLI
use :func:`observed` around world construction.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .explain import DecisionLog
from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = ["Observability", "pipeline", "enable", "disable", "observed"]


def _collect_intern_pools():
    """Export-time gauges over the canonicalizing intern pools.

    Imported lazily: :mod:`repro.obs` must stay importable before (and
    without) the core package, and collectors only run at export time.
    The pools are process-wide, so every pipeline reports the same
    figures — they describe shared resident state, not per-pipeline
    activity.
    """
    from ..core.terms import pool_stats

    samples_entries = []
    samples_hits = []
    samples_misses = []
    for name, stats in pool_stats().items():
        samples_entries.append(({"pool": name}, stats["entries"]))
        samples_hits.append(({"pool": name, "kind": "hits"},
                             stats["hits"]))
        samples_misses.append(({"pool": name, "kind": "misses"},
                               stats["misses"]))
    if not samples_entries:
        return
    yield ("oasis_memory_intern_pool_entries", "gauge",
           "canonical instances resident per intern pool",
           samples_entries)
    yield ("oasis_memory_intern_pool_requests", "counter",
           "intern pool requests, by hit/miss",
           samples_hits + samples_misses)


class Observability:
    """One tracer + one metrics registry + one decision log.

    A *pipeline* bundles the three pillars so instrumented code holds a
    single reference.  Independent pipelines (e.g. per test) are fully
    isolated — ids, metrics and decisions do not bleed across.
    """

    def __init__(self, span_capacity: Optional[int] = 100_000,
                 decision_capacity: Optional[int] = 10_000,
                 trace_id_prefix: str = "") -> None:
        # ``trace_id_prefix`` namespaces span/trace ids, so pipelines in
        # different shard workers mint globally unique ids that a
        # coordinator can merge (see Tracer.adopt and repro.shard).
        self.tracer = Tracer(capacity=span_capacity,
                             id_prefix=trace_id_prefix)
        self.metrics = MetricsRegistry()
        self.decisions = DecisionLog(capacity=decision_capacity)
        self.metrics.register_collector(_collect_intern_pools)

    def reset(self) -> None:
        self.tracer.reset()
        self.metrics.reset()
        self.decisions.reset()
        # metrics.reset() drops collectors; restore the process-wide one.
        self.metrics.register_collector(_collect_intern_pools)


_pipeline: Optional[Observability] = None


def pipeline() -> Optional[Observability]:
    """The installed pipeline, or None when observability is off."""
    return _pipeline


def enable(obs: Optional[Observability] = None) -> Observability:
    """Install (and return) a pipeline; new runtime objects pick it up.

    Objects constructed *before* the call keep their construction-time
    snapshot (usually None) — rebuild them to instrument them.
    """
    global _pipeline
    _pipeline = obs if obs is not None else Observability()
    return _pipeline


def disable() -> None:
    """Remove the pipeline; subsequently built objects run uninstrumented."""
    global _pipeline
    _pipeline = None


@contextmanager
def observed(obs: Optional[Observability] = None
             ) -> Iterator[Observability]:
    """Enable a pipeline for the duration of a ``with`` block.

    The previous pipeline (usually None) is restored on exit; the yielded
    pipeline stays queryable afterwards.  Build the world to observe
    *inside* the block.
    """
    global _pipeline
    previous = _pipeline
    installed = enable(obs)
    try:
        yield installed
    finally:
        _pipeline = previous
