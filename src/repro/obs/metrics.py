"""Process-wide metrics registry: counters, gauges, histograms.

The registry replaces the scatter of hand-rolled dicts (``ServiceStats``,
``broker.stats()``, ``NetworkStats``) with one queryable surface.  Two
integration styles, chosen per call-site cost:

* **direct instruments** for events worth recording individually —
  activation latency observations, cascade width/depth, unification
  steps.  Hot paths pre-:meth:`bind` their label set once so recording is
  one dict-key add.
* **collectors** for state that already lives in cheap counters —
  ``ServiceStats`` fields, broker totals, queue depth.  A collector is a
  callable sampled at *export* time (:meth:`MetricsRegistry.collect`), so
  registering one costs the hot path nothing at all.  This is how the
  pre-existing stats objects "register into" the registry without
  per-increment overhead.

Naming follows Prometheus conventions (``oasis_*`` namespace, ``_total``
suffix on counters); :mod:`repro.obs.export` renders the exposition text
format and a JSON equivalent.
"""

from __future__ import annotations

from typing import (Any, Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "LATENCY_BUCKETS"]

LabelValues = Tuple[Any, ...]

#: Default buckets for sub-millisecond-to-second latencies, in seconds.
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-05, 2.5e-05, 5e-05, 1e-04, 2.5e-04, 5e-04,
    1e-03, 2.5e-03, 5e-03, 1e-02, 2.5e-02, 5e-02,
    0.1, 0.25, 0.5, 1.0,
)


def _label_values(label_names: Tuple[str, ...],
                  labels: Mapping[str, Any]) -> LabelValues:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {label_names}, got {tuple(sorted(labels))}")
    return tuple(labels[name] for name in label_names)


class _Instrument:
    """Shared shape: name, help text, declared label names."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "",
                 label_names: Sequence[str] = ()) -> None:
        if not name:
            raise ValueError("metric name must be non-empty")
        self.name = name
        self.help = help_text
        self.label_names: Tuple[str, ...] = tuple(label_names)


class Counter(_Instrument):
    """A monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_values(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def bind(self, **labels: Any) -> "BoundCounter":
        """Pre-resolve a label set for hot-path increments."""
        return BoundCounter(self._values,
                            _label_values(self.label_names, labels))

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_values(self.label_names, labels), 0.0)

    def samples(self) -> List[Tuple[Dict[str, Any], float]]:
        return [(dict(zip(self.label_names, key)), value)
                for key, value in self._values.items()]


class BoundCounter:
    """A counter pinned to one label set: ``inc`` is a single dict update."""

    __slots__ = ("_values", "_key")

    def __init__(self, values: Dict[LabelValues, float],
                 key: LabelValues) -> None:
        self._values = values
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._values[self._key] = self._values.get(self._key, 0.0) + amount


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, live credentials)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        self._values[_label_values(self.label_names, labels)] = value

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_values(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_values(self.label_names, labels), 0.0)

    def samples(self) -> List[Tuple[Dict[str, Any], float]]:
        return [(dict(zip(self.label_names, key)), value)
                for key, value in self._values.items()]


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets  # cumulative at export only
        self.total = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket histogram (upper bounds; +Inf is implicit).

    Buckets are per-instance fixed at construction — no dynamic resizing,
    no quantile estimation.  ``observe`` is O(buckets) worst case but the
    common case exits at the first bucket that fits.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float],
                 help_text: str = "",
                 label_names: Sequence[str] = ()) -> None:
        super().__init__(name, help_text, label_names)
        bounds = tuple(buckets)
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise ValueError("buckets must be non-empty and increasing")
        self.buckets = bounds
        self._series: Dict[LabelValues, _HistogramSeries] = {}

    def _get_series(self, key: LabelValues) -> _HistogramSeries:
        series = self._series.get(key)
        if series is None:
            series = _HistogramSeries(len(self.buckets) + 1)
            self._series[key] = series
        return series

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_values(self.label_names, labels)
        self._observe(self._get_series(key), value)

    def _observe(self, series: _HistogramSeries, value: float) -> None:
        index = len(self.buckets)
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                index = position
                break
        series.bucket_counts[index] += 1
        series.total += value
        series.count += 1

    def bind(self, **labels: Any) -> "BoundHistogram":
        key = _label_values(self.label_names, labels)
        return BoundHistogram(self, self._get_series(key))

    def snapshot(self, **labels: Any) -> Dict[str, Any]:
        """Cumulative bucket counts plus sum/count for one label set."""
        key = _label_values(self.label_names, labels)
        series = self._series.get(key)
        if series is None:
            return {"buckets": [0] * (len(self.buckets) + 1),
                    "sum": 0.0, "count": 0}
        cumulative, running = [], 0
        for count in series.bucket_counts:
            running += count
            cumulative.append(running)
        return {"buckets": cumulative, "sum": series.total,
                "count": series.count}

    def samples(self) -> List[Tuple[Dict[str, Any], Dict[str, Any]]]:
        out = []
        for key in self._series:
            labels = dict(zip(self.label_names, key))
            out.append((labels, self.snapshot(**labels)))
        return out


class BoundHistogram:
    """A histogram series pinned to one label set."""

    __slots__ = ("_histogram", "_series")

    def __init__(self, histogram: Histogram,
                 series: _HistogramSeries) -> None:
        self._histogram = histogram
        self._series = series

    def observe(self, value: float) -> None:
        self._histogram._observe(self._series, value)


#: A collector yields (instrument-shaped) sample families at export time:
#: ``(name, kind, help, [(labels_dict, value), ...])``.
Collector = Callable[[], Iterable[Tuple[str, str, str,
                                        List[Tuple[Dict[str, Any], Any]]]]]


class MetricsRegistry:
    """Named instruments plus pull-style collectors.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument, so independently
    constructed services share series (distinguished by labels).  A
    name/kind or label mismatch is a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: List[Collector] = []

    def _get_or_create(self, cls: type, name: str, help_text: str,
                       label_names: Sequence[str],
                       **kwargs: Any) -> _Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}")  # type: ignore[attr-defined]
            if existing.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name!r} labels {existing.label_names} != "
                    f"{tuple(label_names)}")
            return existing
        instrument = cls(name, help_text=help_text,
                         label_names=label_names, **kwargs)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, label_names)

    def gauge(self, name: str, help_text: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, label_names)

    def histogram(self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS,
                  help_text: str = "",
                  label_names: Sequence[str] = ()) -> Histogram:
        existing = self._instruments.get(name)
        if isinstance(existing, Histogram) \
                and existing.buckets != tuple(buckets):
            raise ValueError(f"metric {name!r} bucket mismatch")
        return self._get_or_create(Histogram, name, help_text, label_names,
                                   buckets=buckets)  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def register_collector(self, collector: Collector) -> Callable[[], None]:
        """Add a pull-time sample source; returns an unregister function."""
        self._collectors.append(collector)

        def remove() -> None:
            if collector in self._collectors:
                self._collectors.remove(collector)

        return remove

    def collect(self) -> List[Dict[str, Any]]:
        """Sample every instrument and collector into a uniform family list.

        Each family: ``{"name", "type", "help", "samples": [{"labels",
        "value"}]}``; histogram sample values are the
        ``{"buckets", "sum", "count"}`` snapshots.  Families are sorted by
        name so exports are deterministic.
        """
        families: Dict[str, Dict[str, Any]] = {}
        for name, instrument in self._instruments.items():
            families[name] = {
                "name": name,
                "type": instrument.kind,
                "help": instrument.help,
                "samples": [{"labels": labels, "value": value}
                            for labels, value in instrument.samples()],  # type: ignore[attr-defined]
            }
            if isinstance(instrument, Histogram):
                families[name]["buckets"] = list(instrument.buckets)
        for collector in self._collectors:
            for name, kind, help_text, samples in collector():
                family = families.setdefault(
                    name, {"name": name, "type": kind, "help": help_text,
                           "samples": []})
                family["samples"].extend(
                    {"labels": dict(labels), "value": value}
                    for labels, value in samples)
        for family in families.values():
            family["samples"].sort(
                key=lambda s: sorted(s["labels"].items()))
        return [families[name] for name in sorted(families)]

    def reset(self) -> None:
        self._instruments.clear()
        self._collectors.clear()
