"""Causal tracing: spans, trace trees, and cross-service stitching.

The paper's active-security story (Sect. 4, Fig. 5) is a *causal* one: a
credential revocation at one service propagates along role-dependency
edges, across services, until every dependent role has collapsed.  The
``ServiceStats`` counters can say *how many* credentials died; they cannot
say *why this one* died.  Tracing answers that: every interesting runtime
operation (activation, validation callback, revocation, cascade step,
simulated RPC) opens a :class:`Span`; spans carry trace/span/parent ids,
and span context rides on :class:`~repro.events.messages.Event` attributes
so a cascade that hops the event broker between services is stitched into
one :class:`trace tree <Tracer.tree>`.

Ids are deterministic per :class:`Tracer` (``t0001``, ``s0001``, ...) so
simulated runs — the only runs this repro does — produce stable, snapshot-
testable trees.  Timestamps are whatever clock the instrumented layer
uses, which for services and the network is the *simulated* clock: per-hop
timings in a trace are sim-clock durations, exactly the quantity the
Fig. 5 experiments reason about.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, NamedTuple, Optional

__all__ = ["SpanContext", "Span", "SpanTree", "Tracer"]


class SpanContext(NamedTuple):
    """The portable part of a span: enough to parent a remote child.

    This is what crosses process boundaries — in this repro, what rides on
    broker events (``trace_id``/``span_id`` attributes) and what handlers
    pass back to :meth:`Tracer.start_span` as ``parent``.
    """

    trace_id: str
    span_id: str


class Span:
    """One timed operation within a trace.

    ``start``/``end`` are clock readings from whichever clock the
    instrumented layer runs on (services use the sim clock); ``end`` is
    None until :meth:`finish`.  Attributes are free-form key/values set at
    start or via :meth:`set_attr`.
    """

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "start", "end", "attrs", "status")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: str,
                 parent_id: Optional[str], name: str, start: float,
                 attrs: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.status = "ok"

    @property
    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id)

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def error(self, detail: str) -> None:
        """Mark the span failed (does not finish it)."""
        self.status = "error"
        self.attrs["error"] = detail

    def finish(self, timestamp: Optional[float] = None) -> None:
        """Finish the span; idempotent.  Pops it from the tracer's active
        stack if it is there (out-of-order finishes remove, not pop)."""
        if self.end is not None:
            return
        self.end = self.start if timestamp is None else timestamp
        self.tracer._finish(self)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"span={self.span_id}, parent={self.parent_id})")


class SpanTree(NamedTuple):
    """A span plus its (start-ordered) children — one node of a trace tree."""

    span: Span
    children: List["SpanTree"]

    def to_dict(self) -> Dict[str, Any]:
        node = self.span.to_dict()
        node["children"] = [child.to_dict() for child in self.children]
        return node

    def walk(self) -> Iterator["SpanTree"]:
        """Depth-first, parents before children."""
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def depth(self) -> int:
        """Height of this subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth for child in self.children)

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())


class Tracer:
    """Creates spans, tracks the active span stack, stores finished spans.

    * :meth:`start_span` opens a span; with ``activate=True`` it also
      becomes the *current* span — the implicit parent of spans opened
      beneath it (nested activations in a session, the rule engine under
      ``activate_role``).  Explicit ``parent`` contexts override the
      stack, which is how event handlers re-parent themselves onto the
      remote span whose event they are processing.
    * ``capacity`` bounds memory exactly like the access and event logs:
      oldest spans are discarded first.
    * ``id_prefix`` namespaces the generated ids (``w0.t0001`` instead of
      ``t0001``).  Ids are deterministic *per tracer*, so two tracers in
      different worker processes would mint colliding ids; giving each
      worker its shard index as a prefix keeps ids globally unique and a
      coordinator can merge worker spans into one tracer via
      :meth:`adopt` without ambiguity.
    """

    def __init__(self, capacity: Optional[int] = 100_000,
                 id_prefix: str = "") -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._id_prefix = id_prefix
        self._spans: List[Span] = []
        self._stack: List[Span] = []
        self._trace_seq = 0
        self._span_seq = 0
        self.discarded = 0

    # -- span lifecycle ----------------------------------------------------
    def start_span(self, name: str, timestamp: float = 0.0,
                   parent: Optional[SpanContext] = None,
                   activate: bool = True, **attrs: Any) -> Span:
        """Open a span.

        Parent resolution: an explicit ``parent`` context wins; otherwise
        the current active span; otherwise the span roots a new trace.
        """
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif self._stack:
            current = self._stack[-1]
            trace_id = current.trace_id
            parent_id = current.span_id
        else:
            self._trace_seq += 1
            trace_id = f"{self._id_prefix}t{self._trace_seq:04d}"
            parent_id = None
        self._span_seq += 1
        span = Span(self, trace_id, f"{self._id_prefix}s{self._span_seq:04d}",
                    parent_id, name, timestamp, attrs)
        self._spans.append(span)
        if self._capacity is not None and len(self._spans) > self._capacity:
            overflow = len(self._spans) - self._capacity
            del self._spans[:overflow]
            self.discarded += overflow
        if activate:
            self._stack.append(span)
        return span

    def current(self) -> Optional[Span]:
        """The innermost active span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    def current_context(self) -> Optional[SpanContext]:
        span = self.current()
        return span.context if span is not None else None

    def _finish(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, trace_id: Optional[str] = None,
              name: Optional[str] = None) -> List[Span]:
        """Finished or live spans, in start order, optionally filtered."""
        return [span for span in self._spans
                if (trace_id is None or span.trace_id == trace_id)
                and (name is None or span.name == name)]

    def trace_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def tree(self, trace_id: str) -> List[SpanTree]:
        """The trace as a forest of :class:`SpanTree` roots.

        A fully stitched trace has exactly one root; orphans (spans whose
        parent fell out of the capacity window) surface as extra roots
        rather than disappearing.  Children are ordered by start time,
        then by span id (sim-clock ties are common).
        """
        nodes: Dict[str, SpanTree] = {}
        order: List[Span] = []
        for span in self._spans:
            if span.trace_id == trace_id:
                nodes[span.span_id] = SpanTree(span, [])
                order.append(span)
        roots: List[SpanTree] = []
        for span in order:
            node = nodes[span.span_id]
            parent = (nodes.get(span.parent_id)
                      if span.parent_id is not None else None)
            if parent is None:
                roots.append(node)
            else:
                parent.children.append(node)
        key = lambda tree: (tree.span.start, tree.span.span_id)  # noqa: E731
        for node in nodes.values():
            node.children.sort(key=key)
        roots.sort(key=key)
        return roots

    def adopt(self, span_dicts: Iterable[Dict[str, Any]]) -> int:
        """Merge spans exported elsewhere (:meth:`Span.to_dict` payloads).

        This is the coordinator half of cross-process stitching: workers
        export their spans as dicts over a pipe, the coordinator adopts
        them all into one tracer, and :meth:`tree` reconstructs the
        multi-process cascade as a single tree (provided the workers used
        distinct ``id_prefix`` values).  Already-present span ids are
        skipped so repeated exports are idempotent.  Returns the number of
        spans adopted.
        """
        present = {span.span_id for span in self._spans}
        adopted = 0
        for payload in span_dicts:
            if payload["span_id"] in present:
                continue
            span = Span(self, payload["trace_id"], payload["span_id"],
                        payload.get("parent_id"), payload["name"],
                        payload.get("start", 0.0),
                        dict(payload.get("attrs", {})))
            span.end = payload.get("end")
            span.status = payload.get("status", "ok")
            present.add(span.span_id)
            self._spans.append(span)
            adopted += 1
        if self._capacity is not None and len(self._spans) > self._capacity:
            overflow = len(self._spans) - self._capacity
            del self._spans[:overflow]
            self.discarded += overflow
        return adopted

    def reset(self) -> None:
        self._spans.clear()
        self._stack.clear()
        self._trace_seq = 0
        self._span_seq = 0
        self.discarded = 0
