"""Exporters: Prometheus exposition text, JSON, and trace-tree renderers.

Pure functions over the data structures of :mod:`repro.obs.metrics` and
:mod:`repro.obs.tracing` — no I/O, no state.  The CLI (``repro metrics``,
``repro trace``) is a thin shell around these.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping

from .tracing import SpanTree, Tracer

__all__ = ["render_prometheus", "metrics_to_json_dict",
           "trace_to_dict", "render_trace_text"]


def _escape_label_value(value: Any) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _label_text(labels: Mapping[str, Any], extra: str = "") -> str:
    parts = [f'{key}="{_escape_label_value(value)}"'
             for key, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(families: List[Dict[str, Any]]) -> str:
    """Render :meth:`MetricsRegistry.collect` output as exposition text.

    One ``# HELP`` / ``# TYPE`` pair per family; histograms expand into
    ``_bucket`` (cumulative, with ``le`` labels and ``+Inf``), ``_sum``
    and ``_count`` series, per the text-format spec.
    """
    lines: List[str] = []
    for family in families:
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        if family["type"] == "histogram":
            bounds = family.get("buckets", [])
            for sample in family["samples"]:
                labels = sample["labels"]
                snapshot = sample["value"]
                counts = snapshot["buckets"]
                for bound, count in zip(list(bounds) + [math.inf], counts):
                    le = _label_text(
                        labels, f'le="{_format_value(float(bound))}"')
                    lines.append(f"{name}_bucket{le} {count}")
                lines.append(f"{name}_sum{_label_text(labels)} "
                             f"{_format_value(snapshot['sum'])}")
                lines.append(f"{name}_count{_label_text(labels)} "
                             f"{snapshot['count']}")
        else:
            for sample in family["samples"]:
                lines.append(f"{name}{_label_text(sample['labels'])} "
                             f"{_format_value(float(sample['value']))}")
    return "\n".join(lines) + ("\n" if lines else "")


def metrics_to_json_dict(families: List[Dict[str, Any]]) -> Dict[str, Any]:
    """JSON-ready shape for :meth:`MetricsRegistry.collect` output."""
    return {"schema": "oasis-metrics/1", "families": families}


def trace_to_dict(tracer: Tracer, trace_id: str) -> Dict[str, Any]:
    """JSON-ready shape of one trace: its roots as nested span dicts."""
    roots = tracer.tree(trace_id)
    return {
        "schema": "oasis-trace/1",
        "trace_id": trace_id,
        "span_count": sum(root.span_count() for root in roots),
        "roots": [root.to_dict() for root in roots],
    }


def _render_node(node: SpanTree, indent: int, lines: List[str]) -> None:
    span = node.span
    duration = span.duration
    timing = (f" [{span.start:.4f}s +{duration:.4f}s]"
              if duration is not None else f" [{span.start:.4f}s ..]")
    attrs = ""
    if span.attrs:
        rendered = ", ".join(f"{k}={v}" for k, v in span.attrs.items())
        attrs = f"  ({rendered})"
    marker = "" if span.status == "ok" else f" !{span.status}"
    lines.append(f"{'  ' * indent}{span.name}{marker}{timing}{attrs}")
    for child in node.children:
        _render_node(child, indent + 1, lines)


def render_trace_text(tracer: Tracer, trace_id: str) -> str:
    """Indented text rendering of a trace tree (``repro trace`` default)."""
    roots = tracer.tree(trace_id)
    lines = [f"trace {trace_id} "
             f"({sum(root.span_count() for root in roots)} spans)"]
    for root in roots:
        _render_node(root, 1, lines)
    return "\n".join(lines)
