"""Decision explainers: structured records of why access was (not) granted.

"It is vital that doctors who access patient records may be identified
individually" (Sect. 2) — but an audit line saying *denied* is not an
explanation.  A :class:`Decision` captures the full shape of one
access-control outcome: which rules were tried, in what order, and — for
denials — exactly which condition failed and *how* (no matching
credential presented, credentials present but none unify, environmental
constraint false, head parameters left unbound, presented credential
revoked/expired/forged).

Decisions are plain data (no imports from :mod:`repro.core`); the engine
and service layers build them via :class:`RuleAttempt` rows whose fields
are pre-rendered strings.  This keeps the explainer path-independent: the
failing condition is computed by a dedicated canonical-order probe in the
engine (see ``RuleEngine.explain_rule``), not by whichever solver
(``optimized=True/False``) happened to run, so both engine configurations
produce identical explanations by construction — a property the
differential tests pin down.

Failure kinds (``RuleAttempt.failure_kind``):

``no-rule``
    The policy defines no rule for the requested role/method/appointment.
``no-candidates``
    No presented credential has the kind/name/arity the condition needs —
    a credential is *missing*.
``unification``
    Candidates exist but none unifies with the condition's parameter
    pattern under the bindings accumulated so far (wrong parameters).
``constraint``
    An environmental constraint evaluated false under the bindings.
``unbound-parameters``
    The body is satisfiable but leaves head parameters unbound; the
    caller must supply them explicitly.
``head-mismatch``
    The requested parameters do not unify with the rule head (wrong
    arity or conflicting ground values).
``credential-invalid``
    A presented certificate failed validation before any rule ran
    (revoked, expired, bad signature, unreachable issuer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["RuleAttempt", "Decision", "DecisionLog"]


@dataclass(frozen=True)
class RuleAttempt:
    """One rule tried during a decision, with its outcome."""

    rule: str                              # rendered rule text
    outcome: str                           # "matched" | "failed"
    failure_kind: Optional[str] = None     # see module docstring
    failed_condition: Optional[str] = None  # rendered condition text
    detail: Optional[str] = None           # bindings / constraint values

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"rule": self.rule, "outcome": self.outcome}
        if self.failure_kind is not None:
            out["failure_kind"] = self.failure_kind
        if self.failed_condition is not None:
            out["failed_condition"] = self.failed_condition
        if self.detail is not None:
            out["detail"] = self.detail
        return out


@dataclass(frozen=True)
class Decision:
    """One explained access-control outcome.

    ``kind`` mirrors the access-log vocabulary (``activation``,
    ``invocation``, ``appointment``, ``revocation``, ``validation``);
    ``outcome`` is ``granted`` / ``denied`` / ``revoked``.  ``subject`` is
    the role, method, appointment name, or credential ref the decision is
    about.  ``trace_id`` joins the decision to the causal trace active
    when it was made (and through it to :class:`AccessRecord` rows, which
    carry the same id).
    """

    timestamp: float
    kind: str
    outcome: str
    service: str
    principal: str
    subject: str
    rule_attempts: Tuple[RuleAttempt, ...] = ()
    reason: Optional[str] = None
    trace_id: Optional[str] = None
    detail: Tuple[Tuple[str, Any], ...] = field(default=())

    @property
    def failing_attempt(self) -> Optional[RuleAttempt]:
        """The last failed attempt — for a denial, *the* explanation."""
        for attempt in reversed(self.rule_attempts):
            if attempt.outcome == "failed":
                return attempt
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "timestamp": self.timestamp,
            "kind": self.kind,
            "outcome": self.outcome,
            "service": self.service,
            "principal": self.principal,
            "subject": self.subject,
            "reason": self.reason,
            "trace_id": self.trace_id,
            "detail": dict(self.detail),
            "rule_attempts": [a.to_dict() for a in self.rule_attempts],
        }

    def render_text(self) -> str:
        """Multi-line human rendering (the ``repro trace`` text format)."""
        head = (f"[{self.timestamp:.3f}] {self.kind} {self.outcome}: "
                f"{self.principal} -> {self.service}:{self.subject}")
        lines = [head]
        if self.trace_id:
            lines.append(f"  trace: {self.trace_id}")
        if self.reason:
            lines.append(f"  reason: {self.reason}")
        for key, value in self.detail:
            lines.append(f"  {key}: {value}")
        for attempt in self.rule_attempts:
            lines.append(f"  rule {attempt.rule}")
            lines.append(f"    -> {attempt.outcome}"
                         + (f" ({attempt.failure_kind})"
                            if attempt.failure_kind else ""))
            if attempt.failed_condition:
                lines.append(
                    f"    failing condition: {attempt.failed_condition}")
            if attempt.detail:
                lines.append(f"    {attempt.detail}")
        return "\n".join(lines)


class DecisionLog:
    """Capacity-bounded store of decisions with half-open time queries.

    Query semantics match :meth:`repro.core.access_log.AccessLog.query`:
    ``since`` is inclusive, ``until`` exclusive — ``[since, until)`` —
    so adjacent windows tile without overlap.
    """

    def __init__(self, capacity: Optional[int] = 10_000) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._decisions: List[Decision] = []
        self.discarded = 0

    def record(self, decision: Decision) -> None:
        self._decisions.append(decision)
        if self._capacity is not None \
                and len(self._decisions) > self._capacity:
            overflow = len(self._decisions) - self._capacity
            del self._decisions[:overflow]
            self.discarded += overflow

    def __len__(self) -> int:
        return len(self._decisions)

    def query(self, kind: Optional[str] = None,
              outcome: Optional[str] = None,
              service: Optional[str] = None,
              principal: Optional[str] = None,
              subject: Optional[str] = None,
              trace_id: Optional[str] = None,
              since: Optional[float] = None,
              until: Optional[float] = None) -> List[Decision]:
        """Decisions matching every given filter, in record order."""
        results = []
        for decision in self._decisions:
            if kind is not None and decision.kind != kind:
                continue
            if outcome is not None and decision.outcome != outcome:
                continue
            if service is not None and decision.service != service:
                continue
            if principal is not None and decision.principal != principal:
                continue
            if subject is not None and decision.subject != subject:
                continue
            if trace_id is not None and decision.trace_id != trace_id:
                continue
            if since is not None and decision.timestamp < since:
                continue
            if until is not None and decision.timestamp >= until:
                continue
            results.append(decision)
        return results

    def denials(self) -> List[Decision]:
        return [d for d in self._decisions if d.outcome == "denied"]

    def reset(self) -> None:
        self._decisions.clear()
        self.discarded = 0
