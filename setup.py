"""Setup shim for offline editable installs (no `wheel` available)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "OASIS: role-based access control for widely distributed services "
        "(Bacon, Moody & Yao, Middleware 2001) - full reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
