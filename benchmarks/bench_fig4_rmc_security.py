"""FIG4 — RMC design and the Sect. 4.1 security properties (paper Fig. 4).

Measures the certificate machinery itself:

* sign / verify cost of the HMAC construction (with and without a bound
  session key), and of appointment certificates;
* RSA session-key operations (keygen, challenge-response round);
* the security properties as *rates*: over randomized attack attempts —
  tampered fields, forged signatures, stolen certificates presented by the
  wrong principal — the rejection rate must be exactly 100%.

Series in ``benchmarks/results/FIG4.txt``.
"""

import dataclasses
import secrets

import pytest

from repro.core import (
    AppointmentCertificate,
    CredentialRef,
    PrincipalId,
    Role,
    RoleMembershipCertificate,
    RoleName,
    ServiceId,
    SignatureInvalid,
)
from repro.crypto import (
    ChallengeResponseClient,
    ChallengeResponseServer,
    ServiceSecret,
    generate_keypair,
)

from workloads import record_result

SVC = ServiceId("hospital", "records")
SECRET = ServiceSecret.generate()
ROLE = Role(RoleName(SVC, "treating_doctor"), ("d1", "p1"))
REF = CredentialRef(SVC, 1)
ALICE = PrincipalId("alice")


def issue_rmc(bound_key=None):
    return RoleMembershipCertificate.issue(SECRET, SVC, ROLE, REF, ALICE,
                                           0.0, bound_key)


def test_fig4_rmc_sign(benchmark):
    benchmark(issue_rmc)


def test_fig4_rmc_verify(benchmark):
    rmc = issue_rmc()
    benchmark(lambda: rmc.verify(SECRET, ALICE))


def test_fig4_rmc_sign_with_session_key(benchmark):
    keys = generate_keypair(bits=256)
    fingerprint = keys.fingerprint()
    benchmark(lambda: issue_rmc(bound_key=fingerprint))


def test_fig4_appointment_sign(benchmark):
    benchmark(lambda: AppointmentCertificate.issue(
        SECRET, SVC, "allocated", ("d1", "p1"), REF, 0.0, holder="d1"))


def test_fig4_appointment_verify(benchmark):
    cert = AppointmentCertificate.issue(
        SECRET, SVC, "allocated", ("d1", "p1"), REF, 0.0, holder="d1")
    benchmark(lambda: cert.verify(SECRET, "d1"))


def test_fig4_rsa_keygen_512(benchmark):
    benchmark(lambda: generate_keypair(bits=512))


def test_fig4_challenge_response_round(benchmark):
    keys = generate_keypair(bits=512)
    server = ChallengeResponseServer()
    client = ChallengeResponseClient(keys)

    def round_trip():
        issued = server.issue(client.public_key)
        return server.verify(issued.challenge_id, client.respond(issued))

    benchmark(round_trip)


def test_fig4_security_property_rates(benchmark):
    """Randomized attack harness: every attack class must fail, always."""
    trials = 300
    rejected = {"tamper": 0, "forgery": 0, "theft": 0}
    for trial in range(trials):
        owner = PrincipalId(f"owner-{trial}")
        role = Role(RoleName(SVC, "r"),
                    (secrets.token_hex(4), secrets.token_hex(4)))
        rmc = RoleMembershipCertificate.issue(
            SECRET, SVC, role, CredentialRef(SVC, trial), owner, 0.0)

        # tamper: flip a parameter
        tampered = dataclasses.replace(
            rmc, role=Role(role.role_name,
                           (role.parameters[0], secrets.token_hex(4))))
        try:
            tampered.verify(SECRET, owner)
        except SignatureInvalid:
            rejected["tamper"] += 1

        # forgery: sign with a random secret
        forged = RoleMembershipCertificate.issue(
            ServiceSecret.generate(), SVC, role, rmc.ref, owner, 0.0)
        try:
            forged.verify(SECRET, owner)
        except SignatureInvalid:
            rejected["forgery"] += 1

        # theft: present under a different principal id
        thief = PrincipalId(f"thief-{trial}")
        try:
            rmc.verify(SECRET, thief)
        except SignatureInvalid:
            rejected["theft"] += 1

    rows = ["FIG4: security property rejection rates "
            f"({trials} randomized trials each)",
            "attack    rejected  rate"]
    for attack, count in rejected.items():
        rows.append(f"{attack:8s}  {count:8d}  {100 * count / trials:.1f}%")
        assert count == trials, f"{attack} got through!"
    record_result("FIG4", rows)

    rmc = issue_rmc()
    benchmark(lambda: rmc.verify(SECRET, ALICE))
