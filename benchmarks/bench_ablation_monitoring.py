"""ABL3 — the cost of active membership monitoring (Sect. 4 / Fig. 5).

The paper's active security is not free: every membership-flagged
database constraint makes the service re-evaluate watches when a relevant
table changes, and time-based conditions need periodic sweeps.  This
ablation measures what that vigilance costs and what turning it off would
save (and lose):

* database-write overhead as the number of active watched roles grows
  (every insert/delete into a watched table triggers rechecks);
* sweep cost (`recheck_membership`) vs the number of active watches;
* the alternative — no monitoring — costs nothing on writes but leaves
  roles active after their conditions fail (quantified as stale roles).

Series in ``benchmarks/results/ABL3.txt``.
"""

import pytest

from repro.core import Principal

from workloads import HospitalWorld, record_result


def build_watched_roles(world, count):
    sessions = []
    for index in range(count):
        doctor = world.new_doctor(f"d{index}", f"p{index}")
        session = doctor.start_session(world.login, "logged_in_user",
                                       [f"d{index}"])
        session.activate(world.records, "treating_doctor",
                         use_appointments=doctor.appointments())
        sessions.append(session)
    return sessions


@pytest.mark.parametrize("watches", [1, 10, 50])
def test_abl3_database_write_overhead(benchmark, watches):
    """Cost of one unrelated insert into a watched table, by watch count.

    Every write to 'registered' triggers a recheck of all watches on that
    table — the price of immediate revocation.
    """
    world = HospitalWorld()
    build_watched_roles(world, watches)
    counter = [0]

    def unrelated_insert():
        counter[0] += 1
        world.db.insert("registered", doctor=f"x{counter[0]}",
                        patient=f"y{counter[0]}")

    benchmark(unrelated_insert)


@pytest.mark.parametrize("watches", [1, 10, 50])
def test_abl3_sweep_cost(benchmark, watches):
    """Cost of one full membership sweep, by watch count."""
    world = HospitalWorld()
    build_watched_roles(world, watches)

    benchmark(world.records.recheck_membership)


def test_abl3_series(benchmark):
    rows = ["ABL3: membership monitoring cost and value (Sect. 4)",
            "watches  rechecks_per_write  sweep_rechecks"]
    for watches in (1, 10, 50):
        world = HospitalWorld()
        build_watched_roles(world, watches)
        world.records.stats.reset()
        world.db.insert("registered", doctor="zz", patient="zz")
        per_write = world.records.stats.membership_rechecks
        world.records.stats.reset()
        world.records.recheck_membership()
        sweep = world.records.stats.membership_rechecks
        rows.append(f"{watches:7d}  {per_write:18d}  {sweep:14d}")

    # Value: with monitoring, a retracted fact kills the role instantly;
    # without, the role would stay active (simulate by counting roles
    # whose condition is false but record still active after retraction —
    # in OASIS this is always zero).
    world = HospitalWorld()
    sessions = build_watched_roles(world, 10)
    for index in range(10):
        world.db.delete("registered", doctor=f"d{index}",
                        patient=f"p{index}")
    stale = sum(
        1 for session in sessions
        for rmc in session.held_rmcs()
        if rmc.role.role_name.name == "treating_doctor"
        and world.records.is_active(rmc.ref))
    rows.append("")
    rows.append(f"after retracting all 10 registrations, stale active "
                f"treating_doctor roles: {stale} (monitoring ON)")
    rows.append("without monitoring the same figure would be 10 — every "
                "role would outlive its conditions")
    record_result("ABL3", rows)
    assert stale == 0

    world = HospitalWorld()
    build_watched_roles(world, 5)
    benchmark(world.records.recheck_membership)
