"""Vendored pre-sweep (unslotted) core objects — the memory baseline.

The memory-lean sweep put ``__slots__`` on the per-credential hot classes
and moved :class:`CredentialRef`'s lazily-memoized ``qualified`` string and
hash out of a per-instance ``__dict__`` into slots.  This module preserves
the *pre-sweep* representation of exactly the objects a service keeps
resident per live credential, the same way ``seed_engine.py`` preserves the
seed rule solver: the harness builds the identical object graph with both
representations and reports tracemalloc bytes-per-credential for each,
yielding the ``*_unslotted`` baseline the ≥30% improvement criterion is
judged against.

The graph per credential mirrors what ``OasisService`` holds after an
issuance (plus the client's handle): one ref, one signed certificate, one
credential record with a one-edge dependency tuple, one event channel, and
the records/channels dict entries plus a reverse-dependency index entry.
Both builders share a single service-id instance — services were shared
objects before interning too; interning's benefit (survival of pickling
and cross-world duplication) is measured by the workload-level figures,
not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["build_unslotted_state", "build_current_state"]

_SIGNATURE = b"\x00" * 32  # stand-in MAC, same size in both builders


@dataclass(frozen=True, order=True)
class UnslottedServiceId:
    """Pre-sweep ServiceId: instance ``__dict__`` caches the hash."""

    domain: str
    name: str

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.domain, self.name))
            self.__dict__["_hash"] = value
            return value

    def __str__(self) -> str:
        return f"{self.domain}/{self.name}"


@dataclass(frozen=True, order=True)
class UnslottedRoleName:
    """Pre-sweep RoleName: instance ``__dict__`` caches the hash."""

    service: UnslottedServiceId
    name: str

    def __hash__(self) -> int:
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            value = hash((self.service, self.name))
            self.__dict__["_hash"] = value
            return value


@dataclass(frozen=True)
class UnslottedRole:
    """Pre-sweep ground Role (no ``__slots__``)."""

    role_name: UnslottedRoleName
    parameters: Tuple[Any, ...] = ()


@dataclass(frozen=True, order=True)
class UnslottedCredentialRef:
    """Pre-sweep CredentialRef: lazy ``qualified``/hash in ``__dict__``."""

    service: UnslottedServiceId
    serial: int

    @cached_property
    def qualified(self) -> str:
        return f"{self.service}#{self.serial}"

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.service, self.serial))
            self.__dict__["_hash"] = cached
        return cached


@dataclass(frozen=True)
class UnslottedRMC:
    """Pre-sweep RoleMembershipCertificate (no ``__slots__``)."""

    issuer: UnslottedServiceId
    role: UnslottedRole
    ref: UnslottedCredentialRef
    issued_at: float
    bound_key: Optional[str] = None
    signature: bytes = field(default=b"", repr=False)


@dataclass
class UnslottedCredentialRecord:
    """Pre-sweep CredentialRecord (no ``__slots__``)."""

    ref: UnslottedCredentialRef
    kind: str
    principal: Optional[str]
    issued_at: float
    status: str = "active"
    revoked_reason: Optional[str] = None
    revoked_at: Optional[float] = None
    membership_dependencies: Tuple[UnslottedCredentialRef, ...] = ()
    session_id: Optional[str] = None


class UnslottedChannel:
    """Pre-sweep CredentialChannel (plain class, instance ``__dict__``)."""

    def __init__(self, broker: Any, credential_ref: str) -> None:
        self._broker = broker
        self.credential_ref = credential_ref
        self._closed = False


def build_unslotted_state(count: int) -> Dict[str, Any]:
    """Resident state for ``count`` credentials, pre-sweep representation.

    The lazy ``qualified``/hash caches are forced (the service touches both
    on every install), so the measured bytes include the memoization dicts
    exactly as a live pre-sweep service would hold them.
    """
    service = UnslottedServiceId("scale", "svc")
    role_name = UnslottedRoleName(service, "role")
    records: Dict[UnslottedCredentialRef, UnslottedCredentialRecord] = {}
    channels: Dict[UnslottedCredentialRef, UnslottedChannel] = {}
    dependents: Dict[str, Dict[UnslottedCredentialRef, None]] = {}
    held: List[UnslottedRMC] = []
    previous_ref: Optional[UnslottedCredentialRef] = None
    for serial in range(1, count + 1):
        ref = UnslottedCredentialRef(service, serial)
        qualified = ref.qualified
        hash(ref)
        rmc = UnslottedRMC(issuer=service,
                           role=UnslottedRole(role_name, (f"p{serial}",)),
                           ref=ref, issued_at=0.0, signature=_SIGNATURE)
        dependencies = (previous_ref,) if previous_ref is not None else ()
        record = UnslottedCredentialRecord(
            ref=ref, kind="rmc", principal=f"p{serial}", issued_at=0.0,
            membership_dependencies=dependencies,
            session_id=f"s{serial}")
        records[ref] = record
        channels[ref] = UnslottedChannel(None, qualified)
        if previous_ref is not None:
            dependents.setdefault(previous_ref.qualified, {})[ref] = None
        held.append(rmc)
        previous_ref = ref
    return {"records": records, "channels": channels,
            "dependents": dependents, "held": held}


def build_current_state(count: int) -> Dict[str, Any]:
    """The identical resident state with the post-sweep representation.

    Two structural deltas on top of the slotted classes, both part of the
    sweep: event channels are *virtual* (the service builds revocation /
    heartbeat events from the record on demand — nothing channel-shaped
    stays resident), and reverse-dependency buckets are lists until they
    exceed the promotion threshold (here every parent has one dependent,
    the dominant shape in a large world).
    """
    from repro.core.credentials import (CredentialRecord, CredentialRef,
                                        RoleMembershipCertificate)
    from repro.core.types import PrincipalId, Role, RoleName, ServiceId

    service = ServiceId("scale", "svc")
    role_name = RoleName(service, "role")
    records: Dict[CredentialRef, CredentialRecord] = {}
    dependents: Dict[str, List[CredentialRef]] = {}
    held: List[RoleMembershipCertificate] = []
    previous_ref: Optional[CredentialRef] = None
    for serial in range(1, count + 1):
        ref = CredentialRef(service, serial)
        rmc = RoleMembershipCertificate(
            issuer=service, role=Role(role_name, (f"p{serial}",)),
            ref=ref, issued_at=0.0, signature=_SIGNATURE)
        dependencies = (previous_ref,) if previous_ref is not None else ()
        record = CredentialRecord(
            ref=ref, kind="rmc", principal=PrincipalId(f"p{serial}"),
            issued_at=0.0, membership_dependencies=dependencies,
            session_id=f"s{serial}")
        records[ref] = record
        if previous_ref is not None:
            dependents.setdefault(previous_ref.qualified, []).append(ref)
        held.append(rmc)
        previous_ref = ref
    return {"records": records, "dependents": dependents, "held": held}
