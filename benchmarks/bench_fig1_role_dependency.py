"""FIG1 — role dependency through prerequisite roles (paper Fig. 1).

Reconstructs the figure's shape — service C's activation rule requiring
RMCs from services A, B and C — and then stretches it: chains of
prerequisite roles of depth 1..16.  Measures:

* wall-clock cost of activating the deepest role (the engine must match
  the whole prerequisite chain among all held RMCs);
* wall-clock cost of building the entire session;
* the series: activation work (validations performed) as depth grows —
  written to ``benchmarks/results/FIG1.txt``.

Expected shape (the paper gives no numbers): linear growth in depth,
microseconds-to-milliseconds per activation on commodity hardware.
"""

import pytest

from repro.core import (
    ActivationRule,
    OasisService,
    Presentation,
    PrerequisiteRole,
    Principal,
    RoleTemplate,
    ServiceId,
    ServicePolicy,
    ServiceRegistry,
    Var,
)
from repro.events import EventBroker

from workloads import ChainWorld, record_result

DEPTHS = [1, 2, 4, 8, 16]


def make_fig1_abc():
    """The literal figure: C requires RMCs issued by A, B and C itself."""
    broker = EventBroker()
    registry = ServiceRegistry()
    services = {}
    templates = {}
    for name in ("A", "B"):
        policy = ServicePolicy(ServiceId("dom", name))
        role = policy.define_role("member", 1)
        policy.add_activation_rule(
            ActivationRule(RoleTemplate(role, (Var("u"),))))
        services[name] = OasisService(policy, broker, registry)
        templates[name] = RoleTemplate(role, (Var("u"),))
    policy_c = ServicePolicy(ServiceId("dom", "C"))
    basic_c = policy_c.define_role("member", 1)
    policy_c.add_activation_rule(
        ActivationRule(RoleTemplate(basic_c, (Var("u"),))))
    privileged = policy_c.define_role("privileged", 1)
    policy_c.add_activation_rule(ActivationRule(
        RoleTemplate(privileged, (Var("u"),)),
        (PrerequisiteRole(templates["A"], membership=True),
         PrerequisiteRole(templates["B"], membership=True),
         PrerequisiteRole(RoleTemplate(basic_c, (Var("u"),)),
                          membership=True))))
    services["C"] = OasisService(policy_c, broker, registry)
    return services


def test_fig1_literal_three_service_rule(benchmark):
    """Activate C.privileged holding RMCs from A, B and C (Fig. 1 paths).

    The credential list is fixed so each round does identical work.
    """
    services = make_fig1_abc()
    principal = Principal("P")
    session = principal.start_session(services["A"], "member", ["P"])
    session.activate(services["B"], "member", ["P"])
    session.activate(services["C"], "member", ["P"])
    credentials = [Presentation(rmc) for rmc in session.active_rmcs()]

    benchmark(lambda: services["C"].activate_role(
        principal.id, "privileged", None, credentials))


@pytest.mark.parametrize("depth", DEPTHS)
def test_fig1_activate_deepest_role(benchmark, depth):
    """Cost of one activation whose rule sits atop a depth-N chain.

    All chain RMCs are presented; the engine must select the right
    prerequisite among them.
    """
    world = ChainWorld(depth)
    session, rmcs = world.build_session()
    deepest = world.services[-1]
    principal_id = session.principal.id
    credentials = [Presentation(rmc) for rmc in rmcs]

    benchmark(lambda: deepest.activate_role(principal_id, "role", None,
                                            credentials))


@pytest.mark.parametrize("depth", [4, 16])
def test_fig1_build_entire_session(benchmark, depth):
    """Cost of building the whole dependency tree from the initial role."""
    world = ChainWorld(depth)
    counter = [0]

    def build():
        counter[0] += 1
        principal = Principal(f"user-{counter[0]}")
        session = principal.start_session(world.services[0], "role",
                                          [principal.id.value])
        for service in world.services[1:]:
            session.activate(service, "role")

    benchmark.pedantic(build, rounds=10, iterations=1, warmup_rounds=1)


def test_fig1_series(benchmark):
    """Record the depth series: validations and RMCs per full session."""
    rows = ["FIG1: role dependency chains (Fig. 1)",
            "depth  rmcs_issued  validations(local+callback)"]
    for depth in DEPTHS:
        world = ChainWorld(depth)
        world.build_session()
        local = sum(s.stats.validations_local for s in world.services)
        callbacks = sum(s.stats.callbacks_served for s in world.services)
        rmcs = sum(s.stats.rmcs_issued for s in world.services)
        rows.append(f"{depth:5d}  {rmcs:11d}  {local + callbacks:10d}")
    record_result("FIG1", rows)

    world = ChainWorld(4)
    session, rmcs = world.build_session()
    credentials = [Presentation(rmc) for rmc in rmcs]
    benchmark(lambda: world.services[-1].activate_role(
        session.principal.id, "role", None, credentials))
