"""BASE — OASIS vs ACL / flat RBAC / delegation (paper Sect. 1, 2, 7).

The paper's positioning claims, made measurable:

* "RBAC ... is scalable to large numbers of principals.  The detailed
  management of large numbers of access control lists ... is avoided" —
  administrative operations to deploy and maintain the treating-doctor
  policy as doctors x patients grow;
* "pure RBAC associates privileges only with roles, whereas applications
  often require more fine-grained access control.  Parametrised roles
  extend the functionality to meet this need" — RBAC0 needs one role per
  doctor-patient relationship; OASIS needs ONE rule plus data facts;
* offboarding: a departing doctor costs ACL one operation per object,
  RBAC0 one per role assignment, OASIS a single revocation event.

Series in ``benchmarks/results/BASE.txt``.
"""

import pytest

from repro.baselines import AclSystem, DelegationError, DelegationSystem, Rbac0System
from repro.core import Principal

from workloads import HospitalWorld, record_result


def deploy_acl(doctors, patients_per_doctor):
    system = AclSystem()
    for d in range(doctors):
        for p in range(patients_per_doctor):
            obj = f"record-d{d}-p{p}"
            system.create_object(obj)
            system.grant(f"d{d}", obj, "read")
    return system


def deploy_rbac0(doctors, patients_per_doctor):
    system = Rbac0System()
    for d in range(doctors):
        for p in range(patients_per_doctor):
            role = f"treating-d{d}-p{p}"
            system.add_role(role)
            system.assign_user(f"d{d}", role)
            system.grant_permission(role, "read", f"record-d{d}-p{p}")
    return system


def deploy_oasis(doctors, patients_per_doctor):
    """One parametrised rule; relationships are data, not policy."""
    world = HospitalWorld()
    data_ops = 0
    for d in range(doctors):
        for p in range(patients_per_doctor):
            world.db.insert("registered", doctor=f"d{d}",
                            patient=f"p-{d}-{p}")
            data_ops += 1
    return world, data_ops


def test_base_admin_cost_series(benchmark):
    rows = ["BASE: administrative cost to deploy the treating-doctor "
            "policy (doctors x patients)",
            "scale      ACL_admin_ops  RBAC0_admin_ops  RBAC0_roles  "
            "OASIS_policy_rules  OASIS_data_facts"]
    for doctors, patients in ((5, 5), (10, 10), (20, 20)):
        acl = deploy_acl(doctors, patients)
        rbac = deploy_rbac0(doctors, patients)
        world, data_ops = deploy_oasis(doctors, patients)
        # OASIS policy stays constant: one activation rule + one
        # authorization rule, regardless of scale.
        policy_rules = (
            len(world.records.policy.activation_rules_for(
                "treating_doctor"))
            + len(world.records.policy.authorization_rules_for(
                "read_record")))
        rows.append(f"{doctors:3d}x{patients:<3d}    "
                    f"{acl.admin_operations:13d}  "
                    f"{rbac.admin_operations:15d}  "
                    f"{rbac.role_count:11d}  "
                    f"{policy_rules:18d}  {data_ops:16d}")

    # Offboarding: one doctor with 50 patients departs.
    acl = deploy_acl(1, 50)
    rbac = deploy_rbac0(1, 50)
    world, _ = deploy_oasis(1, 50)
    acl_before = acl.admin_operations
    acl.revoke_principal_everywhere("d0")
    rbac_before = rbac.admin_operations
    rbac.remove_user("d0")
    rows.append("")
    rows.append("offboarding one doctor with 50 patients:")
    rows.append(f"ACL ops:   {acl.admin_operations - acl_before}")
    rows.append(f"RBAC0 ops: {rbac.admin_operations - rbac_before}")
    rows.append("OASIS ops: 1 (revoke the login/appointment credential; "
                "the cascade does the rest)")
    record_result("BASE", rows)

    benchmark(lambda: deploy_acl(5, 5))


def test_base_exception_expressiveness(benchmark):
    """'Fred Smith may not access my health record': one data fact in
    OASIS vs per-object surgery in ACL."""
    world = HospitalWorld()
    doctor = world.new_doctor("fred-smith", "joe-bloggs")
    session = doctor.start_session(world.login, "logged_in_user",
                                   ["fred-smith"])
    session.activate(world.records, "treating_doctor",
                     use_appointments=doctor.appointments())
    assert session.invoke(world.records, "read_record", ["joe-bloggs"])
    # The exception is one insert — policy untouched.
    world.db.insert("excluded", patient="joe-bloggs", doctor="fred-smith")
    with pytest.raises(Exception):
        session.invoke(world.records, "read_record", ["joe-bloggs"])

    benchmark(lambda: world.db.exists("excluded", patient="joe-bloggs",
                                      doctor="fred-smith"))


def test_base_check_latency_acl(benchmark):
    system = deploy_acl(20, 20)
    benchmark(lambda: system.check("d10", "record-d10-p10", "read"))


def test_base_check_latency_rbac0(benchmark):
    system = deploy_rbac0(20, 20)
    system.start_session("d10", {f"treating-d10-p{p}" for p in range(20)})
    benchmark(lambda: system.check("d10", "read", "record-d10-p10"))


def test_base_check_latency_oasis(benchmark):
    """OASIS pays more per check (signatures + rules) in exchange for the
    administrative scalability above — the honest trade-off."""
    from repro.core import Presentation

    world = HospitalWorld()
    doctor = world.new_doctor("d1", "p1")
    session = doctor.start_session(world.login, "logged_in_user", ["d1"])
    treating = session.activate(world.records, "treating_doctor",
                                use_appointments=doctor.appointments())
    credentials = [Presentation(session.root_rmc), Presentation(treating)]
    world.records.invoke(doctor.id, "read_record", ["p1"],
                         credentials=credentials)

    benchmark(lambda: world.records.invoke(
        doctor.id, "read_record", ["p1"], credentials=credentials))


def test_base_delegation_vs_appointment(benchmark):
    """RBDM0 forbids what appointment allows; measure the working path."""
    delegation = DelegationSystem()
    delegation.add_role("treating_doctor")
    with pytest.raises(DelegationError):
        delegation.delegate("administrator", "d1", "treating_doctor")

    world = HospitalWorld()
    admin = Principal("administrator")
    admin_session = admin.start_session(world.login, "logged_in_user",
                                        ["administrator"])
    admin_session.activate(world.admin, "administrator",
                           ["administrator"])
    counter = [0]

    def appoint():
        counter[0] += 1
        return admin_session.issue_appointment(
            world.admin, "allocated", [f"d{counter[0]}", "p1"],
            holder=f"d{counter[0]}")

    benchmark(appoint)
