"""The seed (pre-optimization) rule engine, vendored for benchmarking.

``benchmarks/harness.py`` reports the optimized engine's speedup *over the
seed engine*.  The in-tree reference path (``RuleEngine(optimized=False)``)
is no longer that baseline: it shares the rewritten persistent
:class:`Substitution`, cached rule partitions and other fast-path work with
the optimized solver — it exists to check *solution equivalence*, not to
preserve seed performance.  This module snapshots the seed's actual hot
path (commit ``635568b``): the dict-copying ``Substitution`` whose ``bind``
re-validates every binding, and the solver that linearly scans all
presented credentials per condition and slices condition lists per step.

Only the pieces on the activation hot path are vendored; rule, credential
and result dataclasses are shared with the current engine so both engines
build identical outputs and the comparison isolates the solver itself.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.constraints import EvaluationContext
from repro.core.engine import MatchedCondition, PresentedCredential, RuleMatch
from repro.core.exceptions import ActivationDenied, PolicyError
from repro.core.rules import (
    ActivationRule,
    AppointmentCondition,
    Condition,
    ConstraintCondition,
    PrerequisiteRole,
)
from repro.core.terms import Term, Var, _check_term, is_ground
from repro.core.types import Role

__all__ = ["SeedSubstitution", "SeedRuleEngine"]


class SeedSubstitution(Mapping[Var, Term]):
    """The seed's immutable substitution: every ``bind`` copies the whole
    dict and re-validates every binding (the O(n^2) the PR removed)."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Mapping[Var, Term]] = None) -> None:
        self._bindings: Dict[Var, Term] = dict(bindings) if bindings else {}
        for var, value in self._bindings.items():
            if not isinstance(var, Var):
                raise TypeError(f"substitution keys must be Var, got {var!r}")
            _check_term(value)

    def __getitem__(self, var: Var) -> Term:
        return self._bindings[var]

    def __iter__(self) -> Iterator[Var]:
        return iter(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def apply(self, term: Term) -> Term:
        if isinstance(term, Var):
            seen = set()
            current: Term = term
            while isinstance(current, Var) and current in self._bindings:
                if current in seen:
                    raise ValueError(f"cyclic substitution at {current!r}")
                seen.add(current)
                current = self._bindings[current]
            if isinstance(current, tuple):
                return tuple(self.apply(sub) for sub in current)
            return current
        if isinstance(term, tuple):
            return tuple(self.apply(sub) for sub in term)
        return term

    def bind(self, var: Var, value: Term) -> "SeedSubstitution":
        if var in self._bindings:
            raise ValueError(f"variable {var!r} already bound")
        new = dict(self._bindings)
        new[var] = value
        return SeedSubstitution(new)


SEED_EMPTY = SeedSubstitution()


def _occurs(var: Var, term: Term, subst: SeedSubstitution) -> bool:
    term = subst.apply(term)
    if isinstance(term, Var):
        return term == var
    if isinstance(term, tuple):
        return any(_occurs(var, sub, subst) for sub in term)
    return False


def seed_unify(left: Term, right: Term,
               subst: SeedSubstitution = SEED_EMPTY
               ) -> Optional[SeedSubstitution]:
    left = subst.apply(left)
    right = subst.apply(right)

    if isinstance(left, Var):
        if isinstance(right, Var) and right == left:
            return subst
        if _occurs(left, right, subst):
            return None
        return subst.bind(left, right)
    if isinstance(right, Var):
        return seed_unify(right, left, subst)

    if isinstance(left, tuple) and isinstance(right, tuple):
        if len(left) != len(right):
            return None
        current: Optional[SeedSubstitution] = subst
        for sub_left, sub_right in zip(left, right):
            current = seed_unify(sub_left, sub_right, current)
            if current is None:
                return None
        return current

    if isinstance(left, tuple) or isinstance(right, tuple):
        return None

    if type(left) is not type(right):
        if isinstance(left, bool) or isinstance(right, bool):
            return None
        if not (isinstance(left, (int, float))
                and isinstance(right, (int, float))):
            return None
    return subst if left == right else None


def seed_unify_sequences(left: Iterable[Term], right: Iterable[Term],
                         subst: SeedSubstitution = SEED_EMPTY,
                         ) -> Optional[SeedSubstitution]:
    return seed_unify(tuple(left), tuple(right), subst)


class SeedRuleEngine:
    """The seed engine's activation path, verbatim apart from imports."""

    def __init__(self, context: EvaluationContext) -> None:
        self.context = context

    def match_activation(self, rule: ActivationRule,
                         requested_parameters: Optional[Sequence[Term]],
                         credentials: Sequence[PresentedCredential],
                         context: Optional[EvaluationContext] = None,
                         ) -> Optional[Tuple[RuleMatch, Role]]:
        context = context or self.context
        unbound_error: Optional[ActivationDenied] = None
        for match, role in self.enumerate_activations(
                rule, credentials, context, requested_parameters):
            if role is None:
                unbound_error = ActivationDenied(
                    f"rule for {rule.target.role_name} satisfied but leaves "
                    f"parameters unbound; supply them in the activation "
                    f"request")
                continue
            return match, role
        if unbound_error is not None:
            raise unbound_error
        return None

    def enumerate_activations(self, rule: ActivationRule,
                              credentials: Sequence[PresentedCredential],
                              context: Optional[EvaluationContext] = None,
                              requested_parameters:
                              Optional[Sequence[Term]] = None,
                              ) -> Iterator[Tuple[RuleMatch,
                                                  Optional[Role]]]:
        context = context or self.context
        subst = self._bind_head(rule.target.parameters,
                                requested_parameters)
        if subst is None:
            return
        for match in self._solve(rule.conditions, subst, credentials,
                                 context):
            parameters = match.substitution.apply(
                tuple(rule.target.parameters))
            if is_ground(parameters):
                yield match, Role(rule.target.role_name, parameters)
            else:
                yield match, None

    @staticmethod
    def _bind_head(head: Tuple[Term, ...],
                   requested: Optional[Sequence[Term]]
                   ) -> Optional[SeedSubstitution]:
        if requested is None:
            return SEED_EMPTY
        if len(requested) != len(head):
            return None
        subst: Optional[SeedSubstitution] = SEED_EMPTY
        for head_term, requested_term in zip(head, requested):
            if requested_term is None:
                continue
            if not is_ground(requested_term):
                raise PolicyError(
                    f"requested parameter {requested_term!r} is not ground")
            subst = seed_unify(head_term, requested_term, subst)
            if subst is None:
                return None
        return subst

    def _solve(self, conditions: Sequence[Condition],
               subst: SeedSubstitution,
               credentials: Sequence[PresentedCredential],
               context: EvaluationContext) -> Iterator[RuleMatch]:
        credential_conditions = [c for c in conditions
                                 if not isinstance(c, ConstraintCondition)]
        constraint_conditions = [c for c in conditions
                                 if isinstance(c, ConstraintCondition)]
        ordered = credential_conditions + constraint_conditions
        yield from self._solve_ordered(ordered, subst, credentials, context,
                                       [])

    def _solve_ordered(self, conditions: List[Condition],
                       subst: SeedSubstitution,
                       credentials: Sequence[PresentedCredential],
                       context: EvaluationContext,
                       matched: List[MatchedCondition]
                       ) -> Iterator[RuleMatch]:
        if not conditions:
            yield RuleMatch(substitution=subst, matched=tuple(matched))
            return
        condition, rest = conditions[0], conditions[1:]

        if isinstance(condition, ConstraintCondition):
            if condition.constraint.evaluate(subst, context):
                matched.append(MatchedCondition(condition, None))
                yield from self._solve_ordered(rest, subst, credentials,
                                               context, matched)
                matched.pop()
            return

        for credential in credentials:
            if isinstance(condition, PrerequisiteRole):
                if not credential.matches_prerequisite(condition):
                    continue
                pattern = condition.template.parameters
            else:
                assert isinstance(condition, AppointmentCondition)
                if not credential.matches_appointment(condition):
                    continue
                pattern = condition.parameters
            extended = seed_unify_sequences(pattern, credential.parameters(),
                                            subst)
            if extended is None:
                continue
            matched.append(MatchedCondition(condition, credential))
            yield from self._solve_ordered(rest, extended, credentials,
                                           context, matched)
            matched.pop()
