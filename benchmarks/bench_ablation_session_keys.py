"""ABL2 — session-bound vs long-lived credentials (paper Sect. 4.1).

The design decision under ablation: "Session-based role activation is more
secure ... An implementation of long-lived role membership would carry the
same vulnerability to attack as OASIS appointment certificates."

Quantified here as the *theft window*: the time during which a stolen
credential remains exploitable.

* a stolen RMC is worthless immediately (principal-specific, session id);
* a stolen *anonymous* appointment certificate is exploitable until expiry
  or revocation — the window the paper accepts for long-lived credentials;
* a stolen *holder-bound* appointment certificate is worthless (the thief
  is not the holder);
* secret rotation ("re-issued, encrypted with a new server secret") closes
  the anonymous window at the cost of re-issuing live certificates —
  measured below.

Series in ``benchmarks/results/ABL2.txt``.
"""

import pytest

from repro.core import (
    CredentialInvalid,
    Presentation,
    Principal,
    SignatureInvalid,
)

from workloads import HospitalWorld, record_result


def test_abl2_theft_window_series(benchmark):
    rows = ["ABL2: theft windows by credential design (Sect. 4.1)",
            "credential                         thief_succeeds  window"]

    # Stolen RMC: presented by a thief under their own session.
    world = HospitalWorld()
    doctor = world.new_doctor("d1", "p1")
    session = doctor.start_session(world.login, "logged_in_user", ["d1"])
    treating = session.activate(world.records, "treating_doctor",
                                use_appointments=doctor.appointments())
    thief = Principal("thief")
    try:
        world.records.invoke(thief.id, "read_record", ["p1"],
                             credentials=[Presentation(session.root_rmc),
                                          Presentation(treating)])
        stolen_rmc_works = True
    except Exception:
        stolen_rmc_works = False
    rows.append(f"{'RMC (session-bound)':33s}  {str(stolen_rmc_works):14s}"
                f"  zero")

    # Stolen holder-bound appointment.
    certificate = doctor.appointments()[0]
    world.db.insert("registered", doctor="thief", patient="p1")
    thief_session = thief.start_session(world.login, "logged_in_user",
                                        ["thief"])
    try:
        world.records.activate_role(
            thief.id, "treating_doctor", None,
            [Presentation(thief_session.root_rmc),
             Presentation(certificate, holder="d1")])
        bound_works = True
    except SignatureInvalid:
        bound_works = False
    rows.append(f"{'appointment (holder-bound)':33s}  {str(bound_works):14s}"
                f"  zero")

    # Stolen anonymous appointment: exploitable until revoked/rotated.
    admin = Principal("adm")
    admin_session = admin.start_session(world.login, "logged_in_user",
                                        ["adm"])
    admin_session.activate(world.admin, "administrator", ["adm"])
    anonymous = admin_session.issue_appointment(
        world.admin, "allocated", ["thief", "p1"])  # no holder binding
    try:
        world.records.activate_role(
            thief.id, "treating_doctor", None,
            [Presentation(thief_session.root_rmc),
             Presentation(anonymous)])
        anon_works = True
    except Exception:
        anon_works = False
    rows.append(f"{'appointment (anonymous)':33s}  {str(anon_works):14s}"
                f"  until revocation/rotation")

    # Rotation closes the window.
    world.admin.rotate_secret()
    try:
        world.records.activate_role(
            thief.id, "treating_doctor", None,
            [Presentation(thief_session.root_rmc),
             Presentation(anonymous)])
        after_rotation = True
    except CredentialInvalid:
        after_rotation = False
    rows.append(f"{'  ... after secret rotation':33s}  "
                f"{str(after_rotation):14s}  closed")
    record_result("ABL2", rows)

    assert not stolen_rmc_works
    assert not bound_works
    assert anon_works          # the honest cost of anonymity
    assert not after_rotation  # and its mitigation

    benchmark(lambda: world.admin.secret.generation)


def test_abl2_rotation_and_reissue_cost(benchmark):
    """Rotating the secret forces re-issue of live appointments; measure
    re-issuing 100 certificates."""
    world = HospitalWorld()
    admin = Principal("adm")
    admin_session = admin.start_session(world.login, "logged_in_user",
                                        ["adm"])
    admin_session.activate(world.admin, "administrator", ["adm"])
    certificates = [
        admin_session.issue_appointment(world.admin, "allocated",
                                        [f"d{i}", f"p{i}"], holder=f"d{i}")
        for i in range(100)]

    def rotate_and_reissue():
        world.admin.rotate_secret()
        return [world.admin.reissue_appointment(cert)
                for cert in certificates]

    fresh = benchmark(rotate_and_reissue)
    assert len(fresh) == 100


def test_abl2_stolen_rmc_rejection_cost(benchmark):
    """How quickly is a theft attempt rejected (it is the cheap path)."""
    world = HospitalWorld()
    doctor = world.new_doctor("d1", "p1")
    session = doctor.start_session(world.login, "logged_in_user", ["d1"])
    thief = Principal("thief")
    stolen = [Presentation(session.root_rmc)]

    def attempt():
        try:
            world.login.activate_role(thief.id, "logged_in_user",
                                      ["thief"], stolen)
        except Exception:
            return False
        return True

    assert not attempt()
    benchmark(attempt)
