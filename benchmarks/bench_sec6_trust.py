"""SEC6 — audit certificates and the web of trust (paper Sect. 6).

The paper speculates that audit certificates "might form the basis for
interaction between mutually unknown parties" but warns of collusion and
rogue domains, asking for "an approach which will allow a trust
infrastructure to evolve despite Byzantine behaviour by a minority of the
principals".  This experiment quantifies exactly that:

* a population of honest entities builds history through contracted
  encounters; a Byzantine fraction fabricates history via a rogue CIV and
  defaults when trusted;
* sweep the Byzantine fraction and measure decision quality: the
  false-accept rate on Byzantine parties and the false-reject rate on
  honest veterans.

Series in ``benchmarks/results/SEC6.txt``.  Expected shape: with domain
weighting + per-counterparty and per-domain caps, false-accepts stay near
zero for minority Byzantine fractions; honest parties keep transacting.
"""

import pytest

from repro.core import Outcome, TrustEvaluator, TrustPolicy
from repro.domains import (
    CivService,
    RogueCivService,
    RovingEntity,
    negotiate_encounter,
)

from workloads import record_result


def build_population(honest_count, byzantine_count, seed_interactions=6):
    civ = CivService("healthcare-uk", replicas=1)
    rogue = RogueCivService("shady")
    policy = TrustPolicy.with_weights(
        {"healthcare-uk": 1.0, "shady": 0.05},
        default_domain_weight=0.2, threshold=0.6)
    civs = {"healthcare-uk": civ, "shady": rogue}

    honest = []
    for index in range(honest_count):
        entity = RovingEntity(f"honest-{index}", policy, dict(civs))
        for j in range(seed_interactions):
            cert, _ = civ.certify_interaction(
                entity.identity, f"seed-partner-{index}-{j}", "seed",
                Outcome.FULFILLED, Outcome.FULFILLED)
            entity.record(cert)
        honest.append(entity)

    byzantine = []
    for index in range(byzantine_count):
        entity = RovingEntity(f"byz-{index}", policy, dict(civs))
        for cert in rogue.fabricate_history(entity.identity, 30):
            entity.record(cert)
        byzantine.append(entity)
    return civ, rogue, honest, byzantine


def test_sec6_trust_evaluation_cost(benchmark):
    """Wall cost of scoring a 100-certificate history with validation."""
    civ, rogue, honest, _ = build_population(1, 0, seed_interactions=100)
    veteran = honest[0]
    assessor = RovingEntity("assessor", veteran.policy,
                            {"healthcare-uk": civ})

    benchmark(lambda: assessor.assess(veteran))


def test_sec6_encounter_negotiation_cost(benchmark):
    """Wall cost of a full mutual-assessment encounter."""
    civ, rogue, honest, _ = build_population(2, 0)
    a, b = honest[0], honest[1]

    benchmark(lambda: negotiate_encounter(a, b, civ, "bench contract"))


def test_sec6_byzantine_fraction_sweep(benchmark):
    """Decision quality vs Byzantine fraction."""
    rows = ["SEC6: web of trust under Byzantine minorities (Sect. 6)",
            "population 40; Byzantine parties fabricate 30-cert histories "
            "via a rogue CIV (weight 0.05)",
            "byz_frac  false_accept_rate  honest_accept_rate"]
    population = 40
    for fraction in (0.0, 0.1, 0.3, 0.5):
        byz_count = int(population * fraction)
        civ, rogue, honest, byzantine = build_population(
            population - byz_count, byz_count)
        assessor = RovingEntity(
            "assessor",
            TrustPolicy.with_weights({"healthcare-uk": 1.0, "shady": 0.05},
                                     threshold=0.6),
            {"healthcare-uk": civ, "shady": rogue})
        false_accepts = sum(
            1 for entity in byzantine if assessor.assess(entity).accept)
        honest_accepts = sum(
            1 for entity in honest if assessor.assess(entity).accept)
        rows.append(
            f"{fraction:8.1f}  "
            f"{false_accepts / max(1, len(byzantine)):17.2f}  "
            f"{honest_accepts / max(1, len(honest)):18.2f}")
    record_result("SEC6", rows)

    civ, rogue, honest, byzantine = build_population(5, 5)
    assessor = RovingEntity("assessor", honest[0].policy,
                            {"healthcare-uk": civ, "shady": rogue})
    benchmark(lambda: [assessor.assess(entity).accept
                       for entity in byzantine])


def test_sec6_civ_validation_after_failover(benchmark):
    """Availability claim of [10]: validation cost is unchanged after the
    primary fails (a backup serves with complete state)."""
    civ = CivService("healthcare-uk", replicas=2)
    cert, _ = civ.certify_interaction("a", "s", "c", Outcome.FULFILLED,
                                      Outcome.FULFILLED)
    civ.fail_node(0)
    assert civ.validate_audit(cert)

    benchmark(lambda: civ.validate_audit(cert))


def test_sec6_trust_evolves_through_encounters(benchmark):
    """The web evolves: a newcomer earns acceptance through small jobs."""
    civ, rogue, honest, _ = build_population(3, 0)
    lenient = TrustPolicy.with_weights({"healthcare-uk": 1.0},
                                       threshold=0.4)

    def bootstrap():
        newcomer = RovingEntity("newcomer", lenient,
                                {"healthcare-uk": civ})
        partner = RovingEntity("partner", lenient, {"healthcare-uk": civ})
        for round_number in range(5):
            negotiate_encounter(newcomer, partner, civ,
                                f"job {round_number}")
        return honest[0].assess(newcomer).accept

    result = benchmark(bootstrap)
    assert result  # the strict assessor now accepts the newcomer
