"""FIG3 — an OASIS session with cross-domain calls (paper Fig. 3).

Rebuilds the hospital -> national EHR topology on the simulated network
and measures:

* wall-clock cost of one ``request_EHR`` through the gateway;
* the *simulated* latency and message cost of cold vs warm calls (cold
  pays an inter-domain callback to validate the forwarded treating_doctor
  RMC; warm rides the ECR-backed cache);
* a sweep over the number of hospitals sharing the national service.

Series in ``benchmarks/results/FIG3.txt``.  Expected shape: warm calls cost
~0 network messages beyond the request itself; the national service scales
linearly in hospitals with per-hospital state only.
"""

import pytest

from repro.core import (
    ActivationRule,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    Presentation,
    PrerequisiteRole,
    Principal,
    RoleTemplate,
    ServicePolicy,
    Var,
)
from repro.domains import Deployment

from workloads import record_result


def build_world(n_hospitals=1):
    deployment = Deployment()
    national = deployment.create_domain("national-ehr")

    registry_policy = ServicePolicy(national.service_id("registry"))
    registrar = registry_policy.define_role("registrar", 0)
    registry_policy.add_activation_rule(
        ActivationRule(RoleTemplate(registrar)))
    registry_policy.add_appointment_rule(AppointmentRule(
        "accredited_hospital", (Var("h"),),
        (PrerequisiteRole(RoleTemplate(registrar)),)))
    registry = national.add_service(registry_policy)

    national_policy = ServicePolicy(national.service_id("patient-records"))
    hospital_role = national_policy.define_role("hospital", 1)
    national_policy.add_activation_rule(ActivationRule(
        RoleTemplate(hospital_role, (Var("h"),)),
        (AppointmentCondition(registry.id, "accredited_hospital",
                              (Var("h"),), membership=True),)))

    hospitals = []
    for index in range(n_hospitals):
        domain = deployment.create_domain(f"hospital-{index}")
        login_policy = ServicePolicy(domain.service_id("login"))
        logged_in = login_policy.define_role("logged_in_user", 1)
        login_policy.add_activation_rule(
            ActivationRule(RoleTemplate(logged_in, (Var("u"),))))
        login = domain.add_service(login_policy)

        records_policy = ServicePolicy(domain.service_id("records"))
        treating = records_policy.define_role("treating_doctor", 2)
        records_policy.add_activation_rule(ActivationRule(
            RoleTemplate(treating, (Var("d"), Var("p"))),
            (PrerequisiteRole(RoleTemplate(logged_in, (Var("d"),)),
                              membership=True),)))
        records = domain.add_service(records_policy)
        national_policy.add_authorization_rule(AuthorizationRule(
            "request_EHR", (Var("p"),),
            (PrerequisiteRole(RoleTemplate(hospital_role, (Var("h"),))),
             PrerequisiteRole(RoleTemplate(treating,
                                           (Var("d"), Var("p")))))))
        hospitals.append((domain, login, records))

    national_svc = national.add_service(national_policy)
    national_svc.register_method("request_EHR", lambda p: f"EHR[{p}]")

    registrar_session = Principal("registrar").start_session(registry,
                                                             "registrar")
    gateways = []
    for index, (domain, login, records) in enumerate(hospitals):
        accreditation = registrar_session.issue_appointment(
            registry, "accredited_hospital", [f"hospital-{index}"],
            holder=f"gateway-{index}")
        gateway = Principal(f"gateway-{index}")
        gateway.store_appointment(accreditation)
        gw_session = gateway.start_session(
            national_svc, "hospital", use_appointments=[accreditation])

        doctor = Principal(f"dr-{index}")
        doctor_session = doctor.start_session(login, "logged_in_user",
                                              [f"dr-{index}"])
        rmc = doctor_session.activate(records, "treating_doctor",
                                      [f"dr-{index}", f"p-{index}"])
        gateways.append((gateway, gw_session, rmc, f"dr-{index}",
                         f"p-{index}"))
    return deployment, national_svc, gateways


def gateway_call(national_svc, gateway, gw_session, rmc, doctor_id,
                 patient_id):
    return national_svc.invoke(
        gateway.id, "request_EHR", [patient_id],
        credentials=[Presentation(gw_session.root_rmc),
                     Presentation(rmc, on_behalf_of=doctor_id)])


def test_fig3_request_ehr_warm(benchmark):
    deployment, national_svc, gateways = build_world(1)
    gateway, gw_session, rmc, doctor_id, patient_id = gateways[0]
    gateway_call(national_svc, gateway, gw_session, rmc, doctor_id,
                 patient_id)  # warm the cache

    benchmark(lambda: gateway_call(national_svc, gateway, gw_session, rmc,
                                   doctor_id, patient_id))


def test_fig3_full_session_setup(benchmark):
    """Accredit + activate hospital role + doctor session, single hospital."""
    benchmark(lambda: build_world(1))


def test_fig3_series(benchmark):
    rows = ["FIG3: cross-domain EHR session (Fig. 3)"]

    # Cold vs warm network cost for one request_EHR.
    deployment, national_svc, gateways = build_world(1)
    gateway, gw_session, rmc, doctor_id, patient_id = gateways[0]
    stats = deployment.network.stats
    stats.reset()
    t0 = deployment.clock.now()
    gateway_call(national_svc, gateway, gw_session, rmc, doctor_id,
                 patient_id)
    cold = (deployment.clock.now() - t0, stats.messages)
    stats.reset()
    t0 = deployment.clock.now()
    gateway_call(national_svc, gateway, gw_session, rmc, doctor_id,
                 patient_id)
    warm = (deployment.clock.now() - t0, stats.messages)
    rows.append("call   sim_latency_ms  network_messages")
    rows.append(f"cold   {1000 * cold[0]:14.1f}  {cold[1]:16d}")
    rows.append(f"warm   {1000 * warm[0]:14.1f}  {warm[1]:16d}")

    # Hospital sweep: national-service work grows linearly, per-call cost flat.
    rows.append("")
    rows.append("hospitals  total_sim_ms_for_one_call_each  msgs")
    for count in (1, 2, 4, 8):
        deployment, national_svc, gateways = build_world(count)
        deployment.network.stats.reset()
        t0 = deployment.clock.now()
        for gateway, gw_session, rmc, doctor_id, patient_id in gateways:
            gateway_call(national_svc, gateway, gw_session, rmc,
                         doctor_id, patient_id)
        rows.append(f"{count:9d}  {1000 * (deployment.clock.now() - t0):30.1f}"
                    f"  {deployment.network.stats.messages:4d}")
    record_result("FIG3", rows)

    deployment, national_svc, gateways = build_world(1)
    gateway, gw_session, rmc, doctor_id, patient_id = gateways[0]
    benchmark(lambda: gateway_call(national_svc, gateway, gw_session, rmc,
                                   doctor_id, patient_id))
