"""Guard-free baselines for the observability overhead benchmark.

The ≤3% acceptance criterion is about the *disabled* pipeline: with no
pipeline installed, the instrumented classes must cost at most 3% more
than code with no instrumentation at all on the two guarded workloads
(FIG1 depth-16 engine activation, FIG5 depth-16 cascade).  "Disabled vs
disabled" would measure nothing, so this module vendors the pre-
instrumentation bodies of exactly the methods the observability PR
touched on those hot paths:

* :class:`UninstrumentedEngine` — ``match_activation`` without the
  pipeline guard and ``_solve_indexed`` without the step-counter closure
  selection.
* :class:`UninstrumentedService` — ``_audit``, ``revoke``,
  ``_collapse_subtree`` and ``_on_revoked_event`` without guards, span
  context plumbing, or cascade width/depth accounting.

Everything else is inherited, so the comparison isolates the residual
guard cost (attribute loads, ``is None`` branches, the wider cascade
queue tuples).  ``benchmarks/harness.py`` interleaves instrumented and
baseline rounds and compares minimum per-op latency.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.access_log import AccessKind
from repro.core.engine import (
    CredentialIndex,
    MatchedCondition,
    PresentedCredential,
    RuleEngine,
    RuleMatch,
)
from repro.core.constraints import EvaluationContext
from repro.core.credentials import CredentialRecord
from repro.core.exceptions import ActivationDenied
from repro.core.rules import ActivationRule, Condition, ConstraintCondition
from repro.core.service import OasisService
from repro.core.terms import Substitution, Term, unify_sequences
from repro.core.types import Role
from repro.events.messages import Event

__all__ = ["UninstrumentedEngine", "UninstrumentedService"]


class UninstrumentedEngine(RuleEngine):
    """RuleEngine with the pre-instrumentation activation fast path."""

    def match_activation(self, rule: ActivationRule,
                         requested_parameters: Optional[Sequence[Term]],
                         credentials: Sequence[PresentedCredential],
                         context: Optional[EvaluationContext] = None,
                         index: Optional[CredentialIndex] = None,
                         ) -> Optional[Tuple[RuleMatch, Role]]:
        context = context or self.context
        unbound_error: Optional[ActivationDenied] = None
        for match, role in self.enumerate_activations(
                rule, credentials, context, requested_parameters, index):
            if role is None:
                unbound_error = ActivationDenied(
                    f"rule for {rule.target.role_name} satisfied but leaves "
                    f"parameters unbound; supply them in the activation "
                    f"request")
                continue
            return match, role
        if unbound_error is not None:
            raise unbound_error
        return None

    def _solve_indexed(self, ordered: Sequence[Condition],
                       canonical: Sequence[Condition], subst: Substitution,
                       index: CredentialIndex, context: EvaluationContext
                       ) -> Iterator[RuleMatch]:
        total = len(ordered)
        if ordered is canonical:
            slots_for: Sequence[int] = range(total)
        else:
            slot_queues: Dict[int, deque] = defaultdict(deque)
            for position, condition in enumerate(canonical):
                slot_queues[id(condition)].append(position)
            slots_for = [slot_queues[id(c)].popleft() for c in ordered]
        slots: List[Optional[MatchedCondition]] = [None] * total

        def solve(at: int, subst: Substitution) -> Iterator[RuleMatch]:
            if at == total:
                yield RuleMatch(substitution=subst, matched=tuple(slots))
                return
            condition = ordered[at]
            slot = slots_for[at]
            if isinstance(condition, ConstraintCondition):
                if condition.constraint.evaluate(subst, context):
                    slots[slot] = MatchedCondition(condition, None)
                    yield from solve(at + 1, subst)
                return
            pattern = condition.pattern
            for credential in index.candidates(condition):
                extended = unify_sequences(
                    pattern, credential.parameter_values, subst)
                if extended is None:
                    continue
                slots[slot] = MatchedCondition(condition, credential)
                yield from solve(at + 1, extended)

        return solve(0, subst)


class UninstrumentedService(OasisService):
    """OasisService with the pre-instrumentation revocation fast path."""

    def _audit(self, kind: str, principal: str, subject: str,
               detail: Tuple[Any, ...] = (),
               reason: Optional[str] = None,
               trace_id: Optional[str] = None) -> None:
        self.access_log.record(self.clock(), kind, principal, subject,
                               detail, reason)

    def revoke(self, ref, reason: str = "revoked") -> bool:
        record = self._records.get(ref)
        if record is None or not record.revoke(reason, self.clock()):
            return False
        self.stats.revocations += 1
        if self._batched_cascades:
            events = self._collapse_subtree([(record, reason)])
            if events:
                self.broker.publish_batch(events)
            return True
        self._audit(AccessKind.REVOCATION,
                    record.principal.value if record.principal else "-",
                    str(ref), reason=reason)
        self._teardown_watch(ref)
        for subscription in self._dependency_subs.pop(ref, []):
            subscription.cancel()
        self.broker.publish(self._revocation_event(ref, reason))
        return True

    def _collapse_subtree(self,
                          revoked: List[Tuple[CredentialRecord, str]],
                          parent_ctx: Any = None) -> List[Event]:
        events: List[Event] = []
        queue = deque(revoked)
        while queue:
            record, reason = queue.popleft()
            ref = record.ref
            self._audit(AccessKind.REVOCATION,
                        record.principal.value if record.principal else "-",
                        str(ref), reason=reason)
            self._teardown_watch(ref)
            self._unlink_dependencies(record)
            events.append(self._revocation_event(ref, reason))
            dependents = self._dependents.get(ref.qualified)
            if not dependents:
                continue
            dependent_reason = (f"membership dependency {ref} revoked "
                                f"({reason})")
            for dependent_ref in list(dependents):
                dependent = self._records.get(dependent_ref)
                if dependent is None or not dependent.revoke(
                        dependent_reason, self.clock()):
                    continue
                self.stats.revocations += 1
                self.stats.cascade_revocations += 1
                queue.append((dependent, dependent_reason))
        return events

    def _on_revoked_event(self, event: Event) -> None:
        ref_string = event.get("credential_ref")
        if ref_string is None:
            return
        if self._sig_cache.pop(ref_string, None) is not None:
            self.stats.sig_cache_invalidations += 1
        if not self._batched_cascades:
            return
        dependents = self._dependents.get(ref_string)
        if not dependents:
            return
        reason = (f"membership dependency {ref_string} revoked "
                  f"({event.get('reason')})")
        seeds: List[Tuple[CredentialRecord, str]] = []
        for dependent_ref in list(dependents):
            record = self._records.get(dependent_ref)
            if record is None or not record.revoke(reason, self.clock()):
                continue
            self.stats.revocations += 1
            self.stats.cascade_revocations += 1
            seeds.append((record, reason))
        if seeds:
            events = self._collapse_subtree(seeds)
            if events:
                self.broker.publish_batch(events)
