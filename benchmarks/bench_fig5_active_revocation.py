"""FIG5 — active security via an event infrastructure (paper Fig. 5).

The paper's claim: event channels let one service be notified of a change
of state at another "without any requirement for periodic polling", so
roles are deactivated *immediately* when membership conditions break.

This experiment drives the same revocation workload through both designs:

* **event-driven** (OASIS): ECR subscriptions; staleness is zero, message
  cost is one event per actual revocation;
* **polling baseline**: cached validity refreshed every T seconds;
  staleness averages ~T/2, and every poll costs a callback per watched
  credential whether anything changed or not.

Series in ``benchmarks/results/FIG5.txt``: staleness and message cost as
the polling interval sweeps, plus cascade depth cost.  Expected shape:
events win on both axes except when the polling interval is shorter than
the mean time between validations (never in practice).
"""

import pytest

from repro.baselines import PollingValidator
from repro.core import Principal

from workloads import ChainWorld, HospitalWorld, record_result


@pytest.mark.parametrize("depth", [2, 8, 16])
def test_fig5_cascade_revocation_cost(benchmark, depth):
    """Wall cost of revoking a session root: the full cascade collapses."""
    world = ChainWorld(depth)
    sessions = []

    def setup():
        session, rmcs = world.build_session(
            user=f"user-{len(sessions)}")
        sessions.append(session)
        return (session.root_rmc,), {}

    def revoke(root):
        world.services[0].revoke(root.ref, "logout")

    benchmark.pedantic(revoke, setup=setup, rounds=20, iterations=1)


def test_fig5_event_notification_fanout(benchmark):
    """Cost of publishing one revocation event with 100 subscribers on
    distinct channels (only the right one fires)."""
    from repro.events import CREDENTIAL_REVOKED, Event, EventBroker

    broker = EventBroker()
    for index in range(100):
        broker.subscribe(CREDENTIAL_REVOKED, lambda event: None,
                         credential_ref=f"svc#{index}")
    event = Event.make(CREDENTIAL_REVOKED, credential_ref="svc#50",
                       reason="bench")

    benchmark(lambda: broker.publish(event))


def test_fig5_staleness_and_message_cost_series(benchmark):
    """The headline series: events vs polling on the same workload.

    Workload: 20 doctor sessions; every 50 s one login RMC is revoked.
    We measure, over 1000 s, (a) total staleness-seconds during which a
    consumer would still have honoured a dead credential, and (b) messages
    (events or polling callbacks).
    """
    rows = ["FIG5: event-driven vs polling revocation "
            "(20 sessions, 1 revocation / 50 s, horizon 1000 s)",
            "design            staleness_s_total  messages"]

    # --- event-driven: staleness 0 by construction; count events. ---------
    world = HospitalWorld()
    sessions = []
    for index in range(20):
        principal = Principal(f"user-{index}")
        sessions.append(principal.start_session(
            world.login, "logged_in_user", [principal.id.value]))
    world.broker.published_count = 0
    revoked_at = {}
    now = 0.0
    for tick in range(20):
        now += 50.0
        world.clock.advance_to(now)
        session = sessions[tick]
        world.login.revoke(session.root_rmc.ref, "scheduled")
        revoked_at[session.root_rmc.ref] = now
        # The issuer record flips at the same instant -> staleness 0.
    rows.append(f"{'events (OASIS)':16s}  {0.0:17.1f}  "
                f"{world.broker.published_count:8d}")

    # --- polling at several intervals --------------------------------------
    for interval in (5.0, 20.0, 50.0):
        world = HospitalWorld()
        sessions = []
        for index in range(20):
            principal = Principal(f"user-{index}")
            sessions.append(principal.start_session(
                world.login, "logged_in_user", [principal.id.value]))
        validator = PollingValidator(
            world.scheduler, interval=interval,
            lookup=lambda ref: world.registry.lookup(ref.service))
        for session in sessions:
            validator.watch(session.root_rmc.ref)
        validator.start()

        staleness = 0.0
        next_revocation = 50.0
        victim = 0
        pending = {}  # ref -> revocation time
        horizon = 1000.0
        step = 1.0
        while world.clock.now() < horizon:
            target = min(world.clock.now() + step, horizon)
            world.scheduler.run_until(target)
            if world.clock.now() >= next_revocation and victim < 20:
                ref = sessions[victim].root_rmc.ref
                world.login.revoke(ref, "scheduled")
                pending[ref] = world.clock.now()
                victim += 1
                next_revocation += 50.0
            # accumulate staleness for revoked-but-still-cached creds
            for ref, when in list(pending.items()):
                if validator.is_valid(ref):
                    staleness += step
                else:
                    del pending[ref]
        rows.append(f"poll T={interval:5.1f}s    {staleness:17.1f}  "
                    f"{validator.callbacks_made:8d}")

    record_result("FIG5", rows)

    world = ChainWorld(4)
    session, _ = world.build_session()
    benchmark(lambda: world.services[0].is_active(session.root_rmc.ref))


def test_fig5_heartbeat_failure_detection(benchmark):
    """Fig. 5's 'heartbeats or change events': a holder notices a dead
    issuer within one timeout."""
    from repro.events import CredentialChannel, EventBroker, HeartbeatMonitor
    from repro.net import Scheduler, SimClock

    clock = SimClock()
    scheduler = Scheduler(clock)
    broker = EventBroker()
    monitor = HeartbeatMonitor(broker, timeout=5.0, clock=clock)
    channels = []
    for index in range(50):
        channel = CredentialChannel(broker, f"svc#{index}")
        channels.append(channel)
        monitor.watch(channel.credential_ref)
        scheduler.schedule_periodic(2.0, channel.heartbeat)
    scheduler.run_for(10.0)
    assert monitor.silent_credentials() == []

    benchmark(monitor.silent_credentials)
