"""Pre-refactor storeless baselines for the storage-layer overhead bench.

The ≤1.05x acceptance criterion of the storage refactor is about the
*in-memory* backend: the default configuration (no record store attached
— the live dicts are the in-memory backend, every mirror call guarded by
one ``is None`` test) must cost at most 5% more than the pre-refactor
service on the existing activation and cascade workloads.  "Current vs
current" would measure nothing, so this module vendors the pre-refactor
bodies of exactly the methods the storage PR touched on those hot paths,
the same way ``seed_engine.py`` vendors the pre-optimization solver,
``obs_baseline.py`` the pre-instrumentation bodies and
``unslotted_baseline.py`` the pre-sweep representation:

* :meth:`PreStoreService.revoke` / ``_collapse_subtree`` /
  ``_on_revoked_event`` — inline ``publish_batch``, no cascade-journal
  hook, no per-record mirror guard;
* ``_issue_rmc`` — no serial-watermark guard;
* ``_install_record`` — direct dict install instead of the state-core
  ``install`` call;
* ``_validate_remote`` — inline validation-cache write and inline ECR
  subscription pair;
* ``_drop_ecr`` — inline cache pop.

Everything else is inherited (the service still owns the very same dict
objects, aliased from the state core), so the comparison isolates the
residual indirection cost of routing mutations through
``repro.core.state.ServiceState``.  ``benchmarks/harness.py`` interleaves
baseline and current rounds and compares minimum per-op latency.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

from repro.core.access_log import AccessKind
from repro.core.credentials import (
    AppointmentCertificate,
    CredentialRecord,
    CredentialRef,
    RoleMembershipCertificate,
)
from repro.core.engine import RuleMatch
from repro.core.exceptions import CredentialExpired
from repro.core.service import OasisService, Presentation, _MembershipWatch
from repro.core.types import PrincipalId, Role
from repro.events import CREDENTIAL_REISSUED, CREDENTIAL_REVOKED, Event
from repro.obs.tracing import SpanContext


class PreStoreService(OasisService):
    """OasisService with the pre-refactor (store-free) hot-path bodies."""

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        # The baseline is storeless by definition; never consult the
        # OASIS_STORE_BACKEND environment the benchmark runs under.
        kwargs["store"] = None
        super().__init__(*args, **kwargs)

    # -- issuance ------------------------------------------------------
    def _issue_rmc(self, principal: PrincipalId, role: Role,
                   match: RuleMatch, environment: Dict[str, Any],
                   session_id: Optional[str],
                   bound_key: Optional[str]) -> RoleMembershipCertificate:
        ref = self._refs.next()
        now = self.clock()
        rmc = RoleMembershipCertificate.issue(
            self.secret, self.id, role, ref, principal, now, bound_key)
        record = CredentialRecord(
            ref=ref, kind="rmc", principal=principal, issued_at=now,
            membership_dependencies=match.membership_credential_refs(),
            session_id=session_id)
        self._install_record(record, match, environment)
        self.stats.rmcs_issued += 1
        self._audit(AccessKind.ACTIVATION, principal.value,
                    str(role.role_name), detail=role.parameters)
        return rmc

    def _install_record(self, record: CredentialRecord, match: RuleMatch,
                        environment: Dict[str, Any]) -> None:
        ref = record.ref
        self._records[ref] = record
        if self._batched_cascades:
            for dependency in record.membership_dependencies:
                self._link_dependent(dependency.qualified, ref)
        else:
            subs = []
            for dependency in record.membership_dependencies:
                subs.append(self.broker.subscribe(
                    CREDENTIAL_REVOKED,
                    lambda event, dep=ref: self._on_dependency_revoked(
                        dep, event),
                    credential_ref=str(dependency)))
            if subs:
                self._dependency_subs[ref] = subs
        constraints = match.membership_constraints()
        if constraints:
            watch = _MembershipWatch(
                ref=ref, constraints=constraints,
                substitution=match.substitution,
                environment=dict(environment))
            for condition in constraints:
                watch.watched_tables |= \
                    condition.constraint.watched_tables()
            self._watches[ref] = watch

    # -- revocation cascade --------------------------------------------
    def revoke(self, ref: CredentialRef, reason: str = "revoked") -> bool:
        record = self._records.get(ref)
        if record is None or not record.revoke(reason, self.clock()):
            return False
        if self._obs is not None:
            return self._revoke_observed(record, ref, reason)
        self.stats.revocations += 1
        if self._batched_cascades:
            events = self._collapse_subtree([(record, reason)])
            if events:
                self.broker.publish_batch(events)
            return True
        self._audit(AccessKind.REVOCATION,
                    record.principal.value if record.principal else "-",
                    str(ref), reason=reason)
        self._teardown_watch(ref)
        for subscription in self._dependency_subs.pop(ref, []):
            subscription.cancel()
        self.broker.publish(self._revocation_event(ref, reason))
        return True

    def _collapse_subtree(self,
                          revoked: List[Tuple[CredentialRecord, str]],
                          parent_ctx: Optional[SpanContext] = None,
                          ) -> List[Event]:
        if self._obs is not None:
            return self._collapse_subtree_observed(revoked, parent_ctx)
        events: List[Event] = []
        queue = deque(revoked)
        while queue:
            record, reason = queue.popleft()
            ref = record.ref
            self._audit(AccessKind.REVOCATION,
                        record.principal.value if record.principal
                        else "-",
                        str(ref), reason=reason)
            self._teardown_watch(ref)
            self._unlink_dependencies(record)
            events.append(self._revocation_event(ref, reason))
            dependents = self._dependents.get(ref.qualified)
            if not dependents:
                continue
            dependent_reason = (f"membership dependency {ref} revoked "
                                f"({reason})")
            for dependent_ref in list(dependents):
                dependent = self._records.get(dependent_ref)
                if dependent is None or not dependent.revoke(
                        dependent_reason, self.clock()):
                    continue
                self.stats.revocations += 1
                self.stats.cascade_revocations += 1
                queue.append((dependent, dependent_reason))
        return events

    def _on_revoked_event(self, event: Event) -> None:
        ref_string = event.get("credential_ref")
        if ref_string is None:
            return
        if self._sig_cache.pop(ref_string, None) is not None:
            self.stats.sig_cache_invalidations += 1
        if not self._batched_cascades:
            return
        dependents = self._dependents.get(ref_string)
        if not dependents:
            return
        reason = (f"membership dependency {ref_string} revoked "
                  f"({event.get('reason')})")
        seeds: List[Tuple[CredentialRecord, str]] = []
        for dependent_ref in list(dependents):
            record = self._records.get(dependent_ref)
            if record is None or not record.revoke(reason, self.clock()):
                continue
            self.stats.revocations += 1
            self.stats.cascade_revocations += 1
            seeds.append((record, reason))
        if seeds:
            parent_ctx: Optional[SpanContext] = None
            if self._obs is not None:
                trace_id = event.get("trace_id")
                span_id = event.get("span_id")
                if trace_id is not None and span_id is not None:
                    parent_ctx = SpanContext(trace_id, span_id)
            events = self._collapse_subtree(seeds, parent_ctx)
            if events:
                self.broker.publish_batch(events)

    # -- validation cache / ECR ----------------------------------------
    def _validate_remote(self, principal: PrincipalId,
                         presentation: "Presentation") -> None:
        certificate = presentation.certificate
        ref = certificate.ref
        requester = self._rmc_binding(principal, presentation)
        cache_key = (requester, presentation.holder)
        cached_entries = self._validation_cache.get(ref)
        if self.cache_validations and cached_entries is not None \
                and cache_key in cached_entries \
                and not self._heartbeat_silent(ref):
            if isinstance(certificate, AppointmentCertificate) \
                    and certificate.is_expired(self.clock()):
                raise CredentialExpired(f"appointment {ref} expired")
            self.stats.cache_hits += 1
            return
        self._callback_validate(certificate, requester,
                                presentation.holder)
        if self.cache_validations:
            self._validation_cache.setdefault(ref, {})[cache_key] = True
            if self._heartbeats is not None:
                self._heartbeats.unwatch(str(ref))
                self._heartbeats.watch(str(ref))
            if ref not in self._ecr_subs:
                self._ecr_subs[ref] = [
                    self.broker.subscribe(
                        CREDENTIAL_REVOKED,
                        lambda event, r=ref: self._drop_ecr(
                            r, final=True),
                        credential_ref=str(ref)),
                    self.broker.subscribe(
                        CREDENTIAL_REISSUED,
                        lambda event, r=ref: self._drop_ecr(
                            r, final=False),
                        credential_ref=str(ref)),
                ]

    def _drop_ecr(self, ref: CredentialRef, final: bool) -> None:
        stale = self._validation_cache.pop(ref, None)
        if stale:
            self.stats.cache_invalidations += len(stale)
        if final:
            for sub in self._ecr_subs.pop(ref, []):
                sub.cancel()
