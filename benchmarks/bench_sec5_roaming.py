"""SEC5 — mutually-aware domains: roaming, group membership, anonymity.

Two workloads from Sect. 5 of the paper:

* **SEC5A, visiting doctor** — activation of ``visiting_doctor`` at the
  research institute on the strength of a home-domain appointment
  certificate, validated by cross-domain callback.  Measures cold vs warm
  (cached) activation and the network cost.
* **SEC5B, group membership + anonymity** — anonymous membership-card
  activation (the Tate friend / genetic clinic shape): throughput of
  anonymous appointment validation plus the expiry-constraint check.

Series in ``benchmarks/results/SEC5.txt``.
"""

import pytest

from repro.core import (
    ActivationRule,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    BeforeDeadlineConstraint,
    ConstraintCondition,
    Presentation,
    PrerequisiteRole,
    Principal,
    RoleTemplate,
    ServicePolicy,
    Var,
)
from repro.domains import Deployment, ServiceLevelAgreement, SlaTerm

from workloads import record_result


def build_roaming_world():
    deployment = Deployment()
    hospital = deployment.create_domain("hospital")
    institute = deployment.create_domain("institute")

    hr_policy = ServicePolicy(hospital.service_id("hr"))
    officer = hr_policy.define_role("hr_officer", 0)
    hr_policy.add_activation_rule(ActivationRule(RoleTemplate(officer)))
    hr_policy.add_appointment_rule(AppointmentRule(
        "employed_as_doctor", (Var("d"), Var("h")),
        (PrerequisiteRole(RoleTemplate(officer)),)))
    hr = hospital.add_service(hr_policy)

    lab_policy = ServicePolicy(institute.service_id("lab"))
    lab = institute.add_service(lab_policy)
    ServiceLevelAgreement(
        lab.id, hr.id,
        [SlaTerm("visiting_doctor", (Var("d"),),
                 AppointmentCondition(hr.id, "employed_as_doctor",
                                      (Var("d"), Var("h")),
                                      membership=True))]).install(lab)

    hr_session = Principal("hr-officer").start_session(hr, "hr_officer")
    return deployment, hr, lab, hr_session


def issue_employment(hr_session, hr, doctor_id):
    return hr_session.issue_appointment(
        hr, "employed_as_doctor", [doctor_id, "addenbrookes"],
        holder=doctor_id)


def test_sec5a_visiting_doctor_activation_cold(benchmark):
    """First activation: cross-domain callback to validate the
    appointment.  Fresh certificate per round so the cache never helps."""
    deployment, hr, lab, hr_session = build_roaming_world()
    counter = [0]

    def setup():
        counter[0] += 1
        doctor_id = f"dr-{counter[0]}"
        certificate = issue_employment(hr_session, hr, doctor_id)
        doctor = Principal(doctor_id)
        return (doctor, certificate), {}

    def activate(doctor, certificate):
        lab.activate_role(
            doctor.id, "visiting_doctor", None,
            [Presentation(certificate, holder=certificate.holder)])

    benchmark.pedantic(activate, setup=setup, rounds=50, iterations=1)


def test_sec5a_visiting_doctor_activation_warm(benchmark):
    """Re-activation with the appointment's validation cached."""
    deployment, hr, lab, hr_session = build_roaming_world()
    certificate = issue_employment(hr_session, hr, "dr-warm")
    doctor = Principal("dr-warm")
    credentials = [Presentation(certificate, holder="dr-warm")]
    lab.activate_role(doctor.id, "visiting_doctor", None, credentials)

    benchmark(lambda: lab.activate_role(
        doctor.id, "visiting_doctor", None, credentials))


def build_gallery_world():
    deployment = Deployment()
    tate = deployment.create_domain("tate")
    membership_policy = ServicePolicy(tate.service_id("membership"))
    desk = membership_policy.define_role("membership_desk", 0)
    membership_policy.add_activation_rule(ActivationRule(RoleTemplate(desk)))
    membership_policy.add_appointment_rule(AppointmentRule(
        "friend_of_the_tate", (Var("expiry"),),
        (PrerequisiteRole(RoleTemplate(desk)),)))
    membership = tate.add_service(membership_policy)

    gallery_policy = ServicePolicy(tate.service_id("london"))
    friend = gallery_policy.define_role("friend", 0)
    gallery_policy.add_activation_rule(ActivationRule(
        RoleTemplate(friend),
        (AppointmentCondition(membership.id, "friend_of_the_tate",
                              (Var("e"),), membership=True),
         ConstraintCondition(BeforeDeadlineConstraint(Var("e"))))))
    gallery = tate.add_service(gallery_policy)

    desk_session = Principal("staff").start_session(membership,
                                                    "membership_desk")
    card = desk_session.issue_appointment(membership,
                                          "friend_of_the_tate", [1e9])
    return deployment, membership, gallery, card


def test_sec5b_anonymous_membership_activation(benchmark):
    """Anonymous card -> friend role, with the expiry constraint."""
    deployment, membership, gallery, card = build_gallery_world()
    visitor = Principal("anonymous")
    credentials = [Presentation(card)]
    gallery.activate_role(visitor.id, "friend", None, credentials)  # warm

    benchmark(lambda: gallery.activate_role(visitor.id, "friend", None,
                                            credentials))


def test_sec5_series(benchmark):
    rows = ["SEC5: roaming and anonymity (Sect. 5)"]

    # SEC5A network cost: cold activation pays one inter-domain round
    # trip; warm pays none.
    deployment, hr, lab, hr_session = build_roaming_world()
    certificate = issue_employment(hr_session, hr, "dr-net")
    doctor = Principal("dr-net")
    credentials = [Presentation(certificate, holder="dr-net")]
    stats = deployment.network.stats
    stats.reset()
    t0 = deployment.clock.now()
    lab.activate_role(doctor.id, "visiting_doctor", None, credentials)
    cold = (deployment.clock.now() - t0, stats.messages)
    stats.reset()
    t0 = deployment.clock.now()
    lab.activate_role(doctor.id, "visiting_doctor", None, credentials)
    warm = (deployment.clock.now() - t0, stats.messages)
    rows.append("SEC5A visiting doctor   sim_latency_ms  messages")
    rows.append(f"cold (callback)         {1000 * cold[0]:14.1f}  "
                f"{cold[1]:8d}")
    rows.append(f"warm (ECR cache)        {1000 * warm[0]:14.1f}  "
                f"{warm[1]:8d}")

    # SEC5A revocation reach: employment revoked at home -> visiting role
    # dies at the institute (count the events it took).
    visit_ref = None
    for record in lab.active_credentials():
        visit_ref = record.ref
    events_before = deployment.broker.published_count
    hr.revoke(certificate.ref, "terminated")
    rows.append(f"revocation events to collapse visiting role: "
                f"{deployment.broker.published_count - events_before} "
                f"(role active after: {lab.is_active(visit_ref)})")

    # SEC5B anonymity: validation callbacks identify only the card.
    deployment, membership, gallery, card = build_gallery_world()
    visitor = Principal("anon")
    gallery.activate_role(visitor.id, "friend", None,
                          [Presentation(card)])
    rows.append("")
    rows.append(f"SEC5B anonymous card: holder={card.holder!r}, "
                f"issuer callbacks seen="
                f"{membership.stats.callbacks_served}")
    record_result("SEC5", rows)

    benchmark(lambda: gallery.activate_role(
        visitor.id, "friend", None, [Presentation(card)]))
