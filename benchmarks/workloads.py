"""Shared workload builders and result recording for the benchmark harness.

Every ``bench_*.py`` module regenerates one experiment from DESIGN.md's
index.  Experiments report two kinds of numbers:

* **wall-clock micro-benchmarks** via pytest-benchmark (the usual table);
* **experiment series** — simulated time, message counts, admin operations,
  decision quality — written as small text tables to
  ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence

from repro.core import (
    ActivationRule,
    AppointmentCondition,
    AppointmentRule,
    AuthorizationRule,
    ConstraintCondition,
    DatabaseLookupConstraint,
    OasisService,
    PrerequisiteRole,
    Presentation,
    Principal,
    PrincipalId,
    Role,
    RoleTemplate,
    ServiceId,
    ServicePolicy,
    ServiceRegistry,
    Var,
)
from repro.db import Database
from repro.events import EventBroker
from repro.net import Scheduler, SimClock

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_result(experiment: str, lines: Sequence[str]) -> None:
    """Write an experiment's series table to benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")


class HospitalWorld:
    """The conftest hospital, rebuilt standalone for benchmarks."""

    def __init__(self, cache_validations: bool = True) -> None:
        self.clock = SimClock()
        self.scheduler = Scheduler(self.clock)
        self.broker = EventBroker()
        self.registry = ServiceRegistry()
        self.db = Database("hospital-db")
        self.db.create_table("registered", ["doctor", "patient"])
        self.db.create_table("excluded", ["patient", "doctor"])

        login_policy = ServicePolicy(ServiceId("hospital", "login"))
        self.logged_in = login_policy.define_role("logged_in_user", 1)
        login_policy.add_activation_rule(
            ActivationRule(RoleTemplate(self.logged_in, (Var("u"),))))
        self.login = OasisService(login_policy, self.broker, self.registry,
                                  self.clock,
                                  cache_validations=cache_validations)

        admin_policy = ServicePolicy(ServiceId("hospital", "admin"))
        administrator = admin_policy.define_role("administrator", 1)
        admin_policy.add_activation_rule(ActivationRule(
            RoleTemplate(administrator, (Var("u"),)),
            (PrerequisiteRole(RoleTemplate(self.logged_in, (Var("u"),)),
                              membership=True),)))
        admin_policy.add_appointment_rule(AppointmentRule(
            "allocated", (Var("d"), Var("p")),
            (PrerequisiteRole(RoleTemplate(administrator, (Var("a"),))),)))
        self.admin = OasisService(admin_policy, self.broker, self.registry,
                                  self.clock,
                                  cache_validations=cache_validations)

        records_policy = ServicePolicy(ServiceId("hospital", "records"))
        treating = records_policy.define_role("treating_doctor", 2)
        records_policy.add_activation_rule(ActivationRule(
            RoleTemplate(treating, (Var("d"), Var("p"))),
            (PrerequisiteRole(RoleTemplate(self.logged_in, (Var("d"),)),
                              membership=True),
             AppointmentCondition(self.admin.id, "allocated",
                                  (Var("d"), Var("p")), membership=True),
             ConstraintCondition(DatabaseLookupConstraint.exists(
                 "main", "registered", doctor=Var("d"), patient=Var("p")),
                 membership=True))))
        records_policy.add_authorization_rule(AuthorizationRule(
            "read_record", (Var("p"),),
            (PrerequisiteRole(RoleTemplate(treating,
                                           (Var("d"), Var("p")))),
             ConstraintCondition(DatabaseLookupConstraint.not_exists(
                 "main", "excluded", patient=Var("p"), doctor=Var("d"))))))
        self.records = OasisService(records_policy, self.broker,
                                    self.registry, self.clock,
                                    databases={"main": self.db},
                                    cache_validations=cache_validations)
        self.records.register_method("read_record",
                                     lambda pat: f"EHR[{pat}]")

    def new_doctor(self, doctor_id: str, patient_id: str) -> Principal:
        self.db.insert("registered", doctor=doctor_id, patient=patient_id)
        admin_principal = Principal(f"admin-of-{doctor_id}")
        session = admin_principal.start_session(
            self.login, "logged_in_user", [admin_principal.id.value])
        session.activate(self.admin, "administrator",
                         [admin_principal.id.value])
        certificate = session.issue_appointment(
            self.admin, "allocated", [doctor_id, patient_id],
            holder=doctor_id)
        doctor = Principal(doctor_id)
        doctor.store_appointment(certificate)
        return doctor


class ChainWorld:
    """A chain of services: svc-i's role requires svc-(i-1)'s (Fig. 1).

    ``indexed_broker`` / ``batched_cascades`` select the optimized event
    dispatch and cascade paths (both default on); turning both off rebuilds
    the pre-optimization reference configuration for before/after numbers.
    """

    def __init__(self, depth: int,
                 cache_validations: bool = True,
                 indexed_broker: bool = True,
                 batched_cascades: bool = True,
                 service_cls: type = OasisService,
                 store_factory: Optional[Callable[[], object]] = None
                 ) -> None:
        self.clock = SimClock()
        self.broker = EventBroker(indexed=indexed_broker)
        self.registry = ServiceRegistry()
        self.depth = depth
        # ``store_factory`` hands each service its own record store (the
        # persistence benchmarks compare backends); ``None`` keeps the
        # default behaviour (OASIS_STORE_BACKEND / storeless).
        extra: Dict[str, object] = {}
        if store_factory is not None:
            extra = {"store": store_factory()}

        login_policy = ServicePolicy(ServiceId("dom", "svc-0"))
        root = login_policy.define_role("role", 1)
        login_policy.add_activation_rule(
            ActivationRule(RoleTemplate(root, (Var("u"),))))
        self.services: List[OasisService] = [
            service_cls(login_policy, self.broker, self.registry,
                        self.clock, cache_validations=cache_validations,
                        batched_cascades=batched_cascades, **extra)]
        previous = RoleTemplate(root, (Var("u"),))
        for level in range(1, depth + 1):
            if store_factory is not None:
                extra = {"store": store_factory()}
            policy = ServicePolicy(ServiceId("dom", f"svc-{level}"))
            role = policy.define_role("role", 1)
            policy.add_activation_rule(ActivationRule(
                RoleTemplate(role, (Var("u"),)),
                (PrerequisiteRole(previous, membership=True),)))
            self.services.append(
                service_cls(policy, self.broker, self.registry, self.clock,
                            cache_validations=cache_validations,
                            batched_cascades=batched_cascades, **extra))
            previous = RoleTemplate(role, (Var("u"),))

    def build_session(self, user: str = "user"):
        principal = Principal(user)
        session = principal.start_session(self.services[0], "role", [user])
        rmcs = [session.root_rmc]
        for service in self.services[1:]:
            rmcs.append(session.activate(service, "role"))
        return session, rmcs


class FanoutWorld:
    """Fig. 5 fan-out: one root service, one leaf service whose role takes
    the root role as a membership dependency.

    :meth:`new_tree` activates one root credential plus ``fanout`` leaf
    credentials that all hang off it — revoking the root must collapse
    exactly that subtree.  Trees for distinct users are fully unrelated, so
    keeping many of them live measures whether per-revocation cost depends
    on the amount of unrelated live state.
    """

    def __init__(self, cache_validations: bool = True,
                 indexed_broker: bool = True,
                 batched_cascades: bool = True) -> None:
        self.clock = SimClock()
        self.broker = EventBroker(indexed=indexed_broker)
        self.registry = ServiceRegistry()

        root_policy = ServicePolicy(ServiceId("dom", "fan-root"))
        root_role = root_policy.define_role("role", 1)
        root_template = RoleTemplate(root_role, (Var("u"),))
        root_policy.add_activation_rule(ActivationRule(root_template))
        self.root = OasisService(root_policy, self.broker, self.registry,
                                 self.clock,
                                 cache_validations=cache_validations,
                                 batched_cascades=batched_cascades)

        leaf_policy = ServicePolicy(ServiceId("dom", "fan-leaf"))
        leaf_role = leaf_policy.define_role("role", 1)
        leaf_policy.add_activation_rule(ActivationRule(
            RoleTemplate(leaf_role, (Var("u"),)),
            (PrerequisiteRole(root_template, membership=True),)))
        self.leaf = OasisService(leaf_policy, self.broker, self.registry,
                                 self.clock,
                                 cache_validations=cache_validations,
                                 batched_cascades=batched_cascades)
        self._users = 0

    def new_tree(self, fanout: int):
        """Issue one root RMC with ``fanout`` dependents hanging off it.

        Activates directly against the services (no Session) so building a
        wide tree stays O(fanout): each leaf activation presents just the
        shared root credential.
        """
        self._users += 1
        principal = Principal(f"user-{self._users}")
        root_rmc = self.root.activate_role(
            principal.id, "role", [principal.id.value], [])
        presentation = [Presentation(root_rmc)]
        leaves = [self.leaf.activate_role(principal.id, "role", None,
                                          presentation)
                  for _ in range(fanout)]
        return root_rmc, leaves


class ScaleWorld:
    """The million-principal single-node world (ROADMAP open item 3).

    Two services: ``login`` issues a parameterless-prerequisite root role
    per principal; ``resource`` issues a leaf role whose activation takes
    the root credential as a *membership* dependency (one Fig. 5 edge per
    live session) and guards a ``use`` method on the leaf role.  Every
    principal gets a root credential; a ``live`` subset additionally holds
    a leaf credential and keeps its RMCs client-side — those are the live
    sessions the mixed traffic runs over.  An ``accounts`` fact table is
    populated one row per principal through ``Database.put_many``.

    :meth:`build_bulk` constructs the world through the bulk APIs
    (``issue_rmcs_bulk`` in chunks); :meth:`build_percall` is the
    one-at-a-time reference path (``activate_role`` per credential) used
    for the bulk-vs-per-call speedup comparison and by the differential
    tests.
    """

    #: issue_rmcs_bulk batch size: bounds peak temporary lists while
    #: keeping per-batch overhead negligible.
    CHUNK = 50_000

    def __init__(self, principals: int, live: int,
                 access_log_capacity: Optional[int] = 10_000) -> None:
        if live > principals:
            raise ValueError("live sessions cannot exceed principals")
        self.principals = principals
        self.live = live
        self.clock = SimClock()
        self.broker = EventBroker()
        self.registry = ServiceRegistry()
        self.db = Database("scale-db")
        self.db.create_table("accounts", ["principal", "tier"])

        login_policy = ServicePolicy(ServiceId("scale", "login"))
        self.root_role = login_policy.define_role("root", 1)
        self.root_template = RoleTemplate(self.root_role, (Var("u"),))
        login_policy.add_activation_rule(ActivationRule(self.root_template))
        from repro.core.access_log import AccessLog
        self.login = OasisService(
            login_policy, self.broker, self.registry, self.clock,
            access_log=AccessLog(capacity=access_log_capacity))

        resource_policy = ServicePolicy(ServiceId("scale", "resource"))
        self.leaf_role = resource_policy.define_role("leaf", 1)
        leaf_template = RoleTemplate(self.leaf_role, (Var("u"),))
        resource_policy.add_activation_rule(ActivationRule(
            leaf_template,
            (PrerequisiteRole(self.root_template, membership=True),)))
        resource_policy.add_authorization_rule(AuthorizationRule(
            "use", (Var("u"),), (PrerequisiteRole(leaf_template),)))
        self.resource = OasisService(
            resource_policy, self.broker, self.registry, self.clock,
            databases={"main": self.db},
            access_log=AccessLog(capacity=access_log_capacity))
        self.resource.register_method("use", lambda user: f"ok[{user}]")

        # Client-side state, kept for the live subset only: principal id,
        # root RMC, leaf RMC — index i is live session i.
        self.session_principals: List[PrincipalId] = []
        self.session_roots: List = []
        self.session_leaves: List = []
        self._cursor = 0

    # -- construction -------------------------------------------------------
    def _put_accounts(self) -> None:
        self.db.put_many("accounts", [
            {"principal": f"p{index}", "tier": index % 4}
            for index in range(self.principals)])

    def build_bulk(self) -> None:
        """Build the whole world through the bulk APIs."""
        self._put_accounts()
        live = self.live
        for start in range(0, self.principals, self.CHUNK):
            stop = min(start + self.CHUNK, self.principals)
            ids = [PrincipalId(f"p{index}") for index in range(start, stop)]
            roots = self.login.issue_rmcs_bulk([
                (pid, Role(self.root_role, (pid.value,)), (),
                 f"s{start + offset}")
                for offset, pid in enumerate(ids)])
            live_ids = [pid for index, pid in enumerate(ids, start)
                        if index < live]
            if live_ids:
                leaves = self.resource.issue_rmcs_bulk([
                    (pid, Role(self.leaf_role, (pid.value,)),
                     (roots[offset].ref,), f"s{start + offset}")
                    for offset, pid in enumerate(live_ids)])
                self.session_principals.extend(live_ids)
                self.session_roots.extend(roots[:len(live_ids)])
                self.session_leaves.extend(leaves)

    def build_percall(self) -> None:
        """Reference path: one ``activate_role`` call per credential."""
        self._put_accounts()
        for index in range(self.principals):
            pid = PrincipalId(f"p{index}")
            root = self.login.activate_role(
                pid, "root", [pid.value], [], session_id=f"s{index}")
            if index < self.live:
                leaf = self.resource.activate_role(
                    pid, "leaf", None, [Presentation(root)],
                    session_id=f"s{index}")
                self.session_principals.append(pid)
                self.session_roots.append(root)
                self.session_leaves.append(leaf)

    # -- mixed traffic ------------------------------------------------------
    def invoke_op(self) -> None:
        """Guarded invocation by the next live session (60% of traffic)."""
        index = self._cursor % self.live
        self._cursor += 1
        self.resource.invoke(
            self.session_principals[index], "use",
            [self.session_principals[index].value],
            credentials=[Presentation(self.session_leaves[index])])

    def churn_op(self) -> None:
        """Leaf churn: revoke one live session's leaf role and activate a
        fresh one through the full rule path (30% of traffic)."""
        index = self._cursor % self.live
        self._cursor += 1
        pid = self.session_principals[index]
        self.resource.revoke(self.session_leaves[index].ref, "churn")
        self.session_leaves[index] = self.resource.activate_role(
            pid, "leaf", None, [Presentation(self.session_roots[index])],
            session_id=f"s{index}")

    def root_revoke_op(self) -> None:
        """Session collapse and re-login: revoking the root cascades to the
        leaf across services; both are then re-issued (10% of traffic)."""
        index = self._cursor % self.live
        self._cursor += 1
        pid = self.session_principals[index]
        self.login.revoke(self.session_roots[index].ref, "logout")
        root = self.login.issue_rmcs_bulk(
            [(pid, Role(self.root_role, (pid.value,)), (),
              f"s{index}")])[0]
        leaf = self.resource.issue_rmcs_bulk(
            [(pid, Role(self.leaf_role, (pid.value,)), (root.ref,),
              f"s{index}")])[0]
        self.session_roots[index] = root
        self.session_leaves[index] = leaf

    def mixed_op(self) -> None:
        """One step of the 60/30/10 invoke/churn/collapse mix."""
        slot = self._cursor % 10
        if slot < 6:
            self.invoke_op()
        elif slot < 9:
            self.churn_op()
        else:
            self.root_revoke_op()

    # -- accounting ---------------------------------------------------------
    def live_credential_count(self) -> int:
        """Active credential records across both services."""
        return (len(self.login.active_credentials())
                + len(self.resource.active_credentials()))
