"""ABL1 — validation caching with event invalidation (paper Sect. 4).

The design decision under ablation: "The service may cache the certificate
and the result of validation in order to reduce the communication overhead
of repeated callback.  This requires an event channel so that the issuer
can notify the service should the certificate be invalidated."

Three designs over the same workload (sessions invoking a guarded method,
with a configurable revocation rate):

* **cache + events** (OASIS): callback once, then cache hits; revocation
  events drop entries instantly — correct AND cheap;
* **pure callback**: correct but pays a callback per presentation;
* **cache without invalidation** (the broken strawman): cheap but honours
  revoked credentials forever — quantified as stale acceptances.

Series in ``benchmarks/results/ABL1.txt``: callbacks and stale acceptances
per 1000 invocations as the revocation rate sweeps.
"""

import pytest

from repro.core import CredentialRevoked, InvocationDenied, Presentation, Principal

from workloads import HospitalWorld, record_result


def build_sessions(world, count):
    bundles = []
    for index in range(count):
        doctor = world.new_doctor(f"d{index}", f"p{index}")
        session = doctor.start_session(world.login, "logged_in_user",
                                       [f"d{index}"])
        treating = session.activate(world.records, "treating_doctor",
                                    use_appointments=doctor.appointments())
        bundles.append((doctor, session, treating))
    return bundles


def run_workload(cache_validations, revocations, invocations=1000,
                 sessions=10):
    """Interleave invocations with revocations; return (callbacks, stale)."""
    world = HospitalWorld(cache_validations=cache_validations)
    bundles = build_sessions(world, sessions)
    world.records.stats.reset()
    revoke_every = invocations // (revocations + 1) if revocations else None
    revoked = set()
    stale_accepts = 0
    victim = 0
    for step in range(invocations):
        if revoke_every and step and step % revoke_every == 0 \
                and victim < len(bundles):
            doctor, session, treating = bundles[victim]
            world.login.revoke(session.root_rmc.ref, "scheduled")
            revoked.add(victim)
            victim += 1
        index = step % len(bundles)
        doctor, session, treating = bundles[index]
        credentials = [Presentation(session.root_rmc),
                       Presentation(treating)]
        try:
            world.records.invoke(doctor.id, "read_record",
                                 [f"p{index}"], credentials=credentials)
            if index in revoked:
                stale_accepts += 1
        except (CredentialRevoked, InvocationDenied):
            pass
    return world.records.stats.callbacks_made, stale_accepts


def test_abl1_series(benchmark):
    rows = ["ABL1: validation caching ablation "
            "(1000 invocations over 10 sessions)",
            "design                  revocations  callbacks  "
            "stale_accepts"]
    for revocations in (0, 5, 9):
        callbacks, stale = run_workload(True, revocations)
        rows.append(f"{'cache+events (OASIS)':22s}  {revocations:11d}  "
                    f"{callbacks:9d}  {stale:13d}")
        callbacks, stale = run_workload(False, revocations)
        rows.append(f"{'pure callback':22s}  {revocations:11d}  "
                    f"{callbacks:9d}  {stale:13d}")
    record_result("ABL1", rows)

    benchmark(lambda: run_workload(True, 0, invocations=50, sessions=2))


def test_abl1_cached_invocation(benchmark):
    world = HospitalWorld(cache_validations=True)
    (doctor, session, treating), = build_sessions(world, 1)
    credentials = [Presentation(session.root_rmc), Presentation(treating)]
    world.records.invoke(doctor.id, "read_record", ["p0"],
                         credentials=credentials)

    benchmark(lambda: world.records.invoke(
        doctor.id, "read_record", ["p0"], credentials=credentials))


def test_abl1_uncached_invocation(benchmark):
    world = HospitalWorld(cache_validations=False)
    (doctor, session, treating), = build_sessions(world, 1)
    credentials = [Presentation(session.root_rmc), Presentation(treating)]

    benchmark(lambda: world.records.invoke(
        doctor.id, "read_record", ["p0"], credentials=credentials))


def test_abl1_invalidation_latency(benchmark):
    """From revoke() to cache-drop is synchronous: measure it."""
    world = HospitalWorld(cache_validations=True)
    bundles = build_sessions(world, 50)

    refs = [session.root_rmc.ref for _, session, _ in bundles]
    victims = iter(refs)

    def revoke_one():
        try:
            ref = next(victims)
        except StopIteration:
            return
        world.login.revoke(ref, "bench")

    benchmark.pedantic(revoke_one, rounds=min(40, len(refs)), iterations=1)
